"""One-sided allreduce algorithms (paper section 7), compiled.

The paper's "explicit reduction-to-all calls" future work, in three
flavours:

* **recursive doubling** (``algorithm="doubling"``, the default) —
  ⌈log₂N⌉ stages, each PE *gets* its partner's full running value and
  folds it.  Optimal for small payloads (half the stages of the
  reduce+broadcast composition).
* **Rabenseifner** (``algorithm="rabenseifner"``) — the large-message
  algorithm of the paper's reference [17]: a recursive-halving
  reduce-scatter (each stage exchanges *half* the remaining data)
  followed by a recursive-doubling allgather, moving 2·(N-1)/N of the
  payload per PE instead of log₂N times the payload.
* **ring** (``algorithm="ring"``) — the bandwidth-optimal ring: a
  segment-rotating reduce-scatter followed by a segment-rotating
  allgather, 2·(N-1) stages each moving only ``nelems/N`` elements over
  nearest-neighbour links.  Works for any PE count (no power-of-two
  fold) and keeps every link equally loaded, which is why it wins on
  ring/torus topologies.
* **doubly-pipelined dual-root** (``algorithm="dual-pipelined"``,
  after Träff) — the payload is cut into S segments that flow up and
  back down *two* interleaved binary trees (even segments through the
  tree rooted at 0, odd ones through the tree rooted at N/2, so the
  inner/leaf roles swap and per-rank bandwidth balances).  Compiled
  through the schedule IR's :class:`~.schedule.ir.Pipeline` block, the
  reduce of segment k overlaps the broadcast of segment k-Δ: the whole
  allreduce finishes in ``2·depth + S - 1`` pipelined rounds instead of
  the ring's ``2·(N-1)``, which is the large-payload round-count win at
  scale (any PE count, no power-of-two fold).

Correctness under one-sided reads: recursive doubling double-buffers
(everyone reads the partner's *current* buffer and writes the *next*),
while Rabenseifner's and the ring's stages read and write provably
disjoint regions, so a barrier per stage suffices — a property the
schedule linter (:mod:`repro.collectives.schedule.lint`) now checks
mechanically for every compiled stage.

Non-power-of-two PE counts (doubling/Rabenseifner) use the MPICH fold:
the first ``2·rem`` ranks pair up (odd ranks contribute to their even
neighbour and sit out), the surviving power-of-two set runs the core
algorithm, and the results are pushed back to the folded-out ranks.
"""

from __future__ import annotations

from functools import lru_cache
from math import isqrt
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import CollectiveArgumentError
from .binomial import n_stages
from .common import (
    resolve_group,
    span_bytes,
    validate_counts,
)
from .ops import check_op
from .schedule.executor import PreparedCollective
from .schedule.ir import (
    BARRIER,
    Buffer,
    Copy,
    Get,
    Pipeline,
    Put,
    RankProgram,
    Reduce,
    Schedule,
    Stage,
    segment_bounds,
)
from .virtual_rank import ring_neighbor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = ["allreduce", "prepare_allreduce", "compile_allreduce"]

#: Algorithms :func:`compile_allreduce` accepts.
ALGORITHMS = ("doubling", "rabenseifner", "ring", "dual-pipelined")

def auto_segments(nbytes: int) -> int:
    """Default segment count for a dual-pipelined payload of ``nbytes``.

    S trades round count (``2·depth + S - 1`` extra barrier rounds)
    against per-round chunk serialization (each round moves ``~2/S`` of
    the payload on the critical path), so the optimum grows like the
    square root of the payload — ``S ≈ √(nbytes/1 KiB)`` tracks the
    evaluator's measured optimum within a few percent from 64 KiB to
    1 MiB (see ``BENCH_pipeline.json``).
    """
    return max(2, min(64, isqrt(max(nbytes, 0) // 1024)))


def allreduce(
    ctx: "XBRTime",
    dest: int,
    src: int,
    nelems: int,
    stride: int,
    op: str,
    dtype: np.dtype,
    *,
    algorithm: str = "doubling",
    segments: int | None = None,
    group: Sequence[int] | None = None,
) -> None:
    """Reduction-to-all: every PE ends with the full reduction at
    ``dest`` (which may be private — each PE writes its own copy
    locally).  ``algorithm`` is ``"doubling"`` (latency-optimal),
    ``"rabenseifner"`` or ``"ring"`` (bandwidth-optimal),
    ``"dual-pipelined"`` (pipelined dual-root trees, ``segments``
    chunks in flight) or ``"auto"``."""
    prepare_allreduce(
        ctx, dest, src, nelems, stride, op, dtype, algorithm=algorithm,
        segments=segments, group=group,
    ).run(ctx)


def prepare_allreduce(
    ctx: "XBRTime",
    dest: int,
    src: int,
    nelems: int,
    stride: int,
    op: str,
    dtype: np.dtype,
    *,
    algorithm: str = "doubling",
    segments: int | None = None,
    group: Sequence[int] | None = None,
) -> PreparedCollective:
    """Validate, select and compile — everything but the execution."""
    validate_counts(nelems, stride)
    check_op(op, dtype)
    if segments is not None and segments < 1:
        raise CollectiveArgumentError("segments must be >= 1")
    members, me = resolve_group(ctx, group)
    n_pes = len(members)
    if n_pes > 1 and not ctx.is_symmetric(src):
        raise CollectiveArgumentError(
            "allreduce src must be a symmetric address"
        )
    if algorithm == "auto":
        from .tuning import select_algorithm

        algorithm = select_algorithm(
            "allreduce", nelems * dtype.itemsize, n_pes,
            ctx.config.topology,
        )
    if algorithm not in ALGORITHMS:
        raise CollectiveArgumentError(
            f"unknown allreduce algorithm {algorithm!r}"
        )
    sched = compile_allreduce(n_pes, nelems, stride, dtype.itemsize, op,
                              algorithm=algorithm, segments=segments)
    attrs = dict(algorithm=algorithm, op=op, nelems=nelems, dtype=str(dtype))
    if algorithm == "dual-pipelined":
        attrs["segments"] = segments or auto_segments(nelems * dtype.itemsize)
    return PreparedCollective(
        name="allreduce", members=members, me=me, dtype=dtype,
        attrs=attrs,
        schedule=sched, bindings={"dest": dest, "src": src},
        stats_key=f"allreduce:{algorithm}", stats_rank=0,
    )


def compile_allreduce(n_pes: int, nelems: int, stride: int, itemsize: int,
                      op: str, *, algorithm: str = "doubling",
                      segments: int | None = None) -> Schedule:
    """Compile one allreduce call shape into a schedule (pure, cached).

    ``segments`` only applies to ``"dual-pipelined"`` (``None`` picks
    :func:`auto_segments` for the payload).
    """
    if algorithm in ("doubling", "rabenseifner"):
        return _compile_folded(n_pes, nelems, stride, itemsize, op,
                               algorithm)
    if algorithm == "ring":
        return _compile_ring(n_pes, nelems, stride, itemsize, op)
    if algorithm == "dual-pipelined":
        if segments is None:
            segments = auto_segments(nelems * itemsize)
        return _compile_dual_pipelined(n_pes, nelems, stride, itemsize, op,
                                       segments)
    raise CollectiveArgumentError(
        f"unknown allreduce algorithm {algorithm!r}"
    )


def _degenerate(n_pes: int, nelems: int, stride: int, itemsize: int,
                op: str, algorithm: str) -> Schedule:
    nbytes = span_bytes(nelems, stride, itemsize)
    programs = tuple(
        RankProgram(r, (Copy("dest", 0, "src", 0, nelems, stride), BARRIER))
        for r in range(n_pes)
    )
    return Schedule(
        collective="allreduce", algorithm=algorithm, n_pes=n_pes,
        itemsize=itemsize, op=op,
        buffers=(Buffer("dest", "user", nbytes),
                 Buffer("src", "user", nbytes)),
        programs=programs,
        deliver=tuple((r, "dest", 0, nbytes) for r in range(n_pes))
        if nbytes else (),
    )


def _buffers(nbytes: int, double: bool) -> tuple[Buffer, ...]:
    scratch = (Buffer("a", "scratch", nbytes, symmetric=True),)
    if double:
        scratch += (Buffer("b", "scratch", nbytes, symmetric=True),)
    return (
        Buffer("dest", "user", nbytes),
        Buffer("src", "user", nbytes),
    ) + scratch + (Buffer("l", "private", nbytes),)


@lru_cache(maxsize=512)
def _compile_folded(n_pes: int, nelems: int, stride: int, itemsize: int,
                    op: str, algorithm: str) -> Schedule:
    """Doubling / Rabenseifner over the MPICH power-of-two fold."""
    if nelems == 0 or n_pes == 1:
        return _degenerate(n_pes, nelems, stride, itemsize, op, algorithm)
    nbytes = span_bytes(nelems, stride, itemsize)
    pof2 = 1 << (n_pes.bit_length() - 1)
    if pof2 * 2 <= n_pes:  # n_pes is an exact power of two
        pof2 = n_pes
    rem = n_pes - pof2
    k = n_stages(pof2)

    def unfold(new: int) -> int:
        return new * 2 if new < rem else new + rem

    programs = []
    for r in range(n_pes):
        prologue: list = [Copy("a", 0, "src", 0, nelems, stride), BARRIER]
        # Fold the remainder into the largest power-of-two subset: even
        # front ranks absorb their odd neighbour's contribution.
        if r < 2 * rem and r % 2 == 0:
            prologue.append(Get("l", 0, "a", 0, nelems, stride, r + 1))
            prologue.append(Reduce("a", 0, "l", 0, nelems, stride, nelems))
        prologue.append(BARRIER)
        active = r >= 2 * rem or r % 2 == 0
        newrank = (r // 2) if r < 2 * rem else r - rem
        if algorithm == "doubling":
            stages, final = _doubling_stages(active, newrank, unfold, k,
                                             nelems, stride)
        else:
            stages, final = _rabenseifner_stages(active, newrank, unfold,
                                                 pof2, k, nelems, stride,
                                                 itemsize)
        # Push results back to the folded-out odd ranks (same address on
        # both sides thanks to the shared buffer parity).
        epilogue: list = []
        if r < 2 * rem and r % 2 == 0:
            epilogue.append(Put(final, 0, final, 0, nelems, stride, r + 1))
        epilogue.append(BARRIER)
        epilogue.append(Copy("dest", 0, final, 0, nelems, stride))
        programs.append(RankProgram(r, tuple(prologue), stages,
                                    tuple(epilogue)))
    return Schedule(
        collective="allreduce", algorithm=algorithm, n_pes=n_pes,
        itemsize=itemsize, op=op,
        buffers=_buffers(nbytes, double=algorithm == "doubling"),
        programs=tuple(programs),
        deliver=tuple((r, "dest", 0, nbytes) for r in range(n_pes)),
    )


def _doubling_stages(active: bool, newrank: int, unfold, k: int,
                     nelems: int, stride: int) -> tuple[tuple, str]:
    """Recursive doubling: read the partner's *current* buffer, write the
    *next* — folded-out ranks idle through the stages but join every
    barrier and track the buffer parity, so the final buffer names the
    same scratch on every PE."""
    stages = []
    for i in range(k):
        cur, nxt = ("a", "b") if i % 2 == 0 else ("b", "a")
        steps: list = []
        if active:
            partner = unfold(newrank ^ (1 << i))
            steps.append(Get("l", 0, cur, 0, nelems, stride, partner))
            steps.append(Copy(nxt, 0, cur, 0, nelems, stride, charged=False))
            steps.append(Reduce(nxt, 0, "l", 0, nelems, stride, 2 * nelems))
        steps.append(BARRIER)
        stages.append(Stage(i, tuple(steps)))
    return tuple(stages), ("a" if k % 2 == 0 else "b")


def _rabenseifner_stages(active: bool, newrank: int, unfold, pof2: int,
                         k: int, nelems: int, stride: int,
                         itemsize: int) -> tuple[tuple, str]:
    """Reduce-scatter (recursive halving) + allgather (recursive
    doubling) over the active power-of-two subset.

    Every stage's remote reads target regions the local PE does not
    write in that stage (each side touches only its own kept/grown
    segment), so a single buffer plus per-stage barriers is safe — the
    schedule linter verifies the disjointness for every compiled shape.
    """
    if not active:
        return tuple(Stage(i, (BARRIER,)) for i in range(2 * k)), "a"

    def bound(rr: int) -> int:
        return nelems * rr // pof2

    def off(e: int) -> int:
        return e * stride * itemsize

    # Phase 1: reduce-scatter.  Track the rank range whose elements this
    # PE still accumulates; halve it every stage.
    stages = []
    lo_r, hi_r = 0, pof2
    trail: list[tuple[int, int, int]] = []  # (partner_new, keep_lo, keep_hi)
    for stage in range(k):
        half = (hi_r - lo_r) // 2
        if newrank < lo_r + half:
            partner_new = newrank + half
            keep_lo, keep_hi = lo_r, lo_r + half
        else:
            partner_new = newrank - half
            keep_lo, keep_hi = lo_r + half, hi_r
        e_lo, e_hi = bound(keep_lo), bound(keep_hi)
        steps: list = []
        if e_hi > e_lo:
            partner = unfold(partner_new)
            steps.append(Get("l", off(e_lo), "a", off(e_lo), e_hi - e_lo,
                             stride, partner))
            steps.append(Reduce("a", off(e_lo), "l", off(e_lo), e_hi - e_lo,
                                stride, e_hi - e_lo))
        steps.append(BARRIER)
        stages.append(Stage(stage, tuple(steps),
                            attrs=(("phase", "reduce-scatter"),)))
        trail.append((partner_new, keep_lo, keep_hi))
        lo_r, hi_r = keep_lo, keep_hi

    # Phase 2: allgather, replaying the recursion in reverse — fetch the
    # partner's (fully reduced) segment, doubling owned data each stage.
    for stage, (partner_new, keep_lo, keep_hi) in enumerate(reversed(trail),
                                                            start=k):
        partner = unfold(partner_new)
        # The partner owns the complement of my kept rank range within
        # the enclosing range of this (reversed) stage.
        span = keep_hi - keep_lo
        if partner_new < keep_lo:
            need_lo, need_hi = keep_lo - span, keep_lo
        else:
            need_lo, need_hi = keep_hi, keep_hi + span
        e_lo, e_hi = bound(need_lo), bound(need_hi)
        steps = []
        if e_hi > e_lo:
            steps.append(Get("a", off(e_lo), "a", off(e_lo), e_hi - e_lo,
                             stride, partner))
        steps.append(BARRIER)
        stages.append(Stage(stage, tuple(steps),
                            attrs=(("phase", "allgather"),)))
    return tuple(stages), "a"


@lru_cache(maxsize=512)
def _compile_ring(n_pes: int, nelems: int, stride: int, itemsize: int,
                  op: str) -> Schedule:
    """Segment-rotating ring allreduce (bandwidth-optimal).

    The payload is split into ``n_pes`` segments with the same
    ``nelems*i//n_pes`` bounds Rabenseifner uses.  Reduce-scatter: at
    step ``s`` rank ``r`` pulls segment ``(r-1-s) mod N`` from its left
    neighbour's running buffer and folds it, so after ``N-1`` steps rank
    ``r`` holds the *fully* reduced segment ``(r+1) mod N``.  Allgather:
    at step ``s`` rank ``r`` pulls the finished segment ``(r-s) mod N``
    from the left.  In every stage each rank writes only the segment it
    just pulled while its right neighbour reads a *different* segment —
    the disjointness the linter proves per stage.
    """
    if nelems == 0 or n_pes == 1:
        return _degenerate(n_pes, nelems, stride, itemsize, op, "ring")
    nbytes = span_bytes(nelems, stride, itemsize)

    def bound(i: int) -> int:
        return nelems * i // n_pes

    def off(e: int) -> int:
        return e * stride * itemsize

    programs = []
    for r in range(n_pes):
        left = ring_neighbor(r, n_pes, -1)
        prologue = (Copy("a", 0, "src", 0, nelems, stride), BARRIER)
        stages = []
        for s in range(n_pes - 1):
            seg = (r - 1 - s) % n_pes
            e_lo, e_hi = bound(seg), bound(seg + 1)
            steps: list = []
            if e_hi > e_lo:
                steps.append(Get("l", off(e_lo), "a", off(e_lo),
                                 e_hi - e_lo, stride, left))
                steps.append(Reduce("a", off(e_lo), "l", off(e_lo),
                                    e_hi - e_lo, stride, e_hi - e_lo))
            steps.append(BARRIER)
            stages.append(Stage(s, tuple(steps),
                                attrs=(("phase", "reduce-scatter"),)))
        for s in range(n_pes - 1):
            seg = (r - s) % n_pes
            e_lo, e_hi = bound(seg), bound(seg + 1)
            steps = []
            if e_hi > e_lo:
                steps.append(Get("a", off(e_lo), "a", off(e_lo),
                                 e_hi - e_lo, stride, left))
            steps.append(BARRIER)
            stages.append(Stage(n_pes - 1 + s, tuple(steps),
                                attrs=(("phase", "allgather"),)))
        epilogue = (Copy("dest", 0, "a", 0, nelems, stride),)
        programs.append(RankProgram(r, prologue, tuple(stages), epilogue))
    return Schedule(
        collective="allreduce", algorithm="ring", n_pes=n_pes,
        itemsize=itemsize, op=op,
        buffers=_buffers(nbytes, double=False),
        programs=tuple(programs),
        deliver=tuple((r, "dest", 0, nbytes) for r in range(n_pes)),
    )


def _heap_depth(v: int) -> int:
    """Depth of virtual rank ``v`` in the heap-ordered binary tree."""
    return (v + 1).bit_length() - 1


@lru_cache(maxsize=512)
def _compile_dual_pipelined(n_pes: int, nelems: int, stride: int,
                            itemsize: int, op: str,
                            segments: int) -> Schedule:
    """Doubly-pipelined dual-root tree allreduce (Träff).

    Two heap-ordered binary trees over virtual ranks — tree 0 rooted at
    rank 0, tree 1 at rank N/2, so a rank that is inner in one tree is
    (almost always) a leaf in the other.  Even payload segments reduce
    up and broadcast down tree 0, odd segments tree 1.  Everything is
    one :class:`~.schedule.ir.Pipeline` block of ``2·depth`` step
    groups:

    * reduce group ``depth-1-d`` — parents at depth ``d`` pull each
      child's accumulated segment chunk (the child folded it one round
      earlier: cross-segment ordering) and fold it into scratch ``a``;
    * broadcast group ``depth+d`` — children at depth ``d+1`` pull the
      finished chunk from their parent (the root's ``a``, inner ranks'
      ``b``) into scratch ``b``.

    Round ``t`` of the lowered wavefront runs segment ``t-g`` of every
    group ``g``, so the broadcast of one segment overlaps the reduce of
    later ones — "doubly pipelined".  All per-round hazards are
    parity/segment-disjoint, which the schedule linter proves for every
    compiled shape.
    """
    if nelems == 0 or n_pes == 1:
        return _degenerate(n_pes, nelems, stride, itemsize, op,
                           "dual-pipelined")
    nbytes = span_bytes(nelems, stride, itemsize)
    S = max(1, min(segments, nelems))
    roots = (0, n_pes // 2)
    depth_max = _heap_depth(n_pes - 1)
    n_groups = 2 * depth_max

    def off(e: int) -> int:
        return e * stride * itemsize

    programs = []
    for r in range(n_pes):
        groups = [[()] * S for _ in range(n_groups)]
        for k in range(S):
            root = roots[k % 2]
            v = (r - root) % n_pes
            d = _heap_depth(v)
            e_lo, e_hi = segment_bounds(nelems, S, k)
            ne = e_hi - e_lo
            if ne == 0:
                continue
            children = [c for c in (2 * v + 1, 2 * v + 2) if c < n_pes]
            if children:
                steps: list = []
                for c in children:
                    peer = (c + root) % n_pes
                    steps.append(Get("l", off(e_lo), "a", off(e_lo), ne,
                                     stride, peer))
                    steps.append(Reduce("a", off(e_lo), "l", off(e_lo), ne,
                                        stride, ne))
                groups[depth_max - 1 - d][k] = tuple(steps)
            if v > 0:
                parent_v = (v - 1) // 2
                peer = (parent_v + root) % n_pes
                srcbuf = "a" if parent_v == 0 else "b"
                groups[depth_max + d - 1][k] = (
                    Get("b", off(e_lo), srcbuf, off(e_lo), ne, stride, peer),
                )
        pipe = Pipeline(0, S, tuple(tuple(g) for g in groups),
                        attrs=(("phase", "dual-tree"),))
        # Unsegmented local copy-out: roots keep their tree's segments
        # in ``a``, every other rank received them in ``b``.
        epilogue: list = []
        for k in range(S):
            e_lo, e_hi = segment_bounds(nelems, S, k)
            if e_hi == e_lo:
                continue
            srcbuf = "a" if r == roots[k % 2] else "b"
            epilogue.append(Copy("dest", off(e_lo), srcbuf, off(e_lo),
                                 e_hi - e_lo, stride))
        programs.append(RankProgram(
            r, (Copy("a", 0, "src", 0, nelems, stride), BARRIER),
            (pipe,), tuple(epilogue)))
    return Schedule(
        collective="allreduce", algorithm="dual-pipelined", n_pes=n_pes,
        itemsize=itemsize, op=op,
        buffers=_buffers(nbytes, double=True),
        programs=tuple(programs),
        deliver=tuple((r, "dest", 0, nbytes) for r in range(n_pes)),
    )
