"""One-sided allreduce algorithms (paper section 7).

The paper's "explicit reduction-to-all calls" future work, in two
flavours:

* **recursive doubling** (:func:`allreduce` with
  ``algorithm="doubling"``, the default) — ⌈log₂N⌉ stages, each PE
  *gets* its partner's full running value and folds it.  Optimal for
  small payloads (half the stages of the reduce+broadcast composition).
* **Rabenseifner** (``algorithm="rabenseifner"``) — the large-message
  algorithm of the paper's reference [17]: a recursive-halving
  reduce-scatter (each stage exchanges *half* the remaining data)
  followed by a recursive-doubling allgather, moving 2·(N-1)/N of the
  payload per PE instead of log₂N times the payload.

Correctness under one-sided reads: recursive doubling double-buffers
(everyone reads the partner's *current* buffer and writes the *next*),
while Rabenseifner's stages read and write provably disjoint regions,
so a barrier per stage suffices.

Non-power-of-two PE counts use the MPICH fold: the first ``2·rem``
ranks pair up (odd ranks contribute to their even neighbour and sit
out), the surviving power-of-two set runs the core algorithm, and the
results are pushed back to the folded-out ranks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import CollectiveArgumentError
from .binomial import n_stages
from .common import (
    charge_elementwise,
    collective_span,
    local_copy,
    private_buffer,
    resolve_group,
    scratch_buffers,
    span_bytes,
    stage_span,
    validate_counts,
)
from .ops import apply_op, check_op

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = ["allreduce"]


def allreduce(
    ctx: "XBRTime",
    dest: int,
    src: int,
    nelems: int,
    stride: int,
    op: str,
    dtype: np.dtype,
    *,
    algorithm: str = "doubling",
    group: Sequence[int] | None = None,
) -> None:
    """Reduction-to-all: every PE ends with the full reduction at
    ``dest`` (which may be private — each PE writes its own copy
    locally).  ``algorithm`` is ``"doubling"`` (latency-optimal) or
    ``"rabenseifner"`` (bandwidth-optimal, paper reference [17])."""
    validate_counts(nelems, stride)
    check_op(op, dtype)
    if algorithm not in ("doubling", "rabenseifner"):
        raise CollectiveArgumentError(
            f"unknown allreduce algorithm {algorithm!r}"
        )
    members, me = resolve_group(ctx, group)
    n_pes = len(members)
    if n_pes > 1 and not ctx.is_symmetric(src):
        raise CollectiveArgumentError(
            "allreduce src must be a symmetric address"
        )
    if me == 0:
        ctx.machine.stats.collective_calls[f"allreduce:{algorithm}"] += 1
    with collective_span(ctx, "allreduce", members, algorithm=algorithm,
                         op=op, nelems=nelems, dtype=str(dtype)):
        _allreduce(ctx, dest, src, nelems, stride, op, dtype, algorithm,
                   members, me)


def _allreduce(ctx: "XBRTime", dest: int, src: int, nelems: int, stride: int,
               op: str, dtype: np.dtype, algorithm: str,
               members: tuple[int, ...], me: int) -> None:
    n_pes = len(members)
    if nelems == 0 or n_pes == 1:
        local_copy(ctx, dest, src, nelems, stride, dtype)
        ctx.barrier_team(members)
        return
    eb = dtype.itemsize
    nbytes = span_bytes(nelems, stride, eb)
    # Double-buffered symmetric scratch (cur is read remotely, nxt is
    # written locally) plus a private landing buffer for gets.
    with scratch_buffers(ctx, nbytes, nbytes) as (buf_a, buf_b), \
            private_buffer(ctx, nbytes) as l_buf:
        _allreduce_buffered(ctx, dest, src, nelems, stride, op, dtype,
                            algorithm, members, me, buf_a, buf_b, l_buf)


def _allreduce_buffered(ctx: "XBRTime", dest: int, src: int, nelems: int,
                        stride: int, op: str, dtype: np.dtype,
                        algorithm: str, members: tuple[int, ...], me: int,
                        buf_a: int, buf_b: int, l_buf: int) -> None:
    n_pes = len(members)
    view_a = ctx.view(buf_a, dtype, nelems, stride)
    view_b = ctx.view(buf_b, dtype, nelems, stride)
    l_view = ctx.view(l_buf, dtype, nelems, stride)
    local_copy(ctx, buf_a, src, nelems, stride, dtype)
    cur_addr, nxt_addr = buf_a, buf_b
    cur_view, nxt_view = view_a, view_b
    ctx.barrier_team(members)

    # Fold the remainder into the largest power-of-two subset.
    pof2 = 1 << (n_pes.bit_length() - 1)
    if pof2 * 2 <= n_pes:  # n_pes is an exact power of two
        pof2 = n_pes
    rem = n_pes - pof2
    if me < 2 * rem and me % 2 == 0:
        # Even front ranks absorb their odd neighbour's contribution.
        ctx.get(l_buf, cur_addr, nelems, stride, members[me + 1], dtype)
        apply_op(op, cur_view, l_view)
        charge_elementwise(ctx, nelems)
    ctx.barrier_team(members)

    active = me >= 2 * rem or me % 2 == 0
    newrank = (me // 2) if me < 2 * rem else me - rem
    k = n_stages(pof2)

    def unfold(new: int) -> int:
        return new * 2 if new < rem else new + rem

    if algorithm == "doubling":
        if active:
            for i in range(k):
                with stage_span(ctx, i):
                    partner = unfold(newrank ^ (1 << i))
                    ctx.get(l_buf, cur_addr, nelems, stride,
                            members[partner], dtype)
                    nxt_view[:] = cur_view
                    apply_op(op, nxt_view, l_view)
                    charge_elementwise(ctx, 2 * nelems)
                    cur_addr, nxt_addr = nxt_addr, cur_addr
                    cur_view, nxt_view = nxt_view, cur_view
                    ctx.barrier_team(members)
        else:
            # Folded-out odd ranks idle through the stages but join
            # every barrier and track the buffer parity, so the final
            # ``cur_addr`` names the same buffer on every PE.
            for i in range(k):
                with stage_span(ctx, i):
                    cur_addr, nxt_addr = nxt_addr, cur_addr
                    cur_view, nxt_view = nxt_view, cur_view
                    ctx.barrier_team(members)
    else:
        _rabenseifner_core(ctx, members, me, active, newrank, unfold,
                           pof2, k, cur_addr, l_buf, nelems, stride, op,
                           dtype)

    # Push results back to the folded-out odd ranks (same address on
    # both sides thanks to the shared buffer parity).
    if me < 2 * rem and me % 2 == 0:
        ctx.put(cur_addr, cur_addr, nelems, stride, members[me + 1], dtype)
    ctx.barrier_team(members)
    local_copy(ctx, dest, cur_addr, nelems, stride, dtype)


def _rabenseifner_core(ctx, members, me, active, newrank, unfold, pof2, k,
                       buf, l_buf, nelems, stride, op, dtype) -> None:
    """Reduce-scatter (recursive halving) + allgather (recursive
    doubling) over the active power-of-two subset.

    Every stage's remote reads target regions the local PE does not
    write in that stage (each side touches only its own kept/grown
    segment), so a single buffer plus per-stage barriers is safe.
    """
    eb = dtype.itemsize

    def bound(r: int) -> int:
        return nelems * r // pof2

    def off(e: int) -> int:
        return e * stride * eb

    def sub(base: int, e_lo: int, e_hi: int):
        return ctx.view(base + off(e_lo), dtype, e_hi - e_lo, stride)

    if not active:
        for i in range(2 * k):
            with stage_span(ctx, i):
                ctx.barrier_team(members)
        return

    # Phase 1: reduce-scatter.  Track the rank range whose elements this
    # PE still accumulates; halve it every stage.
    lo_r, hi_r = 0, pof2
    trail: list[tuple[int, int, int]] = []  # (partner_new, keep_lo, keep_hi)
    for stage in range(k):
        with stage_span(ctx, stage, phase="reduce-scatter"):
            half = (hi_r - lo_r) // 2
            if newrank < lo_r + half:
                partner_new = newrank + half
                keep_lo, keep_hi = lo_r, lo_r + half
            else:
                partner_new = newrank - half
                keep_lo, keep_hi = lo_r + half, hi_r
            e_lo, e_hi = bound(keep_lo), bound(keep_hi)
            if e_hi > e_lo:
                partner = members[unfold(partner_new)]
                ctx.get(l_buf + off(e_lo), buf + off(e_lo), e_hi - e_lo,
                        stride, partner, dtype)
                apply_op(op, sub(buf, e_lo, e_hi), sub(l_buf, e_lo, e_hi))
                charge_elementwise(ctx, e_hi - e_lo)
            trail.append((partner_new, keep_lo, keep_hi))
            lo_r, hi_r = keep_lo, keep_hi
            ctx.barrier_team(members)

    # Phase 2: allgather, replaying the recursion in reverse — fetch the
    # partner's (fully reduced) segment, doubling owned data each stage.
    for stage, (partner_new, keep_lo, keep_hi) in enumerate(reversed(trail),
                                                            start=k):
        with stage_span(ctx, stage, phase="allgather"):
            partner = members[unfold(partner_new)]
            # The partner owns the complement of my kept rank range
            # within the enclosing range of this (reversed) stage.
            span = keep_hi - keep_lo
            if partner_new < keep_lo:
                need_lo, need_hi = keep_lo - span, keep_lo
            else:
                need_lo, need_hi = keep_hi, keep_hi + span
            e_lo, e_hi = bound(need_lo), bound(need_hi)
            if e_hi > e_lo:
                ctx.get(buf + off(e_lo), buf + off(e_lo), e_hi - e_lo,
                        stride, partner, dtype)
            ctx.barrier_team(members)
