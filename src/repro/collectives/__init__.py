"""Binomial-tree collective operations for xBGAS (paper section 4).

The initial xBGAS collective library implements broadcast, reduction,
scatter and gather as variants of one binomial-tree pattern:

* a *virtual rank* remapping makes the root virtual rank 0 (Table 2);
* broadcast and scatter walk the rank-bit mask left→right (*recursive
  halving*) and push data root→leaves with one-sided ``put``;
* reduction and gather walk it right→left (*recursive doubling*) and
  pull data leaves→root with one-sided ``get``;
* every tree stage ends with a barrier;
* scatter/gather take per-PE counts (``pe_msgs``) and displacements
  (``pe_disp``) and reorder data by virtual rank (``adj_disp``) so each
  tree-stage message stays contiguous and needs a single put/get.

Since PR 4 every collective is a *compiler*: the front-ends in these
modules validate a call, compile it into a
:class:`~repro.collectives.schedule.Schedule` — per-rank stages of
primitive PUT/GET/REDUCE/COPY/BARRIER steps — and hand it to the single
executor in :mod:`~repro.collectives.schedule`.  The compiled schedules
are statically checkable (:func:`~repro.collectives.schedule.lint_schedule`)
and cached per call shape.

Extensions beyond the paper's initial library (its section 7 future
work) live in :mod:`~repro.collectives.extra` (reduce-to-all,
gather-to-all, all-to-all), :mod:`~repro.collectives.teams` (PE-subset
collectives), :mod:`~repro.collectives.nonblocking` and
:mod:`~repro.collectives.tuning` (runtime algorithm selection).
"""

from .virtual_rank import virtual_rank, logical_rank, rank_table
from .binomial import tree_stages, tree_children, tree_parent, render_tree
from .ops import REDUCE_OPS, apply_op, check_op
from . import broadcast, reduce, scatter, gather, extra, teams, nonblocking, tuning, hierarchy, allreduce, scan, reduce_scatter
from . import schedule

__all__ = [
    "virtual_rank",
    "logical_rank",
    "rank_table",
    "tree_stages",
    "tree_children",
    "tree_parent",
    "render_tree",
    "REDUCE_OPS",
    "apply_op",
    "check_op",
    "broadcast",
    "reduce",
    "scatter",
    "gather",
    "extra",
    "teams",
    "nonblocking",
    "tuning",
    "hierarchy",
    "allreduce",
    "scan",
    "reduce_scatter",
    "schedule",
]
