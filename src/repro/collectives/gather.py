"""Gather (paper section 4.6, Algorithm 4).

Symmetric to scatter in the same way reduction is to broadcast: the
tree runs with recursive doubling and one-sided ``get``, aggregating a
distinct number of elements from every PE toward the root.  ``pe_msgs``
gives the per-PE counts and ``pe_disp`` the displacements *into dest on
the root*.

Each PE first stages its contribution in the shared buffer at its
adjusted (virtual-rank) displacement; each stage's receiver pulls the
partner's whole subtree segment in one contiguous ``get``; finally the
root reorders the virtual-rank-ordered buffer into ``dest`` by logical
rank.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from .binomial import n_stages
from .common import (
    collective_span,
    resolve_group,
    scratch_buffers,
    stage_span,
    validate_root,
)
from .scatter import _validate, adjusted_displacements
from .virtual_rank import virtual_rank

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = ["gather"]


def gather(
    ctx: "XBRTime",
    dest: int,
    src: int,
    pe_msgs: Sequence[int],
    pe_disp: Sequence[int],
    nelems: int,
    root: int,
    dtype: np.dtype,
    *,
    group: Sequence[int] | None = None,
) -> None:
    """``xbrtime_TYPE_gather(dest, src, pe_msgs, pe_disp, nelems, root)``."""
    members, me = resolve_group(ctx, group)
    n_pes = len(members)
    validate_root(root, n_pes)
    _validate(pe_msgs, pe_disp, nelems, n_pes, "gather")
    if me == root:
        ctx.machine.stats.collective_calls["gather:binomial"] += 1
    with collective_span(ctx, "gather", members, root=root, nelems=nelems,
                         dtype=str(dtype)):
        _binomial(ctx, dest, src, pe_msgs, pe_disp, nelems, root, dtype,
                  members, me)


def _binomial(ctx: "XBRTime", dest: int, src: int, pe_msgs: Sequence[int],
              pe_disp: Sequence[int], nelems: int, root: int,
              dtype: np.dtype, members: tuple[int, ...], me: int) -> None:
    n_pes = len(members)
    vir_rank = virtual_rank(me, root, n_pes)
    eb = dtype.itemsize
    my_count = pe_msgs[me]
    if nelems == 0:
        ctx.barrier_team(members)
        return
    if n_pes == 1:
        if my_count:
            ctx.put(dest + pe_disp[me] * eb, src, my_count, 1, ctx.rank, dtype)
        ctx.barrier_team(members)
        return
    adj = adjusted_displacements(pe_msgs, root)
    with scratch_buffers(ctx, nelems * eb) as (s_buff,):
        # Stage this PE's contribution at its virtual-rank displacement.
        if my_count:
            ctx.put(s_buff + adj[vir_rank] * eb, src, my_count, 1, ctx.rank,
                    dtype)
        # Order every staging store before the first stage's one-sided
        # gets.
        ctx.barrier_team(members)
        k = n_stages(n_pes)
        mask = (1 << k) - 1
        for i in range(k):
            with stage_span(ctx, i):
                mask ^= 1 << i
                if (vir_rank | mask) == mask and (vir_rank & (1 << i)) == 0:
                    vir_part = (vir_rank ^ (1 << i)) % n_pes
                    log_part = (vir_part + root) % n_pes
                    if vir_rank < vir_part:
                        # The partner's segment plus everything it
                        # aggregated.
                        end = min(vir_part + (1 << i), n_pes)
                        msg_size = adj[end] - adj[vir_part]
                        if msg_size:
                            off = s_buff + adj[vir_part] * eb
                            ctx.get(off, off, msg_size, 1, members[log_part],
                                    dtype)
                ctx.barrier_team(members)
        if vir_rank == 0:
            # Reorder from virtual-rank order into dest by logical rank.
            for vir in range(n_pes):
                log = (vir + root) % n_pes
                cnt = pe_msgs[log]
                if cnt:
                    ctx.put(dest + pe_disp[log] * eb, s_buff + adj[vir] * eb,
                            cnt, 1, ctx.rank, dtype)
