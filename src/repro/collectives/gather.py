"""Gather (paper section 4.6, Algorithm 4), compiled to a schedule.

Symmetric to scatter in the same way reduction is to broadcast: the
tree runs with recursive doubling and one-sided ``get``, aggregating a
distinct number of elements from every PE toward the root.  ``pe_msgs``
gives the per-PE counts and ``pe_disp`` the displacements *into dest on
the root*.  Zero-count PEs contribute no staging store or tree message
but keep every stage barrier.

Each PE first stages its contribution in the shared buffer at its
adjusted (virtual-rank) displacement; each stage's receiver pulls the
partner's whole subtree segment in one contiguous ``get``; finally the
root reorders the virtual-rank-ordered buffer into ``dest`` by logical
rank.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .binomial import tree_stages
from .common import resolve_group, validate_root
from .scatter import _io_buffers, _validate, adjusted_displacements
from .schedule.executor import PreparedCollective
from .schedule.ir import (
    BARRIER,
    Buffer,
    Copy,
    Get,
    RankProgram,
    Schedule,
    Stage,
)
from .virtual_rank import logical_rank, virtual_rank

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = ["gather", "prepare_gather", "compile_gather"]


def gather(
    ctx: "XBRTime",
    dest: int,
    src: int,
    pe_msgs: Sequence[int],
    pe_disp: Sequence[int],
    nelems: int,
    root: int,
    dtype: np.dtype,
    *,
    group: Sequence[int] | None = None,
) -> None:
    """``xbrtime_TYPE_gather(dest, src, pe_msgs, pe_disp, nelems, root)``."""
    prepare_gather(ctx, dest, src, pe_msgs, pe_disp, nelems, root, dtype,
                   group=group).run(ctx)


def prepare_gather(
    ctx: "XBRTime",
    dest: int,
    src: int,
    pe_msgs: Sequence[int],
    pe_disp: Sequence[int],
    nelems: int,
    root: int,
    dtype: np.dtype,
    *,
    group: Sequence[int] | None = None,
) -> PreparedCollective:
    """Validate and compile — everything but the execution."""
    members, me = resolve_group(ctx, group)
    n_pes = len(members)
    validate_root(root, n_pes)
    _validate(pe_msgs, pe_disp, nelems, n_pes, "gather")
    sched = compile_gather(n_pes, root, tuple(pe_msgs), tuple(pe_disp),
                           nelems, dtype.itemsize)
    return PreparedCollective(
        name="gather", members=members, me=me, dtype=dtype,
        attrs=dict(root=root, nelems=nelems, dtype=str(dtype)),
        schedule=sched, bindings={"dest": dest, "src": src},
        stats_key="gather:binomial", stats_rank=root,
    )


@lru_cache(maxsize=256)
def compile_gather(n_pes: int, root: int, counts: tuple[int, ...],
                   disps: tuple[int, ...], nelems: int,
                   itemsize: int) -> Schedule:
    """Compile one gather call shape into a schedule (pure, cached)."""
    eb = itemsize
    dest_buf, src_buf = _io_buffers(n_pes, root, counts, disps, eb, "dest")
    deliver = tuple((root, "dest", disps[i] * eb, (disps[i] + counts[i]) * eb)
                    for i in range(n_pes) if counts[i])
    if nelems == 0:
        return Schedule(
            collective="gather", algorithm="binomial", n_pes=n_pes,
            itemsize=eb, root=root, buffers=(dest_buf, src_buf),
            programs=tuple(RankProgram(r, (BARRIER,))
                           for r in range(n_pes)),
        )
    if n_pes == 1:
        steps: list = []
        if counts[0]:
            steps.append(Copy("dest", disps[0] * eb, "src", 0, counts[0], 1,
                              skip_noop=False))
        steps.append(BARRIER)
        return Schedule(
            collective="gather", algorithm="binomial", n_pes=n_pes,
            itemsize=eb, root=root, buffers=(dest_buf, src_buf),
            programs=(RankProgram(0, tuple(steps)),), deliver=deliver,
        )
    adj = adjusted_displacements(counts, root)
    # Index each stage's pairs by parent so the per-rank loop below is
    # O(log N) per rank instead of rescanning all N-1 tree edges.
    stage_children: list[dict[int, list[int]]] = []
    for pairs in tree_stages(n_pes, "doubling"):
        by_parent: dict[int, list[int]] = {}
        for child, parent in pairs:
            by_parent.setdefault(parent, []).append(child)
        stage_children.append(by_parent)
    programs = []
    for r in range(n_pes):
        vir = virtual_rank(r, root, n_pes)
        # Stage this PE's contribution at its virtual-rank displacement,
        # then order every staging store before the first stage's gets.
        prologue: list = []
        if counts[r]:
            prologue.append(Copy("s", adj[vir] * eb, "src", 0, counts[r], 1,
                                 skip_noop=False))
        prologue.append(BARRIER)
        stages = []
        for i, by_parent in enumerate(stage_children):
            steps = []
            for child in by_parent.get(vir, ()):
                # The partner's segment plus everything it aggregated.
                end = min(child + (1 << i), n_pes)
                msg_size = adj[end] - adj[child]
                if msg_size:
                    steps.append(Get("s", adj[child] * eb, "s",
                                     adj[child] * eb, msg_size, 1,
                                     logical_rank(child, root, n_pes)))
            steps.append(BARRIER)
            stages.append(Stage(i, tuple(steps)))
        epilogue: list = []
        if vir == 0:
            # Reorder from virtual-rank order into dest by logical rank.
            for v in range(n_pes):
                log = logical_rank(v, root, n_pes)
                cnt = counts[log]
                if cnt:
                    epilogue.append(Copy("dest", disps[log] * eb, "s",
                                         adj[v] * eb, cnt, 1,
                                         skip_noop=False))
        programs.append(RankProgram(r, tuple(prologue), tuple(stages),
                                    tuple(epilogue)))
    return Schedule(
        collective="gather", algorithm="binomial", n_pes=n_pes,
        itemsize=eb, root=root,
        buffers=(dest_buf, src_buf,
                 Buffer("s", "scratch", nelems * eb, symmetric=True)),
        programs=tuple(programs), deliver=deliver,
    )
