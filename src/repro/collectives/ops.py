"""Reduction operators (paper section 4.4).

The reduction collective supports sum, product, min and max for every
Table 1 type, plus bitwise AND/OR/XOR for the non-floating-point types.
Requesting a bitwise reduction of a float type raises
:class:`~repro.errors.ReductionOpError`, mirroring the restriction.

Arithmetic follows C semantics for the modelled types: fixed-width
integer operations wrap modulo 2^width, which numpy provides natively.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import ReductionOpError

__all__ = ["REDUCE_OPS", "BITWISE_OPS", "check_op", "apply_op", "identity_of"]

REDUCE_OPS: tuple[str, ...] = ("sum", "prod", "min", "max", "and", "or", "xor")
BITWISE_OPS: tuple[str, ...] = ("and", "or", "xor")

_FUNCS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "sum": np.add,
    "prod": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
    "and": np.bitwise_and,
    "or": np.bitwise_or,
    "xor": np.bitwise_xor,
}


def check_op(op: str, dtype: np.dtype) -> None:
    """Validate ``op`` against ``dtype`` (floats reject bitwise ops)."""
    if op not in REDUCE_OPS:
        raise ReductionOpError(
            f"unknown reduction op {op!r}; expected one of {REDUCE_OPS}"
        )
    if op in BITWISE_OPS and np.dtype(dtype).kind == "f":
        raise ReductionOpError(
            f"bitwise reduction {op!r} is not defined for floating-point "
            f"type {np.dtype(dtype)} (paper section 4.4)"
        )


def apply_op(op: str, acc: np.ndarray, value: np.ndarray) -> None:
    """``acc = acc OP value`` elementwise, in place."""
    check_op(op, acc.dtype)
    func = _FUNCS[op]
    with np.errstate(over="ignore"):  # C integer semantics: wraparound
        func(acc, value.astype(acc.dtype, copy=False), out=acc)


def identity_of(op: str, dtype: np.dtype) -> np.generic:
    """The identity element of ``op`` over ``dtype``."""
    dt = np.dtype(dtype)
    check_op(op, dt)
    if op == "sum":
        return dt.type(0)
    if op == "prod":
        return dt.type(1)
    if op == "min":
        if dt.kind == "f":
            return dt.type(np.inf)
        return np.iinfo(dt).max if dt.kind in "iu" else dt.type(0)
    if op == "max":
        if dt.kind == "f":
            return dt.type(-np.inf)
        return np.iinfo(dt).min if dt.kind in "iu" else dt.type(0)
    if op == "and":
        return dt.type(-1) if dt.kind == "i" else np.iinfo(dt).max
    # or / xor
    return dt.type(0)
