"""Collectives over a subset of PEs (paper section 7 future work).

A :class:`Team` is an ordered set of world ranks; all collective calls
take team-relative roots and synchronise only the members.  Disjoint
teams operate concurrently and independently (their scratch allocations
land at matching addresses because every member pushes the same sizes —
see :class:`repro.runtime.symmetric_heap.ScratchStack`).

Usage::

    team = Team(ctx, [0, 2, 4, 6])     # every member constructs it
    if team.contains(ctx.rank):
        team.broadcast(dest, src, n, 1, root=0, dtype="long")
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import CollectiveArgumentError
from . import broadcast as _broadcast
from . import extra as _extra
from . import gather as _gather
from . import reduce as _reduce
from . import scatter as _scatter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = ["Team"]


class Team:
    """A PE subset with its own rank space and collective surface."""

    def __init__(self, ctx: "XBRTime", members: Sequence[int]):
        self.ctx = ctx
        self.members = tuple(members)
        if not self.members:
            raise CollectiveArgumentError("team cannot be empty")
        if len(set(self.members)) != len(self.members):
            raise CollectiveArgumentError(
                f"team has duplicate ranks: {self.members}"
            )
        if ctx.rank not in self.members:
            raise CollectiveArgumentError(
                f"PE {ctx.rank} constructed a team {self.members} it does "
                "not belong to"
            )

    # -- identity -----------------------------------------------------------

    def contains(self, world_rank: int) -> bool:
        return world_rank in self.members

    def my_pe(self) -> int:
        """This PE's team-relative rank."""
        return self.members.index(self.ctx.rank)

    def num_pes(self) -> int:
        return len(self.members)

    def world_rank(self, team_rank: int) -> int:
        return self.members[team_rank]

    # -- synchronisation -------------------------------------------------------

    def barrier(self) -> None:
        self.ctx.barrier_team(self.members)

    # -- collectives (roots are team-relative) ------------------------------------

    def broadcast(self, dest: int, src: int, nelems: int, stride: int,
                  root: int, dtype: str | np.dtype = "long") -> None:
        from ..runtime.context import resolve_dtype

        _broadcast.broadcast(self.ctx, dest, src, nelems, stride, root,
                             resolve_dtype(dtype), group=self.members)

    def reduce(self, dest: int, src: int, nelems: int, stride: int,
               root: int, op: str = "sum",
               dtype: str | np.dtype = "long") -> None:
        from ..runtime.context import resolve_dtype

        _reduce.reduce(self.ctx, dest, src, nelems, stride, root, op,
                       resolve_dtype(dtype), group=self.members)

    def scatter(self, dest: int, src: int, pe_msgs: Sequence[int],
                pe_disp: Sequence[int], nelems: int, root: int,
                dtype: str | np.dtype = "long") -> None:
        from ..runtime.context import resolve_dtype

        _scatter.scatter(self.ctx, dest, src, pe_msgs, pe_disp, nelems,
                         root, resolve_dtype(dtype), group=self.members)

    def gather(self, dest: int, src: int, pe_msgs: Sequence[int],
               pe_disp: Sequence[int], nelems: int, root: int,
               dtype: str | np.dtype = "long") -> None:
        from ..runtime.context import resolve_dtype

        _gather.gather(self.ctx, dest, src, pe_msgs, pe_disp, nelems,
                       root, resolve_dtype(dtype), group=self.members)

    def reduce_all(self, dest: int, src: int, nelems: int, stride: int,
                   op: str = "sum", dtype: str | np.dtype = "long") -> None:
        from ..runtime.context import resolve_dtype

        from .allreduce import allreduce as _allreduce

        _allreduce(self.ctx, dest, src, nelems, stride, op,
                   resolve_dtype(dtype), group=self.members)

    def alltoall(self, dest: int, src: int, nelems_per_pe: int,
                 dtype: str | np.dtype = "long") -> None:
        from ..runtime.context import resolve_dtype

        _extra.alltoall(self.ctx, dest, src, nelems_per_pe,
                        resolve_dtype(dtype), group=self.members)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Team(members={self.members}, me={self.ctx.rank})"
