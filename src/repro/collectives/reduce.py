"""Reduction (paper section 4.4, Algorithm 2), compiled to a schedule.

Binomial tree with recursive doubling: the pairings come from
:func:`~repro.collectives.binomial.tree_stages` in the ``"doubling"``
direction — each stage's parent *gets* its child's accumulated values
and folds them with the reduction operator, moving data from the leaves
toward the root.

Buffers: every PE first copies its contribution into a *shared* scratch
buffer ``s`` (so partners can read it one-sidedly) and receives partner
data into a *private* ``l`` — exactly the two extra variables the paper
introduces "to prevent any unintended overwriting of values on any PE".
An initial barrier orders the ``s`` loads before the first stage's gets.

Note one deliberate deviation from the paper's *pseudocode*: Algorithm 2
reads ``get(l_buff, src, ...)``, but fetching the partner's original
``src`` would lose the partner's accumulated subtree — the get must (and
here does) read the partner's ``s``, matching the surrounding prose
("reduction values ... and the aggregate results of previous
iterations").

Supported operators: sum/prod/min/max for all Table 1 types, plus
bitwise and/or/xor for the non-floating-point types (section 4.4).
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import CollectiveArgumentError
from .binomial import tree_stages
from .common import (
    resolve_group,
    span_bytes,
    validate_counts,
    validate_root,
)
from .ops import check_op
from .schedule.executor import PreparedCollective, execute_schedule
from .schedule.ir import (
    BARRIER,
    Buffer,
    Copy,
    Get,
    RankProgram,
    Reduce,
    Schedule,
    Stage,
)
from .virtual_rank import logical_rank, virtual_rank

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = ["reduce", "prepare_reduce", "compile_reduce"]

#: Algorithms :func:`compile_reduce` accepts.
ALGORITHMS = ("binomial", "linear")


def reduce(
    ctx: "XBRTime",
    dest: int,
    src: int,
    nelems: int,
    stride: int,
    root: int,
    op: str,
    dtype: np.dtype,
    *,
    algorithm: str = "binomial",
    group: Sequence[int] | None = None,
) -> None:
    """``xbrtime_TYPE_reduce_OP(dest, src, nelems, stride, root)``.

    ``src`` must be a symmetric address (partners read it / the shared
    scratch one-sidedly); ``dest`` is significant only on the root and
    may be private.
    """
    prepare_reduce(
        ctx, dest, src, nelems, stride, root, op, dtype,
        algorithm=algorithm, group=group,
    ).run(ctx)


def prepare_reduce(
    ctx: "XBRTime",
    dest: int,
    src: int,
    nelems: int,
    stride: int,
    root: int,
    op: str,
    dtype: np.dtype,
    *,
    algorithm: str = "binomial",
    group: Sequence[int] | None = None,
) -> PreparedCollective:
    """Validate, select and compile — everything but the execution."""
    validate_counts(nelems, stride)
    check_op(op, dtype)
    members, me = resolve_group(ctx, group)
    n_pes = len(members)
    validate_root(root, n_pes)
    if n_pes > 1 and not ctx.is_symmetric(src):
        raise CollectiveArgumentError(
            f"reduce src {src:#x} must be a symmetric (shared-segment) "
            "address (paper section 4.4)"
        )
    if algorithm == "auto":
        from .tuning import select_algorithm

        algorithm = select_algorithm(
            "reduce", nelems * dtype.itemsize, n_pes,
            ctx.config.topology,
        )
    attrs = dict(algorithm=algorithm, root=root, op=op, nelems=nelems,
                 dtype=str(dtype))
    if algorithm == "hierarchical":
        from .hierarchy import reduce_hierarchical

        return PreparedCollective(
            name="reduce", members=members, me=me, dtype=dtype, attrs=attrs,
            stats_key=f"reduce:{op}:hierarchical", stats_rank=root,
            body=lambda c: reduce_hierarchical(
                c, dest, src, nelems, stride, root, op, dtype, group=group),
        )
    sched = compile_reduce(n_pes, root, nelems, stride, dtype.itemsize, op,
                           algorithm=algorithm)
    return PreparedCollective(
        name="reduce", members=members, me=me, dtype=dtype, attrs=attrs,
        schedule=sched, bindings={"dest": dest, "src": src},
        stats_key=f"reduce:{op}:{algorithm}", stats_rank=root,
    )


def run_binomial(ctx: "XBRTime", dest: int, src: int, nelems: int,
                 stride: int, root: int, op: str, dtype: np.dtype,
                 members: tuple[int, ...], me: int) -> None:
    """Execute the binomial tree as a bare sub-schedule (no outer span).

    The hierarchical two-level reduction composes compiled trees inside
    its own ``reduce.intra``/``reduce.inter`` spans.
    """
    sched = compile_reduce(len(members), root, nelems, stride,
                           dtype.itemsize, op)
    execute_schedule(ctx, sched, tuple(members), me,
                     {"dest": dest, "src": src}, dtype)


def compile_reduce(n_pes: int, root: int, nelems: int, stride: int,
                   itemsize: int, op: str, *,
                   algorithm: str = "binomial") -> Schedule:
    """Compile one reduce call shape into a schedule (pure, cached)."""
    if algorithm == "binomial":
        return _compile_binomial(n_pes, root, nelems, stride, itemsize, op)
    if algorithm == "linear":
        return _compile_linear(n_pes, root, nelems, stride, itemsize, op)
    raise CollectiveArgumentError(f"unknown reduce algorithm {algorithm!r}")


def _degenerate(n_pes: int, root: int, nelems: int, stride: int,
                itemsize: int, op: str, algorithm: str) -> Schedule:
    """1 PE or empty payload: the root copies src→dest, everyone syncs."""
    nbytes = span_bytes(nelems, stride, itemsize)
    programs = []
    for r in range(n_pes):
        prologue: list = []
        if r == root:
            prologue.append(Copy("dest", 0, "src", 0, nelems, stride))
        prologue.append(BARRIER)
        programs.append(RankProgram(r, tuple(prologue)))
    return Schedule(
        collective="reduce", algorithm=algorithm, n_pes=n_pes,
        itemsize=itemsize, root=root, op=op,
        buffers=(Buffer("dest", "user", nbytes, ranks=(root,)),
                 Buffer("src", "user", nbytes)),
        programs=tuple(programs),
        deliver=((root, "dest", 0, nbytes),) if nbytes else (),
    )


@lru_cache(maxsize=512)
def _compile_binomial(n_pes: int, root: int, nelems: int, stride: int,
                      itemsize: int, op: str) -> Schedule:
    if nelems == 0 or n_pes == 1:
        return _degenerate(n_pes, root, nelems, stride, itemsize, op,
                           "binomial")
    nbytes = span_bytes(nelems, stride, itemsize)
    # Index each stage's pairs by parent so the per-rank loop below is
    # O(log N) per rank instead of rescanning all N-1 tree edges.
    stage_children: list[dict[int, list[int]]] = []
    for pairs in tree_stages(n_pes, "doubling"):
        by_parent: dict[int, list[int]] = {}
        for child, parent in pairs:
            by_parent.setdefault(parent, []).append(child)
        stage_children.append(by_parent)
    programs = []
    for r in range(n_pes):
        vir = virtual_rank(r, root, n_pes)
        # Load the shared buffer, then order every load before the first
        # stage's one-sided gets.
        prologue = (Copy("s", 0, "src", 0, nelems, stride), BARRIER)
        stages = []
        for i, by_parent in enumerate(stage_children):
            steps: list = []
            for child in by_parent.get(vir, ()):
                # Pull the child's *accumulated* values (see module
                # note) and fold them in.
                steps.append(Get("l", 0, "s", 0, nelems, stride,
                                 logical_rank(child, root, n_pes)))
                steps.append(Reduce("s", 0, "l", 0, nelems, stride,
                                    nelems))
            steps.append(BARRIER)
            stages.append(Stage(i, tuple(steps)))
        epilogue = (Copy("dest", 0, "s", 0, nelems, stride),) if vir == 0 \
            else ()
        programs.append(RankProgram(r, prologue, tuple(stages), epilogue))
    return Schedule(
        collective="reduce", algorithm="binomial", n_pes=n_pes,
        itemsize=itemsize, root=root, op=op,
        buffers=(Buffer("dest", "user", nbytes, ranks=(root,)),
                 Buffer("src", "user", nbytes),
                 Buffer("s", "scratch", nbytes, symmetric=True),
                 Buffer("l", "private", nbytes)),
        programs=tuple(programs),
        deliver=((root, "dest", 0, nbytes),),
    )


@lru_cache(maxsize=512)
def _compile_linear(n_pes: int, root: int, nelems: int, stride: int,
                    itemsize: int, op: str) -> Schedule:
    """Flat algorithm: the root gets and folds every PE's values."""
    if nelems == 0 or n_pes == 1:
        return _degenerate(n_pes, root, nelems, stride, itemsize, op,
                           "linear")
    nbytes = span_bytes(nelems, stride, itemsize)
    programs = []
    for r in range(n_pes):
        prologue: list = [Copy("s", 0, "src", 0, nelems, stride), BARRIER]
        if r == root:
            for other in range(n_pes):
                if other == root:
                    continue
                prologue.append(Get("l", 0, "s", 0, nelems, stride, other))
                prologue.append(Reduce("s", 0, "l", 0, nelems, stride,
                                       nelems))
            prologue.append(Copy("dest", 0, "s", 0, nelems, stride))
        programs.append(RankProgram(r, tuple(prologue), (), (BARRIER,)))
    return Schedule(
        collective="reduce", algorithm="linear", n_pes=n_pes,
        itemsize=itemsize, root=root, op=op,
        buffers=(Buffer("dest", "user", nbytes, ranks=(root,)),
                 Buffer("src", "user", nbytes),
                 Buffer("s", "scratch", nbytes, symmetric=True),
                 Buffer("l", "private", nbytes, ranks=(root,))),
        programs=tuple(programs),
        deliver=((root, "dest", 0, nbytes),),
    )
