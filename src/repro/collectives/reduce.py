"""Reduction (paper section 4.4, Algorithm 2).

Binomial tree with recursive doubling: the mask isolates virtual-rank
bits right→left (loop index ascending), reversing the data flow of
broadcast — qualifying PEs ``get`` their partner's accumulated values
and fold them with the reduction operator, moving data from the leaves
toward the root.

Buffers: every PE first copies its contribution into a *shared* scratch
buffer ``s_buff`` (so partners can read it one-sidedly) and receives
partner data into a *private* ``l_buff`` — exactly the two extra
variables the paper introduces "to prevent any unintended overwriting of
values on any PE".  An initial barrier orders the ``s_buff`` loads
before the first stage's gets.

Note one deliberate deviation from the paper's *pseudocode*: Algorithm 2
reads ``get(l_buff, src, ...)``, but fetching the partner's original
``src`` would lose the partner's accumulated subtree — the get must (and
here does) read the partner's ``s_buff``, matching the surrounding prose
("reduction values ... and the aggregate results of previous
iterations").

Supported operators: sum/prod/min/max for all Table 1 types, plus
bitwise and/or/xor for the non-floating-point types (section 4.4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import CollectiveArgumentError
from .binomial import n_stages
from .common import (
    charge_elementwise,
    collective_span,
    local_copy,
    private_buffer,
    resolve_group,
    scratch_buffers,
    span_bytes,
    stage_span,
    validate_counts,
    validate_root,
)
from .ops import apply_op, check_op
from .virtual_rank import virtual_rank

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = ["reduce"]


def reduce(
    ctx: "XBRTime",
    dest: int,
    src: int,
    nelems: int,
    stride: int,
    root: int,
    op: str,
    dtype: np.dtype,
    *,
    algorithm: str = "binomial",
    group: Sequence[int] | None = None,
) -> None:
    """``xbrtime_TYPE_reduce_OP(dest, src, nelems, stride, root)``.

    ``src`` must be a symmetric address (partners read it / the shared
    scratch one-sidedly); ``dest`` is significant only on the root and
    may be private.
    """
    validate_counts(nelems, stride)
    check_op(op, dtype)
    members, me = resolve_group(ctx, group)
    n_pes = len(members)
    validate_root(root, n_pes)
    if n_pes > 1 and not ctx.is_symmetric(src):
        raise CollectiveArgumentError(
            f"reduce src {src:#x} must be a symmetric (shared-segment) "
            "address (paper section 4.4)"
        )
    if algorithm == "auto":
        from .tuning import select_algorithm

        algorithm = select_algorithm(
            "reduce", nelems * dtype.itemsize, n_pes,
            ctx.machine.config.topology,
        )
    if me == root:
        ctx.machine.stats.collective_calls[f"reduce:{op}:{algorithm}"] += 1
    with collective_span(ctx, "reduce", members, algorithm=algorithm,
                         root=root, op=op, nelems=nelems, dtype=str(dtype)):
        if algorithm == "binomial":
            _binomial(ctx, dest, src, nelems, stride, root, op, dtype,
                      members, me)
        elif algorithm == "linear":
            _linear(ctx, dest, src, nelems, stride, root, op, dtype,
                    members, me)
        elif algorithm == "hierarchical":
            from .hierarchy import reduce_hierarchical

            reduce_hierarchical(ctx, dest, src, nelems, stride, root, op,
                                dtype, group=group)
        else:
            raise CollectiveArgumentError(
                f"unknown reduce algorithm {algorithm!r}"
            )


def _binomial(ctx: "XBRTime", dest: int, src: int, nelems: int, stride: int,
              root: int, op: str, dtype: np.dtype,
              members: tuple[int, ...], me: int) -> None:
    n_pes = len(members)
    vir_rank = virtual_rank(me, root, n_pes)
    if nelems == 0 or n_pes == 1:
        if me == root:
            local_copy(ctx, dest, src, nelems, stride, dtype)
        ctx.barrier_team(members)
        return
    eb = dtype.itemsize
    nbytes = span_bytes(nelems, stride, eb)
    with scratch_buffers(ctx, nbytes) as (s_buff,), \
            private_buffer(ctx, nbytes) as l_buff:
        # Load the shared buffer with this PE's contribution.
        local_copy(ctx, s_buff, src, nelems, stride, dtype)
        s_view = ctx.view(s_buff, dtype, nelems, stride)
        l_view = ctx.view(l_buff, dtype, nelems, stride)
        # Order every s_buff load before the first stage's one-sided gets.
        ctx.barrier_team(members)
        k = n_stages(n_pes)
        mask = (1 << k) - 1
        for i in range(k):
            with stage_span(ctx, i):
                mask ^= 1 << i
                if (vir_rank | mask) == mask and (vir_rank & (1 << i)) == 0:
                    vir_part = (vir_rank ^ (1 << i)) % n_pes
                    log_part = (vir_part + root) % n_pes
                    if vir_rank < vir_part:
                        # Pull the partner's accumulated values (see
                        # module note).
                        ctx.get(l_buff, s_buff, nelems, stride,
                                members[log_part], dtype)
                        apply_op(op, s_view, l_view)
                        charge_elementwise(ctx, nelems)
                ctx.barrier_team(members)
        if vir_rank == 0:
            local_copy(ctx, dest, s_buff, nelems, stride, dtype)


def _linear(ctx: "XBRTime", dest: int, src: int, nelems: int, stride: int,
            root: int, op: str, dtype: np.dtype,
            members: tuple[int, ...], me: int) -> None:
    """Flat algorithm: the root gets and folds every PE's values."""
    n_pes = len(members)
    if nelems == 0 or n_pes == 1:
        if me == root:
            local_copy(ctx, dest, src, nelems, stride, dtype)
        ctx.barrier_team(members)
        return
    eb = dtype.itemsize
    nbytes = span_bytes(nelems, stride, eb)
    with scratch_buffers(ctx, nbytes) as (s_buff,):
        local_copy(ctx, s_buff, src, nelems, stride, dtype)
        ctx.barrier_team(members)
        if me == root:
            with private_buffer(ctx, nbytes) as l_buff:
                acc = ctx.view(s_buff, dtype, nelems, stride)
                l_view = ctx.view(l_buff, dtype, nelems, stride)
                for other in range(n_pes):
                    if other == root:
                        continue
                    ctx.get(l_buff, s_buff, nelems, stride, members[other],
                            dtype)
                    apply_op(op, acc, l_view)
                    charge_elementwise(ctx, nelems)
                local_copy(ctx, dest, s_buff, nelems, stride, dtype)
        ctx.barrier_team(members)
