"""Binomial-tree stage schedules (paper section 4.2, Figure 3).

These helpers compute, in virtual-rank space, exactly the pairings the
paper's mask loops produce — used by the collective implementations, by
the tests (oracle for the mask arithmetic) and by the Figure 3 bench,
which renders the tree.

For ``n_pes`` PEs the tree has ``ceil(log2(n_pes))`` stages.  In the
*halving* direction (broadcast/scatter) stage ``i`` runs from
``i = ceil(log2 n)-1`` down to 0 and a sender with zeroed low bits
transfers to the partner ``vir ^ 2**i``; in the *doubling* direction
(reduction/gather) stages run upward and the receiver pulls from the
same partner.  Partners beyond ``n_pes - 1`` are skipped (the paper's
``vir_rank < vir_part`` check plus the mod guard).
"""

from __future__ import annotations

from math import ceil, log2

from ..errors import CollectiveArgumentError

__all__ = [
    "n_stages",
    "tree_stages",
    "tree_children",
    "tree_parent",
    "subtree_span",
    "render_tree",
]


def n_stages(n_pes: int) -> int:
    """``ceil(log2(n_pes))`` communication stages (0 for a single PE)."""
    if n_pes <= 0:
        raise CollectiveArgumentError(f"n_pes must be positive, got {n_pes}")
    return ceil(log2(n_pes)) if n_pes > 1 else 0


def tree_stages(n_pes: int, direction: str = "halving") -> list[list[tuple[int, int]]]:
    """Per-stage (from_vir, to_vir) pairs.

    ``direction="halving"`` (broadcast/scatter): data flows parent→child,
    stages ordered top of the tree first.  ``direction="doubling"``
    (reduction/gather): pairs are (child, parent) with leaf stages first.
    """
    if direction not in ("halving", "doubling"):
        raise CollectiveArgumentError(f"unknown direction {direction!r}")
    stages: list[list[tuple[int, int]]] = []
    k = n_stages(n_pes)
    stage_order = range(k - 1, -1, -1) if direction == "halving" else range(k)
    for i in stage_order:
        pairs: list[tuple[int, int]] = []
        low_mask = (1 << (i + 1)) - 1
        for vir in range(0, n_pes, 1 << (i + 1)):
            # vir has all bits <= i clear by construction.
            assert vir & low_mask == 0
            partner = vir ^ (1 << i)
            if partner < n_pes:
                if direction == "halving":
                    pairs.append((vir, partner))
                else:
                    pairs.append((partner, vir))
        stages.append(pairs)
    return stages


def tree_children(vir: int, n_pes: int) -> list[int]:
    """Virtual ranks that receive directly from ``vir`` in the broadcast
    tree, in the order the stages reach them."""
    if not 0 <= vir < n_pes:
        raise CollectiveArgumentError(f"vir {vir} out of range")
    children = []
    for stage in tree_stages(n_pes, "halving"):
        for frm, to in stage:
            if frm == vir:
                children.append(to)
    return children


def tree_parent(vir: int, n_pes: int) -> int | None:
    """The virtual rank ``vir`` receives from (None for the root)."""
    if vir == 0:
        return None
    for stage in tree_stages(n_pes, "halving"):
        for frm, to in stage:
            if to == vir:
                return frm
    raise CollectiveArgumentError(f"vir {vir} unreachable in {n_pes}-PE tree")


def subtree_span(vir: int, stage_i: int, n_pes: int) -> tuple[int, int]:
    """Virtual-rank interval ``[vir, end)`` covered by ``vir`` and the
    children it still has to serve at stage ``stage_i`` — the message
    extent scatter/gather move in that stage."""
    end = min(vir + (1 << stage_i), n_pes)
    return vir, end


def render_tree(n_pes: int) -> str:
    """ASCII rendering of the binomial broadcast tree (Figure 3)."""
    lines = [f"binomial tree, {n_pes} PEs, {n_stages(n_pes)} stages"]
    for depth, stage in enumerate(tree_stages(n_pes, "halving")):
        arrows = "  ".join(f"{frm}->{to}" for frm, to in stage)
        lines.append(f"  stage {depth}: {arrows}")
    return "\n".join(lines)
