"""Non-blocking collectives (paper section 7 future work).

Modelled as *deferred* collectives: initiation captures the arguments
and returns a handle; the operation executes when every participant
waits on its handle.  This matches the weakest conforming semantics of
non-blocking collectives (completion is only guaranteed at the wait) and
keeps the simulation's barrier-based timing exact.  True communication/
computation overlap is a limitation of this reproduction — the paper
itself lists non-blocking collectives as unimplemented future work.

Usage (all PEs)::

    h = ibroadcast(ctx, dest, src, n, 1, root, dtype)
    ...local work...
    h.wait()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from ..errors import CollectiveArgumentError
from . import broadcast as _broadcast
from . import gather as _gather
from . import reduce as _reduce
from . import scatter as _scatter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = [
    "CollectiveHandle",
    "ibroadcast",
    "ireduce",
    "iscatter",
    "igather",
]


@dataclass
class CollectiveHandle:
    """Completion token for a deferred collective."""

    name: str
    _run: Callable[[], None] = field(repr=False)
    done: bool = False

    def wait(self) -> None:
        """Execute/complete the collective (must be called by every
        participant, like the blocking call would be)."""
        if self.done:
            return
        self._run()
        self.done = True

    def test(self) -> bool:
        """Non-blocking completion check."""
        return self.done


def _defer(name: str, run: Callable[[], None]) -> CollectiveHandle:
    return CollectiveHandle(name=name, _run=run)


def ibroadcast(ctx: "XBRTime", dest: int, src: int, nelems: int, stride: int,
               root: int, dtype: np.dtype,
               group: Sequence[int] | None = None) -> CollectiveHandle:
    """Non-blocking broadcast (Algorithm 1, deferred)."""
    return _defer("ibroadcast", lambda: _broadcast.broadcast(
        ctx, dest, src, nelems, stride, root, dtype, group=group))


def ireduce(ctx: "XBRTime", dest: int, src: int, nelems: int, stride: int,
            root: int, op: str, dtype: np.dtype,
            group: Sequence[int] | None = None) -> CollectiveHandle:
    """Non-blocking reduction (Algorithm 2, deferred)."""
    return _defer("ireduce", lambda: _reduce.reduce(
        ctx, dest, src, nelems, stride, root, op, dtype, group=group))


def iscatter(ctx: "XBRTime", dest: int, src: int, pe_msgs: Sequence[int],
             pe_disp: Sequence[int], nelems: int, root: int,
             dtype: np.dtype,
             group: Sequence[int] | None = None) -> CollectiveHandle:
    """Non-blocking scatter (Algorithm 3, deferred)."""
    msgs, disp = tuple(pe_msgs), tuple(pe_disp)
    return _defer("iscatter", lambda: _scatter.scatter(
        ctx, dest, src, msgs, disp, nelems, root, dtype, group=group))


def igather(ctx: "XBRTime", dest: int, src: int, pe_msgs: Sequence[int],
            pe_disp: Sequence[int], nelems: int, root: int,
            dtype: np.dtype,
            group: Sequence[int] | None = None) -> CollectiveHandle:
    """Non-blocking gather (Algorithm 4, deferred)."""
    msgs, disp = tuple(pe_msgs), tuple(pe_disp)
    return _defer("igather", lambda: _gather.gather(
        ctx, dest, src, msgs, disp, nelems, root, dtype, group=group))
