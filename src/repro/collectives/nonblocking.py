"""Non-blocking collectives (paper section 7 future work).

Modelled as *deferred* collectives: initiation validates the call and
*compiles* its schedule (via the blocking front-ends' ``prepare_*``
functions), returning a handle that holds the ready-to-run
:class:`~repro.collectives.schedule.PreparedCollective`; the operation
executes when every participant waits on its handle.  Argument errors
therefore surface at initiation — where the faulty call site is — while
all communication still happens at the wait.  This matches the weakest conforming semantics of
non-blocking collectives (completion is only guaranteed at the wait) and
keeps the simulation's barrier-based timing exact.  True communication/
computation overlap is a limitation of this reproduction — the paper
itself lists non-blocking collectives as unimplemented future work.

Usage (all PEs)::

    h = ibroadcast(ctx, dest, src, n, 1, root, dtype)
    ...local work...
    h.wait()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from ..errors import CollectiveArgumentError
from . import broadcast as _broadcast
from . import gather as _gather
from . import reduce as _reduce
from . import scatter as _scatter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = [
    "CollectiveHandle",
    "ibroadcast",
    "ireduce",
    "iscatter",
    "igather",
]


@dataclass
class CollectiveHandle:
    """Completion token for a deferred collective.

    A handle is *per participant*: every PE initiates its own and waits
    on its own.  ``wait()`` is idempotent — a second call is a no-op, as
    with ``MPI_Wait`` on an inactive request.
    """

    name: str = "collective"
    _run: Callable[[], None] | None = field(default=None, repr=False)
    done: bool = False
    #: World rank that initiated this handle (None = never initiated).
    initiator: int | None = None
    _ctx: Any = field(default=None, repr=False)

    def wait(self) -> None:
        """Execute/complete the collective (must be called by every
        participant, like the blocking call would be)."""
        if self._run is None:
            raise CollectiveArgumentError(
                f"wait() on a never-initiated {self.name} handle: every "
                "participant must call the i* initiation itself before "
                "waiting"
            )
        self._check_caller()
        if self.done:
            return
        self._run()
        self.done = True

    def _check_caller(self) -> None:
        """Reject a wait issued from a different PE than the initiator.

        Handles are plain Python objects visible across the simulated
        PEs' threads, so without this check a PE could accidentally
        drive *another* participant's side of the collective — a class
        of bug that deadlocks real programs.  Checked before the
        idempotence fast path so the misuse is caught even on completed
        handles.
        """
        if self._ctx is None or self.initiator is None:
            return
        current = self._ctx.executing_rank()
        if current is None:
            return  # inspected from outside PE code (driver/tests)
        if current != self.initiator:
            raise CollectiveArgumentError(
                f"PE {current} waited on a {self.name} handle "
                f"initiated by PE {self.initiator}; non-blocking "
                "collectives are per-participant — each PE initiates and "
                "waits on its own handle"
            )

    def test(self) -> bool:
        """Non-blocking completion check."""
        return self.done


def _defer(ctx: "XBRTime", name: str,
           run: Callable[[], None]) -> CollectiveHandle:
    return CollectiveHandle(name=name, _run=run, initiator=ctx.rank,
                            _ctx=ctx)


def ibroadcast(ctx: "XBRTime", dest: int, src: int, nelems: int, stride: int,
               root: int, dtype: np.dtype,
               group: Sequence[int] | None = None) -> CollectiveHandle:
    """Non-blocking broadcast (Algorithm 1, deferred)."""
    prepared = _broadcast.prepare_broadcast(
        ctx, dest, src, nelems, stride, root, dtype, group=group)
    return _defer(ctx, "ibroadcast", lambda: prepared.run(ctx))


def ireduce(ctx: "XBRTime", dest: int, src: int, nelems: int, stride: int,
            root: int, op: str, dtype: np.dtype,
            group: Sequence[int] | None = None) -> CollectiveHandle:
    """Non-blocking reduction (Algorithm 2, deferred)."""
    prepared = _reduce.prepare_reduce(
        ctx, dest, src, nelems, stride, root, op, dtype, group=group)
    return _defer(ctx, "ireduce", lambda: prepared.run(ctx))


def iscatter(ctx: "XBRTime", dest: int, src: int, pe_msgs: Sequence[int],
             pe_disp: Sequence[int], nelems: int, root: int,
             dtype: np.dtype,
             group: Sequence[int] | None = None) -> CollectiveHandle:
    """Non-blocking scatter (Algorithm 3, deferred)."""
    prepared = _scatter.prepare_scatter(
        ctx, dest, src, tuple(pe_msgs), tuple(pe_disp), nelems, root, dtype,
        group=group)
    return _defer(ctx, "iscatter", lambda: prepared.run(ctx))


def igather(ctx: "XBRTime", dest: int, src: int, pe_msgs: Sequence[int],
            pe_disp: Sequence[int], nelems: int, root: int,
            dtype: np.dtype,
            group: Sequence[int] | None = None) -> CollectiveHandle:
    """Non-blocking gather (Algorithm 4, deferred)."""
    prepared = _gather.prepare_gather(
        ctx, dest, src, tuple(pe_msgs), tuple(pe_disp), nelems, root, dtype,
        group=group)
    return _defer(ctx, "igather", lambda: prepared.run(ctx))
