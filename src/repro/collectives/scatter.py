"""Scatter (paper section 4.5, Algorithm 3), compiled to a schedule.

Distributes a *distinct* segment of the root's data to every PE, with
per-PE element counts (``pe_msgs``) and displacements into ``src``
(``pe_disp``) — more general than a fixed-size scatter.  Zero-count PEs
are fully supported: they receive nothing and contribute no message,
but still participate in every stage barrier.

Two complications the paper works through:

* each tree-stage message must carry not only the partner's own
  elements but those of all the partner's children, so they can be
  forwarded in later stages; and
* with a non-zero root the per-PE segments, ordered by *logical* rank in
  ``src``, are not contiguous in *virtual*-rank order — so the root
  first reorders the data by virtual rank into a shared buffer, using
  adjusted displacements ``adj_disp``, guaranteeing every stage needs
  exactly one contiguous ``put``.

The tree walk itself (stage order, partner selection, barrier per
stage) is identical to broadcast's recursive halving and comes from the
same :func:`~repro.collectives.binomial.tree_stages` oracle.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import CollectiveArgumentError
from .binomial import n_stages, tree_stages
from .common import resolve_group, validate_root
from .schedule.executor import PreparedCollective
from .schedule.ir import (
    BARRIER,
    Buffer,
    Copy,
    Put,
    RankProgram,
    Schedule,
    Stage,
)
from .virtual_rank import logical_rank, virtual_rank

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = ["scatter", "prepare_scatter", "compile_scatter",
           "adjusted_displacements"]


def adjusted_displacements(
    pe_msgs: Sequence[int], root: int
) -> list[int]:
    """``adj_disp``: element offset of each *virtual* rank's segment in
    the virtual-rank-ordered buffer (one extra entry = total count)."""
    n_pes = len(pe_msgs)
    adj = [0] * (n_pes + 1)
    for vir in range(n_pes):
        log = (vir + root) % n_pes
        adj[vir + 1] = adj[vir] + pe_msgs[log]
    return adj


def _validate(pe_msgs: Sequence[int], pe_disp: Sequence[int], nelems: int,
              n_pes: int, what: str) -> None:
    if len(pe_msgs) != n_pes or len(pe_disp) != n_pes:
        raise CollectiveArgumentError(
            f"{what}: pe_msgs/pe_disp must have one entry per PE "
            f"({n_pes}), got {len(pe_msgs)}/{len(pe_disp)}"
        )
    if any(m < 0 for m in pe_msgs):
        raise CollectiveArgumentError(f"{what}: negative pe_msgs entry")
    if any(d < 0 for d in pe_disp):
        raise CollectiveArgumentError(f"{what}: negative pe_disp entry")
    total = sum(pe_msgs)
    if total != nelems:
        raise CollectiveArgumentError(
            f"{what}: sum(pe_msgs)={total} does not match nelems={nelems}"
        )


def scatter(
    ctx: "XBRTime",
    dest: int,
    src: int,
    pe_msgs: Sequence[int],
    pe_disp: Sequence[int],
    nelems: int,
    root: int,
    dtype: np.dtype,
    *,
    group: Sequence[int] | None = None,
) -> None:
    """``xbrtime_TYPE_scatter(dest, src, pe_msgs, pe_disp, nelems, root)``."""
    prepare_scatter(ctx, dest, src, pe_msgs, pe_disp, nelems, root, dtype,
                    group=group).run(ctx)


def prepare_scatter(
    ctx: "XBRTime",
    dest: int,
    src: int,
    pe_msgs: Sequence[int],
    pe_disp: Sequence[int],
    nelems: int,
    root: int,
    dtype: np.dtype,
    *,
    group: Sequence[int] | None = None,
) -> PreparedCollective:
    """Validate and compile — everything but the execution."""
    members, me = resolve_group(ctx, group)
    n_pes = len(members)
    validate_root(root, n_pes)
    _validate(pe_msgs, pe_disp, nelems, n_pes, "scatter")
    sched = compile_scatter(n_pes, root, tuple(pe_msgs), tuple(pe_disp),
                            nelems, dtype.itemsize)
    return PreparedCollective(
        name="scatter", members=members, me=me, dtype=dtype,
        attrs=dict(root=root, nelems=nelems, dtype=str(dtype)),
        schedule=sched, bindings={"dest": dest, "src": src},
        stats_key="scatter:binomial", stats_rank=root,
    )


def _io_buffers(n_pes: int, root: int, counts: tuple[int, ...],
                disps: tuple[int, ...], itemsize: int,
                root_side: str) -> tuple[Buffer, Buffer]:
    """The per-rank ``dest`` extents and the root's strided buffer.

    ``root_side`` names which of dest/src carries the displaced layout
    on the root (``"src"`` for scatter, ``"dest"`` for gather).
    """
    per_rank = tuple(c * itemsize for c in counts)
    extent = max((d + c) for d, c in zip(disps, counts)) * itemsize \
        if any(counts) else 0
    flat = Buffer("dest" if root_side == "src" else "src", "user", per_rank)
    rooted = Buffer(root_side, "user", extent, ranks=(root,))
    return (flat, rooted) if root_side == "src" else (rooted, flat)


@lru_cache(maxsize=256)
def compile_scatter(n_pes: int, root: int, counts: tuple[int, ...],
                    disps: tuple[int, ...], nelems: int,
                    itemsize: int) -> Schedule:
    """Compile one scatter call shape into a schedule (pure, cached)."""
    eb = itemsize
    dest_buf, src_buf = _io_buffers(n_pes, root, counts, disps, eb, "src")
    deliver = tuple((r, "dest", 0, counts[r] * eb) for r in range(n_pes)
                    if counts[r])
    if nelems == 0:
        return Schedule(
            collective="scatter", algorithm="binomial", n_pes=n_pes,
            itemsize=eb, root=root, buffers=(dest_buf, src_buf),
            programs=tuple(RankProgram(r, (BARRIER,))
                           for r in range(n_pes)),
        )
    if n_pes == 1:
        steps: list = []
        if counts[0]:
            steps.append(Copy("dest", 0, "src", disps[0] * eb, counts[0], 1,
                              skip_noop=False))
        steps.append(BARRIER)
        return Schedule(
            collective="scatter", algorithm="binomial", n_pes=n_pes,
            itemsize=eb, root=root, buffers=(dest_buf, src_buf),
            programs=(RankProgram(0, tuple(steps)),), deliver=deliver,
        )
    adj = adjusted_displacements(counts, root)
    k = n_stages(n_pes)
    # Index each stage's pairs by sender so the per-rank loop below is
    # O(log N) per rank instead of rescanning all N-1 tree edges.
    stage_targets: list[dict[int, list[int]]] = []
    for pairs in tree_stages(n_pes, "halving"):
        by_sender: dict[int, list[int]] = {}
        for frm, to in pairs:
            by_sender.setdefault(frm, []).append(to)
        stage_targets.append(by_sender)
    programs = []
    for r in range(n_pes):
        vir = virtual_rank(r, root, n_pes)
        prologue: list = []
        if vir == 0:
            # Reorder src by virtual rank so every subtree is contiguous.
            for v in range(n_pes):
                log = logical_rank(v, root, n_pes)
                cnt = counts[log]
                if cnt:
                    prologue.append(Copy("s", adj[v] * eb, "src",
                                         disps[log] * eb, cnt, 1,
                                         skip_noop=False))
        stages = []
        for ordinal, by_sender in enumerate(stage_targets):
            i = k - 1 - ordinal  # the tree bit this stage halves over
            steps = []
            for to in by_sender.get(vir, ()):
                # The partner's segment plus those of its children.
                end = min(to + (1 << i), n_pes)
                msg_size = adj[end] - adj[to]
                if msg_size:
                    steps.append(Put("s", adj[to] * eb, "s",
                                     adj[to] * eb, msg_size, 1,
                                     logical_rank(to, root, n_pes)))
            steps.append(BARRIER)
            stages.append(Stage(ordinal, tuple(steps)))
        epilogue: tuple = ()
        if counts[r]:
            epilogue = (Copy("dest", 0, "s", adj[vir] * eb, counts[r], 1,
                             skip_noop=False),)
        programs.append(RankProgram(r, tuple(prologue), tuple(stages),
                                    epilogue))
    return Schedule(
        collective="scatter", algorithm="binomial", n_pes=n_pes,
        itemsize=eb, root=root,
        buffers=(dest_buf, src_buf,
                 Buffer("s", "scratch", nelems * eb, symmetric=True)),
        programs=tuple(programs), deliver=deliver,
    )
