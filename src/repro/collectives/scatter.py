"""Scatter (paper section 4.5, Algorithm 3).

Distributes a *distinct* segment of the root's data to every PE, with
per-PE element counts (``pe_msgs``) and displacements into ``src``
(``pe_disp``) — more general than a fixed-size scatter.

Two complications the paper works through:

* each tree-stage message must carry not only the partner's own
  elements but those of all the partner's children, so they can be
  forwarded in later stages; and
* with a non-zero root the per-PE segments, ordered by *logical* rank in
  ``src``, are not contiguous in *virtual*-rank order — so the root
  first reorders the data by virtual rank into a shared buffer, using
  adjusted displacements ``adj_disp``, guaranteeing every stage needs
  exactly one contiguous ``put``.

The tree walk itself (mask direction, partner selection, barrier per
stage) is identical to broadcast's recursive halving.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import CollectiveArgumentError
from .binomial import n_stages
from .common import (
    collective_span,
    resolve_group,
    scratch_buffers,
    stage_span,
    validate_root,
)
from .virtual_rank import virtual_rank

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = ["scatter", "adjusted_displacements"]


def adjusted_displacements(
    pe_msgs: Sequence[int], root: int
) -> list[int]:
    """``adj_disp``: element offset of each *virtual* rank's segment in
    the virtual-rank-ordered buffer (one extra entry = total count)."""
    n_pes = len(pe_msgs)
    adj = [0] * (n_pes + 1)
    for vir in range(n_pes):
        log = (vir + root) % n_pes
        adj[vir + 1] = adj[vir] + pe_msgs[log]
    return adj


def _validate(pe_msgs: Sequence[int], pe_disp: Sequence[int], nelems: int,
              n_pes: int, what: str) -> None:
    if len(pe_msgs) != n_pes or len(pe_disp) != n_pes:
        raise CollectiveArgumentError(
            f"{what}: pe_msgs/pe_disp must have one entry per PE "
            f"({n_pes}), got {len(pe_msgs)}/{len(pe_disp)}"
        )
    if any(m < 0 for m in pe_msgs):
        raise CollectiveArgumentError(f"{what}: negative pe_msgs entry")
    if any(d < 0 for d in pe_disp):
        raise CollectiveArgumentError(f"{what}: negative pe_disp entry")
    total = sum(pe_msgs)
    if total != nelems:
        raise CollectiveArgumentError(
            f"{what}: sum(pe_msgs)={total} does not match nelems={nelems}"
        )


def scatter(
    ctx: "XBRTime",
    dest: int,
    src: int,
    pe_msgs: Sequence[int],
    pe_disp: Sequence[int],
    nelems: int,
    root: int,
    dtype: np.dtype,
    *,
    group: Sequence[int] | None = None,
) -> None:
    """``xbrtime_TYPE_scatter(dest, src, pe_msgs, pe_disp, nelems, root)``."""
    members, me = resolve_group(ctx, group)
    n_pes = len(members)
    validate_root(root, n_pes)
    _validate(pe_msgs, pe_disp, nelems, n_pes, "scatter")
    if me == root:
        ctx.machine.stats.collective_calls["scatter:binomial"] += 1
    with collective_span(ctx, "scatter", members, root=root, nelems=nelems,
                         dtype=str(dtype)):
        _binomial(ctx, dest, src, pe_msgs, pe_disp, nelems, root, dtype,
                  members, me)


def _binomial(ctx: "XBRTime", dest: int, src: int, pe_msgs: Sequence[int],
              pe_disp: Sequence[int], nelems: int, root: int,
              dtype: np.dtype, members: tuple[int, ...], me: int) -> None:
    n_pes = len(members)
    vir_rank = virtual_rank(me, root, n_pes)
    eb = dtype.itemsize
    my_count = pe_msgs[me]
    if nelems == 0:
        ctx.barrier_team(members)
        return
    if n_pes == 1:
        if my_count:
            ctx.put(dest, src + pe_disp[me] * eb, my_count, 1, ctx.rank, dtype)
        ctx.barrier_team(members)
        return
    adj = adjusted_displacements(pe_msgs, root)
    with scratch_buffers(ctx, nelems * eb) as (s_buff,):
        if vir_rank == 0:
            # Reorder src by virtual rank so every subtree is contiguous.
            for vir in range(n_pes):
                log = (vir + root) % n_pes
                cnt = pe_msgs[log]
                if cnt:
                    ctx.put(s_buff + adj[vir] * eb, src + pe_disp[log] * eb,
                            cnt, 1, ctx.rank, dtype)
        k = n_stages(n_pes)
        mask = (1 << k) - 1
        for ordinal, i in enumerate(range(k - 1, -1, -1)):
            with stage_span(ctx, ordinal):
                mask ^= 1 << i
                if (vir_rank & mask) == 0 and (vir_rank & (1 << i)) == 0:
                    vir_part = (vir_rank ^ (1 << i)) % n_pes
                    log_part = (vir_part + root) % n_pes
                    if vir_rank < vir_part:
                        # The partner's segment plus those of its
                        # children.
                        end = min(vir_part + (1 << i), n_pes)
                        msg_size = adj[end] - adj[vir_part]
                        if msg_size:
                            off = s_buff + adj[vir_part] * eb
                            ctx.put(off, off, msg_size, 1, members[log_part],
                                    dtype)
                ctx.barrier_team(members)
        if my_count:
            ctx.put(dest, s_buff + adj[vir_rank] * eb, my_count, 1, ctx.rank,
                    dtype)
