"""Broadcast (paper section 4.3, Algorithm 1).

Binomial tree with recursive halving: the mask isolates virtual-rank
bits left→right, qualifying senders ``put`` the broadcast values to the
partner ``vir ^ 2**i``, and a barrier closes every stage.  The
``vir_rank < vir_part`` guard (after the mod) suppresses the invalid
pairings that appear when ``n_pes`` is not a power of two.

``dest`` must be a symmetric address (it is written remotely on every
PE); ``src`` need only exist on the root.  Non-root senders forward out
of their own ``dest``, which holds the values they received in an
earlier stage.

Alternative algorithms (``linear``, ``ring``) are provided for the
algorithm-selection ablation (section 4.1: "no universally optimal
solution"); ``auto`` asks :mod:`~repro.collectives.tuning`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import CollectiveArgumentError
from .binomial import n_stages
from .common import (
    collective_span,
    local_copy,
    resolve_group,
    stage_span,
    validate_counts,
    validate_root,
)
from .virtual_rank import virtual_rank

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = ["broadcast"]


def broadcast(
    ctx: "XBRTime",
    dest: int,
    src: int,
    nelems: int,
    stride: int,
    root: int,
    dtype: np.dtype,
    *,
    algorithm: str = "binomial",
    group: Sequence[int] | None = None,
    copy_to_root_dest: bool = True,
) -> None:
    """``xbrtime_TYPE_broadcast(dest, src, nelems, stride, root)``.

    ``copy_to_root_dest=False`` gives OpenSHMEM ``shmem_broadcast``
    semantics, where the root's ``dest`` is *not* updated (section 4.7).
    """
    validate_counts(nelems, stride)
    members, me = resolve_group(ctx, group)
    n_pes = len(members)
    validate_root(root, n_pes)
    if n_pes > 1 and not ctx.is_symmetric(dest):
        raise CollectiveArgumentError(
            f"broadcast dest {dest:#x} must be a symmetric (shared-segment) "
            "address"
        )
    if algorithm == "auto":
        from .tuning import select_algorithm

        algorithm = select_algorithm(
            "broadcast", nelems * dtype.itemsize, n_pes,
            ctx.machine.config.topology,
        )
    if me == root:
        ctx.machine.stats.collective_calls[f"broadcast:{algorithm}"] += 1
    with collective_span(ctx, "broadcast", members, algorithm=algorithm,
                         root=root, nelems=nelems, dtype=str(dtype)):
        if algorithm == "binomial":
            _binomial(ctx, dest, src, nelems, stride, root, dtype, members,
                      me, copy_to_root_dest)
        elif algorithm == "linear":
            _linear(ctx, dest, src, nelems, stride, root, dtype, members, me,
                    copy_to_root_dest)
        elif algorithm == "ring":
            _ring(ctx, dest, src, nelems, stride, root, dtype, members, me,
                  copy_to_root_dest)
        elif algorithm == "hierarchical":
            from .hierarchy import broadcast_hierarchical

            broadcast_hierarchical(ctx, dest, src, nelems, stride, root,
                                   dtype, group=group)
        else:
            raise CollectiveArgumentError(
                f"unknown broadcast algorithm {algorithm!r}"
            )


def _binomial(ctx: "XBRTime", dest: int, src: int, nelems: int, stride: int,
              root: int, dtype: np.dtype, members: tuple[int, ...], me: int,
              copy_to_root_dest: bool = True) -> None:
    n_pes = len(members)
    # Virtual rank assignment: the root becomes virtual rank 0 (Table 2).
    vir_rank = virtual_rank(me, root, n_pes)
    # Entry barrier: the paper's Algorithm 1 only barriers at stage ends,
    # but a put-based tree must order every participant's *prior* writes
    # to dest before the root's first put can land (real SHMEM
    # implementations do this with pSync flags).
    ctx.barrier_team(members)
    if me == root and copy_to_root_dest:
        local_copy(ctx, dest, src, nelems, stride, dtype)
    k = n_stages(n_pes)
    mask = (1 << k) - 1
    for ordinal, i in enumerate(range(k - 1, -1, -1)):
        with stage_span(ctx, ordinal):
            mask ^= 1 << i
            if (vir_rank & mask) == 0 and (vir_rank & (1 << i)) == 0:
                vir_part = (vir_rank ^ (1 << i)) % n_pes
                log_part = (vir_part + root) % n_pes
                if vir_rank < vir_part:
                    local_src = src if me == root else dest
                    ctx.put(dest, local_src, nelems, stride,
                            members[log_part], dtype)
            # A barrier closes every tree stage (section 4.3).
            ctx.barrier_team(members)


def _linear(ctx: "XBRTime", dest: int, src: int, nelems: int, stride: int,
            root: int, dtype: np.dtype, members: tuple[int, ...], me: int,
            copy_to_root_dest: bool = True) -> None:
    """Flat algorithm: the root puts to every PE in turn."""
    ctx.barrier_team(members)  # entry barrier (see _binomial)
    if me == root:
        if copy_to_root_dest:
            local_copy(ctx, dest, src, nelems, stride, dtype)
        for other in range(len(members)):
            if other != root:
                ctx.put(dest, src, nelems, stride, members[other], dtype)
    ctx.barrier_team(members)


#: Payload chunks the pipelined ring splits a broadcast into.
_RING_CHUNKS = 8


def _ring(ctx: "XBRTime", dest: int, src: int, nelems: int, stride: int,
          root: int, dtype: np.dtype, members: tuple[int, ...], me: int,
          copy_to_root_dest: bool = True) -> None:
    """Chunked pipelined ring — the large-message baseline.

    The payload is split into up to ``_RING_CHUNKS`` pieces; at step
    ``s`` the PE at ring position ``p`` forwards chunk ``s - p``, so all
    ring links carry different chunks concurrently.  Completion takes
    ``(N-1) + (chunks-1)`` steps instead of the unchunked ring's
    ``N-1`` full-payload steps.
    """
    n_pes = len(members)
    ctx.barrier_team(members)  # entry barrier (see _binomial)
    if me == root and copy_to_root_dest:
        local_copy(ctx, dest, src, nelems, stride, dtype)
    if n_pes == 1 or nelems == 0:
        ctx.barrier_team(members)
        return
    chunks = min(_RING_CHUNKS, nelems)
    bounds = [nelems * c // chunks for c in range(chunks + 1)]
    eb = dtype.itemsize
    pos = (me - root) % n_pes
    nxt = members[(me + 1) % n_pes]
    for step in range(n_pes - 1 + chunks - 1):
        with stage_span(ctx, step):
            c = step - pos
            if 0 <= c < chunks and pos < n_pes - 1:
                lo, hi = bounds[c], bounds[c + 1]
                if hi > lo:
                    off = lo * stride * eb
                    local_src = src if me == root else dest
                    ctx.put(dest + off, local_src + off, hi - lo, stride,
                            nxt, dtype)
            ctx.barrier_team(members)
