"""Broadcast (paper section 4.3, Algorithm 1), compiled to a schedule.

The binomial tree is expressed as a compiler: :func:`compile_broadcast`
turns ``(n_pes, root, nelems, stride)`` into a
:class:`~repro.collectives.schedule.Schedule` whose per-rank stages
carry exactly the puts the paper's mask loop produced — the pairings
come from :func:`~repro.collectives.binomial.tree_stages`, the oracle
for that mask arithmetic, so the ``vir_rank < vir_part`` guard lives in
one place.  The single schedule executor then replays it (entry
barrier, root's local copy, one put per stage edge, barrier per stage).

``dest`` must be a symmetric address (it is written remotely on every
PE); ``src`` need only exist on the root.  Non-root senders forward out
of their own ``dest``, which holds the values they received in an
earlier stage.

Alternative algorithms (``linear``, ``ring``) are provided for the
algorithm-selection ablation (section 4.1: "no universally optimal
solution"); ``auto`` asks :mod:`~repro.collectives.tuning`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import CollectiveArgumentError
from .binomial import n_stages, tree_stages
from .common import (
    resolve_group,
    span_bytes,
    validate_counts,
    validate_root,
)
from .schedule.executor import PreparedCollective
from .schedule.ir import (
    BARRIER,
    Buffer,
    Copy,
    Put,
    RankProgram,
    Schedule,
    Stage,
)
from .virtual_rank import logical_rank, ring_neighbor, virtual_rank

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = ["broadcast", "prepare_broadcast", "compile_broadcast"]

#: Algorithms :func:`compile_broadcast` accepts.
ALGORITHMS = ("binomial", "linear", "ring")


def broadcast(
    ctx: "XBRTime",
    dest: int,
    src: int,
    nelems: int,
    stride: int,
    root: int,
    dtype: np.dtype,
    *,
    algorithm: str = "binomial",
    group: Sequence[int] | None = None,
    copy_to_root_dest: bool = True,
) -> None:
    """``xbrtime_TYPE_broadcast(dest, src, nelems, stride, root)``.

    ``copy_to_root_dest=False`` gives OpenSHMEM ``shmem_broadcast``
    semantics, where the root's ``dest`` is *not* updated (section 4.7).
    """
    prepare_broadcast(
        ctx, dest, src, nelems, stride, root, dtype, algorithm=algorithm,
        group=group, copy_to_root_dest=copy_to_root_dest,
    ).run(ctx)


def prepare_broadcast(
    ctx: "XBRTime",
    dest: int,
    src: int,
    nelems: int,
    stride: int,
    root: int,
    dtype: np.dtype,
    *,
    algorithm: str = "binomial",
    group: Sequence[int] | None = None,
    copy_to_root_dest: bool = True,
) -> PreparedCollective:
    """Validate, select and compile — everything but the execution.

    Non-blocking collectives call this at initiation and ``run()`` the
    result at ``wait()``; the blocking entry point does both at once.
    """
    validate_counts(nelems, stride)
    members, me = resolve_group(ctx, group)
    n_pes = len(members)
    validate_root(root, n_pes)
    if n_pes > 1 and not ctx.is_symmetric(dest):
        raise CollectiveArgumentError(
            f"broadcast dest {dest:#x} must be a symmetric (shared-segment) "
            "address"
        )
    if algorithm == "auto":
        from .tuning import select_algorithm

        algorithm = select_algorithm(
            "broadcast", nelems * dtype.itemsize, n_pes,
            ctx.config.topology,
        )
    attrs = dict(algorithm=algorithm, root=root, nelems=nelems,
                 dtype=str(dtype))
    if algorithm == "hierarchical":
        from .hierarchy import broadcast_hierarchical

        return PreparedCollective(
            name="broadcast", members=members, me=me, dtype=dtype,
            attrs=attrs, stats_key="broadcast:hierarchical", stats_rank=root,
            body=lambda c: broadcast_hierarchical(
                c, dest, src, nelems, stride, root, dtype, group=group),
        )
    sched = compile_broadcast(n_pes, root, nelems, stride, dtype.itemsize,
                              algorithm=algorithm,
                              copy_to_root_dest=copy_to_root_dest)
    return PreparedCollective(
        name="broadcast", members=members, me=me, dtype=dtype, attrs=attrs,
        schedule=sched, bindings={"dest": dest, "src": src},
        stats_key=f"broadcast:{algorithm}", stats_rank=root,
    )


def run_binomial(ctx: "XBRTime", dest: int, src: int, nelems: int,
                 stride: int, root: int, dtype: np.dtype,
                 members: tuple[int, ...], me: int) -> None:
    """Execute the binomial tree as a bare sub-schedule (no outer span).

    The hierarchical two-level broadcast composes compiled trees inside
    its own ``broadcast.inter``/``broadcast.intra`` spans.
    """
    from .schedule.executor import execute_schedule

    sched = compile_broadcast(len(members), root, nelems, stride,
                              dtype.itemsize)
    execute_schedule(ctx, sched, tuple(members), me,
                     {"dest": dest, "src": src}, dtype)


def compile_broadcast(n_pes: int, root: int, nelems: int, stride: int,
                      itemsize: int, *, algorithm: str = "binomial",
                      copy_to_root_dest: bool = True) -> Schedule:
    """Compile one broadcast call shape into a schedule (pure, cached)."""
    if algorithm == "binomial":
        return _compile_binomial(n_pes, root, nelems, stride, itemsize,
                                 copy_to_root_dest)
    if algorithm == "linear":
        return _compile_linear(n_pes, root, nelems, stride, itemsize,
                               copy_to_root_dest)
    if algorithm == "ring":
        return _compile_ring(n_pes, root, nelems, stride, itemsize,
                             copy_to_root_dest)
    raise CollectiveArgumentError(f"unknown broadcast algorithm {algorithm!r}")


def _buffers(n_pes: int, root: int, nbytes: int) -> tuple[Buffer, ...]:
    return (
        Buffer("dest", "user", nbytes, symmetric=n_pes > 1),
        Buffer("src", "user", nbytes, ranks=(root,)),
    )


def _deliver(n_pes: int, root: int, nbytes: int,
             copy_to_root_dest: bool) -> tuple:
    if nbytes == 0:
        return ()
    return tuple(
        (r, "dest", 0, nbytes) for r in range(n_pes)
        if r != root or copy_to_root_dest
    )


@lru_cache(maxsize=512)
def _compile_binomial(n_pes: int, root: int, nelems: int, stride: int,
                      itemsize: int, copy_to_root_dest: bool) -> Schedule:
    nbytes = span_bytes(nelems, stride, itemsize)
    # Index each stage's pairs by sender so the per-rank loop below is
    # O(log N) per rank instead of rescanning all N-1 tree edges.
    stage_targets: list[dict[int, list[int]]] = []
    for pairs in tree_stages(n_pes, "halving"):
        by_sender: dict[int, list[int]] = {}
        for frm, to in pairs:
            by_sender.setdefault(frm, []).append(to)
        stage_targets.append(by_sender)
    programs = []
    for r in range(n_pes):
        vir = virtual_rank(r, root, n_pes)
        # Entry barrier: the paper's Algorithm 1 only barriers at stage
        # ends, but a put-based tree must order every participant's
        # *prior* writes to dest before the root's first put can land.
        prologue: list = [BARRIER]
        if r == root and copy_to_root_dest:
            prologue.append(Copy("dest", 0, "src", 0, nelems, stride))
        local_src = "src" if r == root else "dest"
        stages = []
        for ordinal, by_sender in enumerate(stage_targets):
            steps: list = []
            for to in by_sender.get(vir, ()):
                # The mask loop emitted the put even for nelems == 0
                # (counted in stats.puts); preserve that.
                steps.append(Put("dest", 0, local_src, 0, nelems,
                                 stride, logical_rank(to, root, n_pes)))
            # A barrier closes every tree stage (section 4.3).
            steps.append(BARRIER)
            stages.append(Stage(ordinal, tuple(steps)))
        programs.append(RankProgram(r, tuple(prologue), tuple(stages)))
    return Schedule(
        collective="broadcast", algorithm="binomial", n_pes=n_pes,
        itemsize=itemsize, root=root,
        buffers=_buffers(n_pes, root, nbytes), programs=tuple(programs),
        deliver=_deliver(n_pes, root, nbytes, copy_to_root_dest),
    )


@lru_cache(maxsize=512)
def _compile_linear(n_pes: int, root: int, nelems: int, stride: int,
                    itemsize: int, copy_to_root_dest: bool) -> Schedule:
    """Flat algorithm: the root puts to every PE in turn (no stages)."""
    nbytes = span_bytes(nelems, stride, itemsize)
    programs = []
    for r in range(n_pes):
        prologue: list = [BARRIER]
        if r == root:
            if copy_to_root_dest:
                prologue.append(Copy("dest", 0, "src", 0, nelems, stride))
            for other in range(n_pes):
                if other != root:
                    prologue.append(Put("dest", 0, "src", 0, nelems, stride,
                                        other))
        programs.append(RankProgram(r, tuple(prologue), (), (BARRIER,)))
    return Schedule(
        collective="broadcast", algorithm="linear", n_pes=n_pes,
        itemsize=itemsize, root=root,
        buffers=_buffers(n_pes, root, nbytes), programs=tuple(programs),
        deliver=_deliver(n_pes, root, nbytes, copy_to_root_dest),
    )


#: Payload chunks the pipelined ring splits a broadcast into.
_RING_CHUNKS = 8


@lru_cache(maxsize=512)
def _compile_ring(n_pes: int, root: int, nelems: int, stride: int,
                  itemsize: int, copy_to_root_dest: bool) -> Schedule:
    """Chunked pipelined ring — the large-message baseline.

    The payload is split into up to ``_RING_CHUNKS`` pieces; at step
    ``s`` the PE at ring position ``p`` forwards chunk ``s - p``, so all
    ring links carry different chunks concurrently.  Completion takes
    ``(N-1) + (chunks-1)`` steps instead of the unchunked ring's
    ``N-1`` full-payload steps.
    """
    nbytes = span_bytes(nelems, stride, itemsize)
    programs = []
    degenerate = n_pes == 1 or nelems == 0
    chunks = min(_RING_CHUNKS, nelems)
    bounds = [nelems * c // chunks for c in range(chunks + 1)] if chunks else []
    for r in range(n_pes):
        prologue: list = [BARRIER]
        if r == root and copy_to_root_dest:
            prologue.append(Copy("dest", 0, "src", 0, nelems, stride))
        if degenerate:
            programs.append(RankProgram(r, tuple(prologue), (), (BARRIER,)))
            continue
        pos = virtual_rank(r, root, n_pes)  # ring position behind the root
        nxt = ring_neighbor(r, n_pes, 1)
        local_src = "src" if r == root else "dest"
        stages = []
        for step in range(n_pes - 1 + chunks - 1):
            steps: list = []
            c = step - pos
            if 0 <= c < chunks and pos < n_pes - 1:
                lo, hi = bounds[c], bounds[c + 1]
                if hi > lo:
                    off = lo * stride * itemsize
                    steps.append(Put("dest", off, local_src, off, hi - lo,
                                     stride, nxt))
            steps.append(BARRIER)
            stages.append(Stage(step, tuple(steps)))
        programs.append(RankProgram(r, tuple(prologue), tuple(stages)))
    return Schedule(
        collective="broadcast", algorithm="ring", n_pes=n_pes,
        itemsize=itemsize, root=root,
        buffers=_buffers(n_pes, root, nbytes), programs=tuple(programs),
        deliver=_deliver(n_pes, root, nbytes, copy_to_root_dest),
    )
