"""Logical ↔ virtual rank mapping (paper section 4.3, Table 2).

Every collective assigns each PE a *virtual rank* so the root PE always
becomes virtual rank 0, with consecutive virtual ranks allocated in
sequence by logical rank relative to the root::

    vir_rank = log_rank - root            if log_rank >= root
    vir_rank = log_rank + n_pes - root    otherwise

Table 2's example (7 PEs, root 4): logical 4,5,6,0,1,2,3 → virtual
0,1,2,3,4,5,6.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..errors import CollectiveArgumentError

__all__ = [
    "virtual_rank",
    "logical_rank",
    "rank_table",
    "remap_root",
    "ring_neighbor",
    "hillis_steele_partner",
    "rotated_peers",
]


def _check(n_pes: int, root: int) -> None:
    if n_pes <= 0:
        raise CollectiveArgumentError(f"n_pes must be positive, got {n_pes}")
    if not 0 <= root < n_pes:
        raise CollectiveArgumentError(
            f"root {root} out of range [0, {n_pes})"
        )


def virtual_rank(log_rank: int, root: int, n_pes: int) -> int:
    """Virtual rank of ``log_rank`` for a collective rooted at ``root``."""
    _check(n_pes, root)
    if not 0 <= log_rank < n_pes:
        raise CollectiveArgumentError(
            f"log_rank {log_rank} out of range [0, {n_pes})"
        )
    if log_rank >= root:
        return log_rank - root
    return log_rank + n_pes - root


def logical_rank(vir_rank: int, root: int, n_pes: int) -> int:
    """Inverse of :func:`virtual_rank` (the ``log_part`` computation)."""
    _check(n_pes, root)
    if not 0 <= vir_rank < n_pes:
        raise CollectiveArgumentError(
            f"vir_rank {vir_rank} out of range [0, {n_pes})"
        )
    return (vir_rank + root) % n_pes


def rank_table(root: int, n_pes: int) -> list[tuple[int, int]]:
    """The full (log_rank, vir_rank) table — Table 2 for root=4, n_pes=7."""
    return [(lr, virtual_rank(lr, root, n_pes)) for lr in range(n_pes)]


def ring_neighbor(rank: int, n_pes: int, offset: int = 1) -> int:
    """Rank ``offset`` hops around the ring from ``rank`` (mod ``n_pes``).

    ``offset=1`` is the downstream (send-to) neighbour, ``offset=-1``
    the upstream (receive-from) one — the ring broadcast, ring
    allreduce and dissemination allgather all derive their peers here
    instead of re-spelling the mod arithmetic.
    """
    if n_pes <= 0:
        raise CollectiveArgumentError(f"n_pes must be positive, got {n_pes}")
    if not 0 <= rank < n_pes:
        raise CollectiveArgumentError(
            f"rank {rank} out of range [0, {n_pes})"
        )
    return (rank + offset) % n_pes


def hillis_steele_partner(rank: int, stage: int) -> int | None:
    """The left partner rank ``rank - 2**stage`` of a Hillis-Steele
    scan stage, or ``None`` when the rank has no partner (it keeps its
    running value unchanged that stage)."""
    if rank < 0 or stage < 0:
        raise CollectiveArgumentError(
            f"rank/stage must be non-negative, got {rank}/{stage}"
        )
    left = rank - (1 << stage)
    return left if left >= 0 else None


def rotated_peers(rank: int, n_pes: int) -> Iterator[int]:
    """Every rank, starting at ``rank`` and walking the ring once.

    The all-to-all exchange visits peers in this order so one stage's
    messages spread across distinct targets instead of all hitting PE 0
    at once.
    """
    if n_pes <= 0:
        raise CollectiveArgumentError(f"n_pes must be positive, got {n_pes}")
    for step in range(n_pes):
        yield (rank + step) % n_pes


def remap_root(members: Sequence[int], root: int,
               live: Sequence[int]) -> int:
    """World rank acting as root after PE failures.

    ``members`` is the original group (world ranks), ``root`` the
    group-relative root index, ``live`` the surviving world ranks.  The
    original root keeps the role while alive; otherwise the survivor
    with the smallest virtual rank w.r.t. the original root takes over —
    the PE the binomial tree reached earliest, hence the one most likely
    to already hold the root's data.  Deterministic, so every survivor
    picks the same new root without communicating.
    """
    members = tuple(members)
    n_pes = len(members)
    _check(n_pes, root)
    live_set = set(live)
    if not live_set:
        raise CollectiveArgumentError("remap_root: no surviving PEs")
    bad = live_set - set(members)
    if bad:
        raise CollectiveArgumentError(
            f"remap_root: live ranks {sorted(bad)} not in group {members}"
        )
    if members[root] in live_set:
        return members[root]
    return min(
        live_set,
        key=lambda r: virtual_rank(members.index(r), root, n_pes),
    )
