"""Gossip-style eventually-consistent collectives over lossy mailboxes.

The schedule-compiled collectives assume a reliable transport (or a
:class:`~repro.faults.plan.RetryConfig` that makes it one).  This module
takes the opposite corner of the design space: epidemic *rumor
spreading* over the raw mailbox engine, tolerating message loss with no
retry machinery at all.  Every round each PE pushes what it knows to a
seeded-random peer; duplicates are harmless because state is an
idempotent per-origin contribution set, so a 5% drop plan merely delays
convergence by a round or two instead of corrupting the result.

Both entry points are plain functions over a PE context (they need the
mailbox surface — ``msg_send``/``msg_try_recv`` — which the simulator
backend provides on any machine, whatever its schedule transport):

* :func:`gossip_broadcast` — the root's value spreads to every PE with
  high probability within ``O(log n)`` push rounds.
* :func:`gossip_allreduce` — each PE accumulates the set of per-origin
  contributions (tagged by origin rank, so merging is idempotent) and
  reduces locally once the set is complete.

Rounds are barrier-synchronised: the barrier's network-quiescence
guarantee means every message committed in round ``r`` is visible to
the ``try_recv`` drain that follows, and dropped messages simply never
appear.  Peer choice is derived from ``(seed, round, rank)`` only, so
runs are deterministic and reproducible under a seeded drop plan.

Both functions return how far this PE converged (see each docstring);
with the default ``2*ceil(log2 n) + 4`` rounds and drop rates well
below the default fanout-2 redundancy, all PEs converge with overwhelming
probability — the conformance tests pin exact seeds.
"""

from __future__ import annotations

import random
from math import ceil, log2
from typing import TYPE_CHECKING

from ..errors import CollectiveArgumentError
from ..runtime.collective_api import resolve_dtype
from .common import charge_elementwise
from .ops import apply_op

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = ["default_rounds", "gossip_broadcast", "gossip_allreduce"]


def default_rounds(n_pes: int, slack: int = 4) -> int:
    """Push rounds for whole-machine convergence w.h.p.: the classic
    ``O(log n)`` rumor-spreading bound plus fixed slack for losses."""
    if n_pes <= 1:
        return 1
    return 2 * ceil(log2(n_pes)) + slack


def _pick_peer(rng: random.Random, me: int, n: int) -> int:
    peer = rng.randrange(n - 1)
    return peer + 1 if peer >= me else peer


def gossip_broadcast(ctx: "XBRTime", dest: int, src: int, nelems: int,
                     stride: int, root: int, dtype: str = "long", *,
                     rounds: int | None = None, seed: int = 0,
                     fanout: int = 2) -> bool:
    """Spread ``root``'s ``src`` to every PE's ``dest`` by push gossip.

    Returns whether *this* PE holds the value when the rounds run out
    (the root always does).  Any PE that has the value pushes it to
    ``fanout`` seeded-random peers per round, tagged with ``root`` so a
    late duplicate is recognised and discarded.
    """
    n = ctx.num_pes()
    me = ctx.my_pe()
    dt = resolve_dtype(dtype)
    if not 0 <= root < n:
        raise CollectiveArgumentError(f"gossip_broadcast: root {root} "
                                      f"outside 0..{n - 1}")
    if rounds is None:
        rounds = default_rounds(n)
    have = me == root
    if have and nelems:
        ctx.view(dest, dt, nelems, stride)[:] = \
            ctx.view(src, dt, nelems, stride)
    if n == 1 or nelems <= 0:
        ctx.barrier()
        return True
    # Gossip payloads travel contiguously; ``buf`` is the wire image.
    buf = ctx.malloc(dt.itemsize * nelems)
    bview = ctx.view(buf, dt, nelems)
    if have:
        bview[:] = ctx.view(src, dt, nelems, stride)
    try:
        for rnd in range(rounds):
            ctx.barrier()
            if have:
                rng = random.Random(f"{seed}:{rnd}:{me}")
                for _ in range(fanout):
                    ctx.msg_send(buf, nelems, 1, _pick_peer(rng, me, n),
                                 tag=root, dtype=dt)
            ctx.barrier()
            while True:
                res = ctx.msg_try_recv(buf if not have else dest, nelems,
                                       1 if not have else stride, dtype=dt)
                if res is None:
                    break
                if not have:
                    ctx.view(dest, dt, nelems, stride)[:] = bview
                    have = True
    finally:
        ctx.free(buf)
    return have


def gossip_allreduce(ctx: "XBRTime", dest: int, src: int, nelems: int,
                     stride: int, op: str = "sum", dtype: str = "long", *,
                     rounds: int | None = None, seed: int = 0,
                     fanout: int = 2) -> int:
    """Eventually-consistent allreduce: returns the number of origins
    this PE merged (``n_pes`` means the result in ``dest`` is exact).

    State is a per-origin contribution table — messages are tagged with
    their *origin* rank, never partially aggregated, so receiving the
    same contribution twice (or via different gossip paths) is
    idempotent.  Each round every PE pushes its whole known table to
    ``fanout`` seeded-random peers, then drains and merges.
    """
    n = ctx.num_pes()
    me = ctx.my_pe()
    dt = resolve_dtype(dtype)
    if rounds is None:
        rounds = default_rounds(n)
    if nelems <= 0:
        ctx.barrier()
        return n
    esz = dt.itemsize
    if n == 1:
        ctx.view(dest, dt, nelems, stride)[:] = \
            ctx.view(src, dt, nelems, stride)
        ctx.barrier()
        return 1
    table = ctx.malloc(esz * nelems * n)
    stage = ctx.malloc(esz * nelems)
    tview = ctx.view(table, dt, nelems * n)
    sview = ctx.view(stage, dt, nelems)
    tview[me * nelems:(me + 1) * nelems] = ctx.view(src, dt, nelems, stride)
    known = {me}
    try:
        for rnd in range(rounds):
            ctx.barrier()
            rng = random.Random(f"{seed}:{rnd}:{me}")
            for _ in range(fanout):
                peer = _pick_peer(rng, me, n)
                for origin in sorted(known):
                    ctx.msg_send(table + origin * nelems * esz, nelems, 1,
                                 peer, tag=origin, dtype=dt)
            ctx.barrier()
            while True:
                res = ctx.msg_try_recv(stage, nelems, 1, dtype=dt)
                if res is None:
                    break
                _, origin = res
                if origin not in known:
                    tview[origin * nelems:(origin + 1) * nelems] = sview
                    known.add(origin)
        acc = tview[me * nelems:(me + 1) * nelems].copy()
        for origin in sorted(known - {me}):
            apply_op(op, acc, tview[origin * nelems:(origin + 1) * nelems])
            charge_elementwise(ctx, nelems)
        ctx.view(dest, dt, nelems, stride)[:] = acc
    finally:
        ctx.free(stage)
        ctx.free(table)
    return len(known)
