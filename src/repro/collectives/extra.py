"""Extended collectives (paper section 7 future work).

The paper's initial library ships broadcast/reduce/scatter/gather and
notes that "they can be combined together to accomplish the semantics of
several more complex operations" (section 4.2).  This module provides
those compositions plus a personalised all-to-all:

* :func:`reduce_all` — explicit reduction-to-all (OpenSHMEM
  ``*_to_all`` semantics: every PE receives the result).
* :func:`allgather` — gather-to-all (OpenSHMEM ``collect``) and
  :func:`fcollect` for the fixed-size variant.
* :func:`alltoall` — personalised all-to-all exchange built from
  one-sided puts (each PE deposits its block directly at the
  destination offset of every peer).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import CollectiveArgumentError
from .broadcast import broadcast
from .common import collective_span, resolve_group
from .gather import gather
from .reduce import reduce

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = ["reduce_all", "allgather", "fcollect", "alltoall"]


def reduce_all(
    ctx: "XBRTime",
    dest: int,
    src: int,
    nelems: int,
    stride: int,
    op: str,
    dtype: np.dtype,
    *,
    group: Sequence[int] | None = None,
) -> None:
    """Reduce to rank 0, then broadcast the result to every PE.

    ``dest`` must be symmetric on all PEs (it receives the broadcast).
    """
    members, _ = resolve_group(ctx, group)
    if len(members) > 1 and not ctx.is_symmetric(dest):
        raise CollectiveArgumentError(
            "reduce_all dest must be a symmetric address"
        )
    with collective_span(ctx, "reduce_all", members, op=op, nelems=nelems,
                         dtype=str(dtype)):
        reduce(ctx, dest, src, nelems, stride, 0, op, dtype, group=group)
        broadcast(ctx, dest, dest, nelems, stride, 0, dtype, group=group)


def allgather(
    ctx: "XBRTime",
    dest: int,
    src: int,
    pe_msgs: Sequence[int],
    pe_disp: Sequence[int],
    nelems: int,
    dtype: np.dtype,
    *,
    group: Sequence[int] | None = None,
) -> None:
    """Gather-to-all (OpenSHMEM ``collect``): every PE ends with all
    contributions at ``dest`` (symmetric), laid out by ``pe_disp``."""
    members, _ = resolve_group(ctx, group)
    if len(members) > 1 and not ctx.is_symmetric(dest):
        raise CollectiveArgumentError("allgather dest must be symmetric")
    with collective_span(ctx, "allgather", members, nelems=nelems,
                         dtype=str(dtype)):
        gather(ctx, dest, src, pe_msgs, pe_disp, nelems, 0, dtype,
               group=group)
        broadcast(ctx, dest, dest, nelems, 1, 0, dtype, group=group)


def fcollect(
    ctx: "XBRTime",
    dest: int,
    src: int,
    nelems_per_pe: int,
    dtype: np.dtype,
    *,
    group: Sequence[int] | None = None,
) -> None:
    """Fixed-size gather-to-all (OpenSHMEM ``fcollect``)."""
    members, _ = resolve_group(ctx, group)
    n = len(members)
    msgs = [nelems_per_pe] * n
    disp = [i * nelems_per_pe for i in range(n)]
    allgather(ctx, dest, src, msgs, disp, nelems_per_pe * n, dtype,
              group=group)


def alltoall(
    ctx: "XBRTime",
    dest: int,
    src: int,
    nelems_per_pe: int,
    dtype: np.dtype,
    *,
    group: Sequence[int] | None = None,
) -> None:
    """Personalised all-to-all: block ``j`` of ``src`` on PE ``i`` lands
    as block ``i`` of ``dest`` on PE ``j``.

    Implemented with one-sided puts in a rotated order (PE ``i`` starts
    at peer ``i+1``) so the messages of a stage spread across distinct
    targets instead of all hitting PE 0 at once.
    """
    if nelems_per_pe < 0:
        raise CollectiveArgumentError("nelems_per_pe must be >= 0")
    members, me = resolve_group(ctx, group)
    n = len(members)
    if n > 1 and not ctx.is_symmetric(dest):
        raise CollectiveArgumentError("alltoall dest must be symmetric")
    if me == 0:
        ctx.machine.stats.collective_calls["alltoall:rotated"] += 1
    with collective_span(ctx, "alltoall", members, nelems=nelems_per_pe,
                         dtype=str(dtype)):
        # Entry barrier: order every participant's prior writes to dest
        # before the incoming puts can land.
        ctx.barrier_team(members)
        eb = dtype.itemsize
        blk = nelems_per_pe * eb
        if nelems_per_pe:
            for step in range(n):
                peer = (me + step) % n
                ctx.put(dest + me * blk, src + peer * blk, nelems_per_pe, 1,
                        members[peer], dtype)
        ctx.barrier_team(members)
