"""Extended collectives (paper section 7 future work).

The paper's initial library ships broadcast/reduce/scatter/gather and
notes that "they can be combined together to accomplish the semantics of
several more complex operations" (section 4.2).  This module provides
those compositions plus a personalised all-to-all:

* :func:`allgather` — gather-to-all (OpenSHMEM ``collect``) and
  :func:`fcollect` for the fixed-size variant.  Three algorithms: the
  default ``"tree"`` composition (gather to rank 0, broadcast back), a
  compiled ``"dissemination"`` schedule that finishes in ⌈log₂N⌉
  stages by having every rank pull the growing prefix of its ring
  neighbour — half the stages and no root bottleneck — and ``"pat"``
  (parallel aggregated trees), the same doubling ladder but *dest
  direct*: every block travels its own binomial broadcast tree straight
  to its final ``pe_disp`` offset, so there is no rotation scratch and
  no unrotate epilogue (the dissemination variant's per-rank full-vector
  copy), which is the measured win at large payloads.  ``"pat"`` also
  accepts ``segments > 1`` to pipeline each block through the schedule
  IR's :class:`~.schedule.ir.Pipeline` rounds.
* :func:`alltoall` — personalised all-to-all exchange built from
  one-sided puts (each PE deposits its block directly at the
  destination offset of every peer).

The historical ``reduce_all`` composition (reduce to rank 0, broadcast
back) is gone; ``CollectiveAPI.reduce_all`` is now a deprecated alias
of :func:`~repro.collectives.allreduce.allreduce`, which finishes in
half the stages.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import CollectiveArgumentError
from .broadcast import broadcast
from .common import collective_span, resolve_group
from .gather import gather
from .scatter import _validate
from .schedule.executor import PreparedCollective
from .reduce_scatter import pat_width_steps
from .schedule.ir import (
    BARRIER,
    Buffer,
    Copy,
    Get,
    Pipeline,
    Put,
    RankProgram,
    Schedule,
    Stage,
    segment_bounds,
)
from .virtual_rank import ring_neighbor, rotated_peers

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = ["allgather", "fcollect", "alltoall",
           "compile_allgather", "compile_allgather_pat", "compile_alltoall"]


def allgather(
    ctx: "XBRTime",
    dest: int,
    src: int,
    pe_msgs: Sequence[int],
    pe_disp: Sequence[int],
    nelems: int,
    dtype: np.dtype,
    *,
    algorithm: str = "tree",
    segments: int = 1,
    group: Sequence[int] | None = None,
) -> None:
    """Gather-to-all (OpenSHMEM ``collect``): every PE ends with all
    contributions at ``dest`` (symmetric), laid out by ``pe_disp``.

    ``algorithm="tree"`` composes gather+broadcast through rank 0 (the
    historical default); ``"dissemination"`` compiles the ⌈log₂N⌉-stage
    doubling exchange; ``"pat"`` compiles the dest-direct aggregated
    trees (``segments`` chunks of every block in flight); ``"auto"``
    asks :mod:`~repro.collectives.tuning`.
    """
    if segments < 1:
        raise CollectiveArgumentError("segments must be >= 1")
    members, me = resolve_group(ctx, group)
    n_pes = len(members)
    if n_pes > 1 and not ctx.is_symmetric(dest):
        raise CollectiveArgumentError("allgather dest must be symmetric")
    if algorithm == "auto":
        from .tuning import select_algorithm

        algorithm = select_algorithm(
            "allgather", nelems * dtype.itemsize, n_pes,
            ctx.config.topology,
        )
    if algorithm == "tree":
        with collective_span(ctx, "allgather", members, nelems=nelems,
                             dtype=str(dtype)):
            gather(ctx, dest, src, pe_msgs, pe_disp, nelems, 0, dtype,
                   group=group)
            broadcast(ctx, dest, dest, nelems, 1, 0, dtype, group=group)
        return
    if algorithm not in ("dissemination", "pat"):
        raise CollectiveArgumentError(
            f"unknown allgather algorithm {algorithm!r}"
        )
    _validate(pe_msgs, pe_disp, nelems, n_pes, "allgather")
    if algorithm == "pat":
        sched = compile_allgather_pat(n_pes, tuple(pe_msgs), tuple(pe_disp),
                                      nelems, dtype.itemsize, segments)
    else:
        sched = compile_allgather(n_pes, tuple(pe_msgs), tuple(pe_disp),
                                  nelems, dtype.itemsize)
    PreparedCollective(
        name="allgather", members=members, me=me, dtype=dtype,
        attrs=dict(algorithm=algorithm, nelems=nelems, dtype=str(dtype)),
        schedule=sched, bindings={"dest": dest, "src": src},
        stats_key=f"allgather:{algorithm}", stats_rank=0,
    ).run(ctx)


@lru_cache(maxsize=256)
def compile_allgather(n_pes: int, counts: tuple[int, ...],
                      disps: tuple[int, ...], nelems: int,
                      itemsize: int) -> Schedule:
    """Dissemination allgather: after stage ``i`` every rank holds the
    blocks of ``2^(i+1)`` consecutive ranks (ring order, starting at its
    own), so ⌈log₂N⌉ stages suffice for any PE count.

    Each rank keeps its scratch in *rotated* order — position ``j``
    holds rank ``(r+j) mod N``'s block — which makes every stage's
    transfer a single contiguous get: the blocks rank ``r`` needs from
    partner ``(r+2^i) mod N`` sit at the *front* of the partner's
    scratch, and they land right after the blocks ``r`` already owns.
    An epilogue unrotates into ``dest`` by ``pe_disp``.
    """
    eb = itemsize
    # Prefix sums over two laps of the ring make every blocks_len query
    # O(1); the old per-query summation was O(width), turning the whole
    # compile into O(N^2).
    pref = [0] * (2 * n_pes + 1)
    for j in range(2 * n_pes):
        pref[j + 1] = pref[j] + counts[j % n_pes]

    def blocks_len(start: int, width: int) -> int:
        """Total elements of ``width`` ring-consecutive blocks."""
        return pref[start + width] - pref[start]

    dest_nbytes = max((d + c) for d, c in zip(disps, counts)) * eb \
        if any(counts) else 0
    buffers = (
        Buffer("dest", "user", dest_nbytes, symmetric=n_pes > 1),
        Buffer("src", "user", tuple(c * eb for c in counts)),
        Buffer("s", "scratch", nelems * eb, symmetric=True),
    )
    deliver = tuple(
        (r, "dest", disps[i] * eb, (disps[i] + counts[i]) * eb)
        for r in range(n_pes) for i in range(n_pes) if counts[i]
    )
    if nelems == 0:
        return Schedule(
            collective="allgather", algorithm="dissemination", n_pes=n_pes,
            itemsize=eb, buffers=buffers[:2],
            programs=tuple(RankProgram(r, (BARRIER,))
                           for r in range(n_pes)),
        )
    programs = []
    for r in range(n_pes):
        prologue: list = []
        if counts[r]:
            prologue.append(Copy("s", 0, "src", 0, counts[r], 1,
                                 skip_noop=False))
        prologue.append(BARRIER)
        stages = []
        stage = 0
        width = 1  # ring-consecutive blocks this rank already holds
        while width < n_pes:
            grab = min(width, n_pes - width)
            partner = ring_neighbor(r, n_pes, width)
            have = blocks_len(r, width)       # elements already staged
            need = blocks_len(partner, grab)  # front of partner's scratch
            steps: list = []
            if need:
                steps.append(Get("s", have * eb, "s", 0, need, 1, partner))
            steps.append(BARRIER)
            stages.append(Stage(stage, tuple(steps)))
            width += grab
            stage += 1
        epilogue: list = []
        pos = 0
        for j in range(n_pes):
            blk = (r + j) % n_pes
            cnt = counts[blk]
            if cnt:
                epilogue.append(Copy("dest", disps[blk] * eb, "s", pos * eb,
                                     cnt, 1, skip_noop=False))
                pos += cnt
        epilogue.append(BARRIER)
        programs.append(RankProgram(r, tuple(prologue), tuple(stages),
                                    tuple(epilogue)))
    return Schedule(
        collective="allgather", algorithm="dissemination", n_pes=n_pes,
        itemsize=eb, buffers=buffers, programs=tuple(programs),
        deliver=deliver,
    )


@lru_cache(maxsize=256)
def compile_allgather_pat(n_pes: int, counts: tuple[int, ...],
                          disps: tuple[int, ...], nelems: int,
                          itemsize: int, segments: int = 1) -> Schedule:
    """Parallel-aggregated-tree allgather: dest-direct dissemination.

    Same ``(width, grab)`` doubling ladder as the dissemination variant,
    but every block lives at its final ``pe_disp`` offset in the
    (symmetric) ``dest`` from the start: at the step of width ``w``
    rank ``r`` pulls blocks ``[r+w, r+w+grab)`` straight from partner
    ``(r+w) mod N``'s dest.  Each block descends its own binomial
    broadcast tree and the N trees run in aggregate — no rotation
    scratch, no unrotate epilogue, and ring-adjacent blocks coalesce
    into single contiguous gets.  With ``segments > 1`` each block is
    cut into S chunks pipelined through a :class:`~.schedule.ir.Pipeline`
    (segment ``k`` is forwarded as soon as the upstream step delivered
    it, at the price of per-block per-segment gets).

    Hazard freedom: at width ``w`` rank ``r`` writes its blocks at
    offsets ``[w, w+grab)`` while its reader ``(r-w) mod N`` reads
    offsets ``[0, grab)`` — disjoint because ``grab <= w``; across
    steps every read hits bytes delivered in a strictly earlier round
    (the linter's pipelined cross-segment ordering check).
    """
    eb = itemsize
    dest_nbytes = max((d + c) for d, c in zip(disps, counts)) * eb \
        if any(counts) else 0
    buffers = (
        Buffer("dest", "user", dest_nbytes, symmetric=n_pes > 1),
        Buffer("src", "user", tuple(c * eb for c in counts)),
    )
    deliver = tuple(
        (r, "dest", disps[i] * eb, (disps[i] + counts[i]) * eb)
        for r in range(n_pes) for i in range(n_pes) if counts[i]
    )
    if nelems == 0:
        return Schedule(
            collective="allgather", algorithm="pat", n_pes=n_pes,
            itemsize=eb, buffers=buffers,
            programs=tuple(RankProgram(r, (BARRIER,))
                           for r in range(n_pes)),
        )
    S = max(1, min(segments, max(counts)))
    ladder = pat_width_steps(n_pes)
    programs = []
    for r in range(n_pes):
        prologue: list = []
        if counts[r]:
            prologue.append(Copy("dest", disps[r] * eb, "src", 0,
                                 counts[r], 1, skip_noop=False))
        prologue.append(BARRIER)
        groups = [[()] * S for _ in range(len(ladder))]
        for g, (w, grab) in enumerate(ladder):
            peer = (r + w) % n_pes
            blocks = [(r + w + o) % n_pes for o in range(grab)]
            if S == 1:
                steps: list = []
                for lo, hi in _coalesce_ascending(blocks, counts, disps):
                    steps.append(Get("dest", lo * eb, "dest", lo * eb,
                                     hi - lo, 1, peer))
                groups[g][0] = tuple(steps)
                continue
            for k in range(S):
                steps = []
                for d in blocks:
                    e_lo, e_hi = segment_bounds(counts[d], S, k)
                    if e_hi == e_lo:
                        continue
                    off = (disps[d] + e_lo) * eb
                    steps.append(Get("dest", off, "dest", off,
                                     e_hi - e_lo, 1, peer))
                groups[g][k] = tuple(steps)
        pipe = Pipeline(0, S, tuple(tuple(g) for g in groups),
                        attrs=(("phase", "pat-bcast"),))
        programs.append(RankProgram(r, tuple(prologue), (pipe,), ()))
    return Schedule(
        collective="allgather", algorithm="pat", n_pes=n_pes,
        itemsize=eb, buffers=buffers, programs=tuple(programs),
        deliver=deliver,
    )


def _coalesce_ascending(blocks, counts, disps) -> list:
    """Merge disp-adjacent blocks into element ranges ``[lo, hi)``."""
    runs: list = []
    for d in blocks:
        if counts[d] == 0:
            continue
        lo, hi = disps[d], disps[d] + counts[d]
        if runs and runs[-1][1] == lo:
            runs[-1][1] = hi
        elif runs and runs[-1][0] == hi:
            runs[-1][0] = lo
        else:
            runs.append([lo, hi])
    return runs


def fcollect(
    ctx: "XBRTime",
    dest: int,
    src: int,
    nelems_per_pe: int,
    dtype: np.dtype,
    *,
    algorithm: str = "tree",
    segments: int = 1,
    group: Sequence[int] | None = None,
) -> None:
    """Fixed-size gather-to-all (OpenSHMEM ``fcollect``)."""
    members, _ = resolve_group(ctx, group)
    n = len(members)
    msgs = [nelems_per_pe] * n
    disp = [i * nelems_per_pe for i in range(n)]
    allgather(ctx, dest, src, msgs, disp, nelems_per_pe * n, dtype,
              algorithm=algorithm, segments=segments, group=group)


def alltoall(
    ctx: "XBRTime",
    dest: int,
    src: int,
    nelems_per_pe: int,
    dtype: np.dtype,
    *,
    group: Sequence[int] | None = None,
) -> None:
    """Personalised all-to-all: block ``j`` of ``src`` on PE ``i`` lands
    as block ``i`` of ``dest`` on PE ``j``.

    Implemented with one-sided puts in a rotated order (PE ``i`` starts
    at peer ``i``, then walks the ring) so the messages of a stage
    spread across distinct targets instead of all hitting PE 0 at once.
    """
    if nelems_per_pe < 0:
        raise CollectiveArgumentError("nelems_per_pe must be >= 0")
    members, me = resolve_group(ctx, group)
    n = len(members)
    if n > 1 and not ctx.is_symmetric(dest):
        raise CollectiveArgumentError("alltoall dest must be symmetric")
    sched = compile_alltoall(n, nelems_per_pe, dtype.itemsize)
    PreparedCollective(
        name="alltoall", members=members, me=me, dtype=dtype,
        attrs=dict(nelems=nelems_per_pe, dtype=str(dtype)),
        schedule=sched, bindings={"dest": dest, "src": src},
        stats_key="alltoall:rotated", stats_rank=0,
    ).run(ctx)


@lru_cache(maxsize=256)
def compile_alltoall(n_pes: int, nelems_per_pe: int,
                     itemsize: int) -> Schedule:
    """Compile one alltoall call shape into a schedule (pure, cached)."""
    blk = nelems_per_pe * itemsize
    nbytes = n_pes * blk
    programs = []
    for r in range(n_pes):
        # Entry barrier: order every participant's prior writes to dest
        # before the incoming puts can land.
        prologue: list = [BARRIER]
        if nelems_per_pe:
            for peer in rotated_peers(r, n_pes):
                if peer == r:
                    prologue.append(Copy("dest", r * blk, "src", peer * blk,
                                         nelems_per_pe, 1, skip_noop=False))
                else:
                    prologue.append(Put("dest", r * blk, "src", peer * blk,
                                        nelems_per_pe, 1, peer))
        programs.append(RankProgram(r, tuple(prologue), (), (BARRIER,)))
    return Schedule(
        collective="alltoall", algorithm="rotated", n_pes=n_pes,
        itemsize=itemsize,
        buffers=(Buffer("dest", "user", nbytes, symmetric=n_pes > 1),
                 Buffer("src", "user", nbytes)),
        programs=tuple(programs),
        deliver=tuple((r, "dest", 0, nbytes) for r in range(n_pes))
        if nelems_per_pe else (),
    )
