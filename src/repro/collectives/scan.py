"""Parallel prefix scan over the one-sided runtime, compiled.

A natural companion to the paper's section 7 collective wish-list: the
Hillis-Steele inclusive scan in ⌈log₂N⌉ one-sided stages.  At stage
``i`` every PE with rank ≥ 2^i *gets* the running value of the PE
2^i to its left (the partner arithmetic lives in
:func:`~repro.collectives.virtual_rank.hillis_steele_partner`) and
folds it; double buffering plus a barrier per stage gives the same
one-sided-read safety as :mod:`~repro.collectives.allreduce`.

Both inclusive and exclusive variants are provided (exclusive shifts
the inclusive result by one rank, with the operator identity at rank
0 — which restricts exclusive scans to operators with an identity,
i.e. all of them except float bitwise, which are rejected anyway).
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import CollectiveArgumentError
from .binomial import n_stages
from .common import (
    resolve_group,
    span_bytes,
    validate_counts,
)
from .ops import check_op
from .schedule.executor import PreparedCollective
from .schedule.ir import (
    BARRIER,
    Buffer,
    Copy,
    Fill,
    Get,
    RankProgram,
    Reduce,
    Schedule,
    Stage,
)
from .virtual_rank import hillis_steele_partner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = ["scan", "prepare_scan", "compile_scan"]


def scan(
    ctx: "XBRTime",
    dest: int,
    src: int,
    nelems: int,
    stride: int,
    op: str,
    dtype: np.dtype,
    *,
    inclusive: bool = True,
    group: Sequence[int] | None = None,
) -> None:
    """Prefix scan: PE k ends with ``src_0 OP src_1 OP ... OP src_k``
    (inclusive) or ``... OP src_{k-1}`` (exclusive; identity on PE 0)
    at its local ``dest``."""
    prepare_scan(ctx, dest, src, nelems, stride, op, dtype,
                 inclusive=inclusive, group=group).run(ctx)


def prepare_scan(
    ctx: "XBRTime",
    dest: int,
    src: int,
    nelems: int,
    stride: int,
    op: str,
    dtype: np.dtype,
    *,
    inclusive: bool = True,
    group: Sequence[int] | None = None,
) -> PreparedCollective:
    """Validate and compile — everything but the execution."""
    validate_counts(nelems, stride)
    check_op(op, dtype)
    members, me = resolve_group(ctx, group)
    n_pes = len(members)
    if n_pes > 1 and not ctx.is_symmetric(src):
        raise CollectiveArgumentError("scan src must be a symmetric address")
    kind = "inclusive" if inclusive else "exclusive"
    sched = compile_scan(n_pes, nelems, stride, dtype.itemsize, op,
                         inclusive)
    return PreparedCollective(
        name="scan", members=members, me=me, dtype=dtype,
        attrs=dict(inclusive=inclusive, op=op, nelems=nelems,
                   dtype=str(dtype)),
        schedule=sched, bindings={"dest": dest, "src": src},
        stats_key=f"scan:{kind}", stats_rank=0,
    )


@lru_cache(maxsize=512)
def compile_scan(n_pes: int, nelems: int, stride: int, itemsize: int,
                 op: str, inclusive: bool) -> Schedule:
    """Compile one scan call shape into a schedule (pure, cached)."""
    algorithm = "hillis-steele"
    nbytes = span_bytes(nelems, stride, itemsize)
    if nelems == 0:
        return Schedule(
            collective="scan", algorithm=algorithm, n_pes=n_pes,
            itemsize=itemsize, op=op,
            buffers=(Buffer("dest", "user", nbytes),
                     Buffer("src", "user", nbytes)),
            programs=tuple(RankProgram(r, (BARRIER,))
                           for r in range(n_pes)),
        )
    k = n_stages(n_pes)
    programs = []
    for r in range(n_pes):
        prologue = (Copy("a", 0, "src", 0, nelems, stride), BARRIER)
        stages = []
        for i in range(k):
            cur, nxt = ("a", "b") if i % 2 == 0 else ("b", "a")
            # Carry the running value forward unconditionally, then fold
            # in the left partner's (if this rank has one this stage).
            steps: list = [Copy(nxt, 0, cur, 0, nelems, stride,
                                charged=False)]
            left = hillis_steele_partner(r, i)
            if left is not None:
                steps.append(Get("l", 0, cur, 0, nelems, stride, left))
                steps.append(Reduce(nxt, 0, "l", 0, nelems, stride,
                                    2 * nelems))
            steps.append(BARRIER)
            stages.append(Stage(i, tuple(steps)))
        final = "a" if k % 2 == 0 else "b"
        if inclusive:
            epilogue: tuple = (Copy("dest", 0, final, 0, nelems, stride),)
        elif r == 0:
            # Shift right by one rank: rank 0 takes the operator identity.
            epilogue = (Fill("dest", 0, nelems, stride), BARRIER)
        else:
            epilogue = (Get("dest", 0, final, 0, nelems, stride, r - 1),
                        BARRIER)
        programs.append(RankProgram(r, prologue, tuple(stages), epilogue))
    return Schedule(
        collective="scan", algorithm=algorithm, n_pes=n_pes,
        itemsize=itemsize, op=op,
        buffers=(Buffer("dest", "user", nbytes),
                 Buffer("src", "user", nbytes),
                 Buffer("a", "scratch", nbytes, symmetric=True),
                 Buffer("b", "scratch", nbytes, symmetric=True),
                 Buffer("l", "private", nbytes)),
        programs=tuple(programs),
        deliver=tuple((r, "dest", 0, nbytes) for r in range(n_pes)),
    )
