"""Parallel prefix scan over the one-sided runtime.

A natural companion to the paper's section 7 collective wish-list: the
Hillis-Steele inclusive scan in ⌈log₂N⌉ one-sided stages.  At stage
``i`` every PE with rank ≥ 2^i *gets* the running value of the PE
2^i to its left and folds it; double buffering plus a barrier per
stage gives the same one-sided-read safety as
:mod:`~repro.collectives.allreduce`.

Both inclusive and exclusive variants are provided (exclusive shifts
the inclusive result by one rank, with the operator identity at rank
0 — which restricts exclusive scans to operators with an identity,
i.e. all of them except float bitwise, which are rejected anyway).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import CollectiveArgumentError
from .binomial import n_stages
from .common import (
    charge_elementwise,
    collective_span,
    local_copy,
    resolve_group,
    span_bytes,
    stage_span,
    validate_counts,
)
from .ops import apply_op, check_op, identity_of

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = ["scan"]


def scan(
    ctx: "XBRTime",
    dest: int,
    src: int,
    nelems: int,
    stride: int,
    op: str,
    dtype: np.dtype,
    *,
    inclusive: bool = True,
    group: Sequence[int] | None = None,
) -> None:
    """Prefix scan: PE k ends with ``src_0 OP src_1 OP ... OP src_k``
    (inclusive) or ``... OP src_{k-1}`` (exclusive; identity on PE 0)
    at its local ``dest``."""
    validate_counts(nelems, stride)
    check_op(op, dtype)
    members, me = resolve_group(ctx, group)
    n_pes = len(members)
    if n_pes > 1 and not ctx.is_symmetric(src):
        raise CollectiveArgumentError("scan src must be a symmetric address")
    if me == 0:
        kind = "inclusive" if inclusive else "exclusive"
        ctx.machine.stats.collective_calls[f"scan:{kind}"] += 1
    with collective_span(ctx, "scan", members, inclusive=inclusive, op=op,
                         nelems=nelems, dtype=str(dtype)):
        _hillis_steele(ctx, dest, src, nelems, stride, op, dtype, inclusive,
                       members, me)


def _hillis_steele(ctx: "XBRTime", dest: int, src: int, nelems: int,
                   stride: int, op: str, dtype: np.dtype, inclusive: bool,
                   members: tuple[int, ...], me: int) -> None:
    n_pes = len(members)
    if nelems == 0:
        ctx.barrier_team(members)
        return
    eb = dtype.itemsize
    nbytes = span_bytes(nelems, stride, eb)
    buf_a = ctx.scratch_alloc(nbytes)
    buf_b = ctx.scratch_alloc(nbytes)
    l_buf = ctx.private_malloc(nbytes)
    view_a = ctx.view(buf_a, dtype, nelems, stride)
    view_b = ctx.view(buf_b, dtype, nelems, stride)
    l_view = ctx.view(l_buf, dtype, nelems, stride)
    local_copy(ctx, buf_a, src, nelems, stride, dtype)
    cur_addr, nxt_addr = buf_a, buf_b
    cur_view, nxt_view = view_a, view_b
    ctx.barrier_team(members)
    for i in range(n_stages(n_pes)):
        with stage_span(ctx, i):
            left = me - (1 << i)
            nxt_view[:] = cur_view
            if left >= 0:
                ctx.get(l_buf, cur_addr, nelems, stride, members[left],
                        dtype)
                apply_op(op, nxt_view, l_view)
                charge_elementwise(ctx, 2 * nelems)
            cur_addr, nxt_addr = nxt_addr, cur_addr
            cur_view, nxt_view = nxt_view, cur_view
            ctx.barrier_team(members)
    if inclusive:
        local_copy(ctx, dest, cur_addr, nelems, stride, dtype)
    else:
        # Shift right by one rank: fetch the inclusive result of the
        # left neighbour; rank 0 takes the operator identity.
        dview = ctx.view(dest, dtype, nelems, stride)
        if me == 0:
            dview[:] = identity_of(op, dtype)
            ctx.charge_stream(dest, nbytes, write=True)
        else:
            ctx.get(dest, cur_addr, nelems, stride, members[me - 1], dtype)
        ctx.barrier_team(members)
    ctx.private_free(l_buf)
    ctx.scratch_free(buf_b)
    ctx.scratch_free(buf_a)
