"""Shared plumbing for the collective implementations.

All collectives operate over a *group*: the ordered tuple of world ranks
participating in the call (``None`` = all PEs).  Ranks inside an
algorithm (``log_rank``, ``root``, ``vir_rank``) are group-relative;
:func:`world_rank` converts back when issuing put/get.  This is the
mechanism behind team collectives (paper section 7) — the world case is
simply the identity group.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from ..errors import CollectiveArgumentError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = [
    "resolve_group",
    "validate_root",
    "validate_counts",
    "span_bytes",
    "charge_elementwise",
    "local_copy",
    "collective_span",
    "stage_span",
    "scratch_buffers",
    "private_buffer",
]


class _NullSpan:
    """Shared no-op context manager for the tracing-disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def collective_span(ctx: "XBRTime", name: str, members: Sequence[int],
                    **attrs: object):
    """Context manager spanning one collective call on this PE.

    The span carries the participant ``group`` so the metrics layer can
    correlate the per-PE spans of one logical call.  Returns a shared
    no-op when tracing is disabled (zero allocation, zero events).
    """
    spans = ctx.spans
    if not spans.enabled:
        return _NULL_SPAN
    return spans.scope(ctx.rank, "collective", name,
                       {"group": tuple(members), **attrs})


def stage_span(ctx: "XBRTime", index: int, **attrs: object):
    """Context manager spanning one tree stage (including its closing
    barrier).  ``index`` is the stage ordinal in execution order."""
    spans = ctx.spans
    if not spans.enabled:
        return _NULL_SPAN
    return spans.scope(ctx.rank, "stage", "stage", {"index": index, **attrs})


def resolve_group(ctx: "XBRTime", group: Sequence[int] | None) -> tuple[tuple[int, ...], int]:
    """Normalise ``group`` and locate the caller.

    Returns ``(members, my_index)`` where ``members`` is the ordered
    tuple of world ranks and ``my_index`` is the caller's group rank.
    """
    if group is None:
        # Team-scoped contexts (serving over PE subsets) carry a default
        # group; collectives called without an explicit one target it,
        # with group-relative ranks.  Plain contexts fall to the world.
        group = getattr(ctx, "default_group", None)
        if group is None:
            return ctx.world_group, ctx.rank
    members = tuple(group)
    if len(set(members)) != len(members):
        raise CollectiveArgumentError(f"group has duplicate ranks: {members}")
    n_world = ctx.config.n_pes
    for r in members:
        if not 0 <= r < n_world:
            raise CollectiveArgumentError(f"group rank {r} out of range")
    try:
        me = members.index(ctx.rank)
    except ValueError:
        raise CollectiveArgumentError(
            f"PE {ctx.rank} called a collective of group {members} it does "
            "not belong to"
        ) from None
    return members, me


def validate_root(root: int, n_pes: int) -> None:
    if not 0 <= root < n_pes:
        raise CollectiveArgumentError(
            f"root {root} out of range [0, {n_pes})"
        )


def validate_counts(nelems: int, stride: int) -> None:
    if nelems < 0:
        raise CollectiveArgumentError(f"nelems must be >= 0, got {nelems}")
    if stride < 1:
        raise CollectiveArgumentError(f"stride must be >= 1, got {stride}")


def span_bytes(nelems: int, stride: int, elem_bytes: int) -> int:
    """Bytes spanned by ``nelems`` strided elements (0 when empty)."""
    if nelems == 0:
        return 0
    return ((nelems - 1) * stride + 1) * elem_bytes


def charge_elementwise(ctx: "XBRTime", nelems: int, instrs_per_elem: float = 2.0) -> None:
    """Charge the ALU cost of an elementwise pass over ``nelems``."""
    ctx.compute(nelems * instrs_per_elem * ctx.config.cycle_ns)


def local_copy(ctx: "XBRTime", dest: int, src: int, nelems: int, stride: int,
               dtype: np.dtype) -> None:
    """Charged local strided copy (a put to self)."""
    if nelems == 0 or dest == src:
        return
    ctx.put(dest, src, nelems, stride, ctx.rank, dtype)


@contextmanager
def scratch_buffers(ctx: "XBRTime", *sizes: int) -> Iterator[tuple[int, ...]]:
    """Allocate symmetric scratch buffers, freed LIFO on exit.

    The frees run even when the collective unwinds on an exception
    (e.g. :class:`~repro.errors.PeerFailedError` from a degraded
    barrier), so a resilient retry starts from a clean scratch stack —
    and, since scratch addresses are position-dependent, from the *same*
    addresses on every survivor.
    """
    addrs = [ctx.scratch_alloc(size) for size in sizes]
    try:
        yield tuple(addrs)
    finally:
        for addr in reversed(addrs):
            ctx.scratch_free(addr)


@contextmanager
def private_buffer(ctx: "XBRTime", nbytes: int) -> Iterator[int]:
    """Allocate a private work buffer, freed on exit (exception-safe)."""
    addr = ctx.private_malloc(nbytes)
    try:
        yield addr
    finally:
        ctx.private_free(addr)
