"""Runtime algorithm selection (paper sections 4.1 and 7).

"There is no universally optimal solution suited to every occasion ...
most state-of-the-art solutions include a variety of algorithms which
are dynamically chosen from at runtime based on the arguments of a
specific call."  The paper's initial library ships only the binomial
tree; this module supplies the selection layer its future work calls
for, choosing between the implemented algorithms by message size, PE
count and topology.

The default thresholds come from this reproduction's own ablation
(``benchmarks/bench_ablation_algorithms.py``), and they differ from the
classic MPI folklore in an instructive way: with *one-sided, user-space*
puts the root's per-message overhead is tiny, so a pipelined linear
broadcast beats the barrier-synchronised binomial tree for small
payloads; the tree takes over once the payload is large enough that the
root's injection link serialises the linear scheme; and the chunked
pipelined ring wins the bandwidth-bound regime.  (Under the two-sided
MPI transport the small-message crossover moves toward the tree, which
is the regime the MPI literature describes.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CollectiveArgumentError

__all__ = ["SelectionPolicy", "DEFAULT_POLICY", "select_algorithm"]


@dataclass(frozen=True)
class SelectionPolicy:
    """Thresholds for dynamic algorithm choice (bytes / PE counts)."""

    #: Below this payload the pipelined linear scheme wins on a
    #: one-sided transport (the root's sends are fire-and-forget).
    linear_max_bytes: int = 4 * 1024
    #: Linear also wins outright at trivial PE counts.
    linear_max_pes: int = 2
    #: Beyond this PE count the root's O(N) sends always lose.
    linear_pe_limit: int = 32
    #: Above this payload the chunked pipelined ring wins the broadcast
    #: (it keeps every link busy with a different chunk).
    ring_min_bytes: int = 128 * 1024
    ring_min_pes: int = 4
    #: Allreduce: below this payload the latency term dominates and
    #: recursive doubling's ⌈log₂N⌉ stages win; above it the
    #: bandwidth-optimal reduce-scatter schemes (Rabenseifner at
    #: power-of-two PE counts, the ring elsewhere — the ring pays no
    #: fold penalty for the ranks past the largest power of two) take
    #: over.
    allreduce_large_bytes: int = 32 * 1024
    #: Allreduce off power-of-two: inside this PE band the doubly
    #: pipelined dual-root trees beat the ring — the ring's 2·(N-1)
    #: rounds grow linearly while the pipeline's 2·depth+S-1 grow
    #: logarithmically (measured crossover in ``BENCH_pipeline.json``:
    #: ring still wins below ~32 PEs where its round count is small and
    #: it moves the least data per rank).
    allreduce_pipelined_min_pes: int = 32
    #: … and above this PE count the Rabenseifner fold amortises even
    #: off power-of-two (two fold rounds against a deepening tree), so
    #: dual-pipelined yields back to it.
    allreduce_pipelined_max_pes: int = 64
    #: Allgather: the dissemination exchange beats the gather+broadcast
    #: composition once the tree is deep enough that the root hop and
    #: double traversal cost more than the rotated staging copies.
    allgather_dissemination_min_pes: int = 4
    #: Reduce-scatter: the parallel-aggregated-tree schedule (⌈log₂N⌉
    #: rounds) beats the ring (N-1 rounds) from this PE count on —
    #: below it the two move the same bytes over the same round count.
    reduce_scatter_pat_min_pes: int = 4


DEFAULT_POLICY = SelectionPolicy()

_SUPPORTED = {
    "broadcast": ("binomial", "linear", "ring"),
    "reduce": ("binomial", "linear"),
    "allreduce": ("doubling", "rabenseifner", "ring", "dual-pipelined"),
    "allgather": ("tree", "dissemination", "pat"),
    "reduce_scatter": ("ring", "pat"),
}


def select_algorithm(
    op: str,
    nbytes: int,
    n_pes: int,
    topology: str = "fully-connected",
    policy: SelectionPolicy = DEFAULT_POLICY,
) -> str:
    """Pick an algorithm for ``op`` moving ``nbytes`` across ``n_pes``."""
    if op not in _SUPPORTED:
        raise CollectiveArgumentError(
            f"no selection rule for collective {op!r}"
        )
    if nbytes < 0 or n_pes <= 0:
        raise CollectiveArgumentError("nbytes/n_pes must be non-negative")
    if op == "allreduce":
        if n_pes <= 2 or nbytes < policy.allreduce_large_bytes:
            return "doubling"
        if n_pes & (n_pes - 1):  # not a power of two: no cheap fold
            if n_pes < policy.allreduce_pipelined_min_pes:
                return "ring"
            if n_pes < policy.allreduce_pipelined_max_pes:
                return "dual-pipelined"
            return "rabenseifner"
        return "rabenseifner"
    if op == "allgather":
        if n_pes >= policy.allgather_dissemination_min_pes:
            return "pat"
        return "tree"
    if op == "reduce_scatter":
        if n_pes >= policy.reduce_scatter_pat_min_pes:
            return "pat"
        return "ring"
    if n_pes <= policy.linear_max_pes:
        return "linear"
    if (
        op == "broadcast"
        and n_pes >= policy.ring_min_pes
        and nbytes >= policy.ring_min_bytes
    ):
        return "ring"
    if nbytes <= policy.linear_max_bytes and n_pes <= policy.linear_pe_limit:
        return "linear"
    return "binomial"
