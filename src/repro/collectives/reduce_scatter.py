"""First-class reduce-scatter (OpenSHMEM ``reduce_scatter`` semantics).

Every PE contributes a full ``nelems`` vector at ``src``; after the
call, PE ``r`` holds the elementwise reduction of *its* block — the
``pe_msgs[r]`` elements at displacement ``pe_disp[r]`` — at ``dest``.
Blocks may be ragged (per-PE counts differ) and zero-count PEs simply
receive nothing.  Neither ``src`` nor ``dest`` needs to be symmetric:
all remote traffic goes through the schedule's symmetric scratch
accumulator, exactly like the ring allreduce.

Two compiled algorithms:

* **ring** (``algorithm="ring"``) — the bandwidth-optimal rotation:
  ``N-1`` stages, each rank folding one block pulled from its left
  neighbour's accumulator, walking the blocks so that after the last
  stage rank ``r``'s accumulator holds the complete sum of block ``r``.
  Every stage moves one block over nearest-neighbour links.
* **PAT** (``algorithm="pat"``) — a parallel-aggregated-tree schedule
  dual to the dissemination allgather: the held-block window *shrinks*
  by doubling steps instead of growing, so any PE count finishes in
  ⌈log₂N⌉ rounds.  At the step of width ``w`` rank ``r`` pulls from
  ``(r+w) mod N`` the partner's partials for the ``grab`` blocks
  ``r, r-1, …`` and folds them — every block travels down its own
  binomial reduction tree, and all N trees proceed in aggregate.
  Blocks stay at their natural ``pe_disp`` offsets throughout (no
  rotation scratch), so ring-adjacent blocks coalesce into single
  strided gets.  With ``segments > 1`` each block is additionally cut
  into S chunks flowing through a :class:`~.schedule.ir.Pipeline`
  block: segment ``k`` of step ``j`` folds as soon as segment ``k`` of
  step ``j-1`` delivered, hiding per-round latency on large payloads.

Hazard freedom (checked mechanically by the schedule linter): at the
ring stage ``s`` rank ``r`` reads its left neighbour's block
``(r-2-s) mod N`` while the neighbour folds into its own block
``(r-3-s) mod N`` — always distinct.  At the PAT step of width ``w``
rank ``r`` reads partner offsets ``[w, w+grab)`` while the partner
writes its offsets ``[0, grab)`` — disjoint because ``grab <= w``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import CollectiveArgumentError
from .common import resolve_group
from .ops import check_op
from .scatter import _validate
from .schedule.executor import PreparedCollective
from .schedule.ir import (
    BARRIER,
    Buffer,
    Copy,
    Get,
    Pipeline,
    RankProgram,
    Reduce,
    Schedule,
    Stage,
    segment_bounds,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = ["reduce_scatter", "prepare_reduce_scatter",
           "compile_reduce_scatter", "pat_width_steps"]

#: Algorithms :func:`compile_reduce_scatter` accepts.
ALGORITHMS = ("ring", "pat")


def pat_width_steps(n_pes: int) -> tuple[tuple[int, int], ...]:
    """The ``(width, grab)`` doubling ladder shared by the dissemination
    allgather and its reduce-scatter dual: widths ``1, 2, 4, …`` with the
    last step clamped so ``width + grab`` lands exactly on ``n_pes``.
    """
    steps = []
    width = 1
    while width < n_pes:
        grab = min(width, n_pes - width)
        steps.append((width, grab))
        width += grab
    return tuple(steps)


def reduce_scatter(
    ctx: "XBRTime",
    dest: int,
    src: int,
    pe_msgs: Sequence[int],
    pe_disp: Sequence[int],
    nelems: int,
    op: str,
    dtype: np.dtype,
    *,
    algorithm: str = "auto",
    segments: int = 1,
    group: Sequence[int] | None = None,
) -> None:
    """Reduce-scatter: PE ``r`` ends with the reduction of the
    ``pe_msgs[r]`` elements at displacement ``pe_disp[r]`` in its
    ``dest``.  ``algorithm`` is ``"ring"``, ``"pat"`` or ``"auto"``;
    ``segments`` (PAT only) pipelines each block in S chunks."""
    prepare_reduce_scatter(
        ctx, dest, src, pe_msgs, pe_disp, nelems, op, dtype,
        algorithm=algorithm, segments=segments, group=group,
    ).run(ctx)


def prepare_reduce_scatter(
    ctx: "XBRTime",
    dest: int,
    src: int,
    pe_msgs: Sequence[int],
    pe_disp: Sequence[int],
    nelems: int,
    op: str,
    dtype: np.dtype,
    *,
    algorithm: str = "auto",
    segments: int = 1,
    group: Sequence[int] | None = None,
) -> PreparedCollective:
    """Validate, select and compile — everything but the execution."""
    check_op(op, dtype)
    if segments < 1:
        raise CollectiveArgumentError("segments must be >= 1")
    members, me = resolve_group(ctx, group)
    n_pes = len(members)
    _validate(pe_msgs, pe_disp, nelems, n_pes, "reduce_scatter")
    if algorithm == "auto":
        from .tuning import select_algorithm

        algorithm = select_algorithm(
            "reduce_scatter", nelems * dtype.itemsize, n_pes,
            ctx.config.topology,
        )
    if algorithm not in ALGORITHMS:
        raise CollectiveArgumentError(
            f"unknown reduce_scatter algorithm {algorithm!r}"
        )
    sched = compile_reduce_scatter(
        n_pes, tuple(pe_msgs), tuple(pe_disp), nelems, dtype.itemsize, op,
        algorithm=algorithm, segments=segments,
    )
    return PreparedCollective(
        name="reduce_scatter", members=members, me=me, dtype=dtype,
        attrs=dict(algorithm=algorithm, op=op, nelems=nelems,
                   dtype=str(dtype)),
        schedule=sched, bindings={"dest": dest, "src": src},
        stats_key=f"reduce_scatter:{algorithm}", stats_rank=0,
    )


@lru_cache(maxsize=256)
def compile_reduce_scatter(n_pes: int, counts: tuple[int, ...],
                           disps: tuple[int, ...], nelems: int,
                           itemsize: int, op: str, *,
                           algorithm: str = "ring",
                           segments: int = 1) -> Schedule:
    """Compile one reduce-scatter call shape (pure, cached)."""
    if algorithm == "ring":
        return _compile_ring_rs(n_pes, counts, disps, nelems, itemsize, op)
    if algorithm == "pat":
        return _compile_pat_rs(n_pes, counts, disps, nelems, itemsize, op,
                               segments)
    raise CollectiveArgumentError(
        f"unknown reduce_scatter algorithm {algorithm!r}"
    )


def _rs_extent(counts: tuple[int, ...], disps: tuple[int, ...]) -> int:
    """Elements spanned by the block layout (disps may be non-packed)."""
    return max((d + c for d, c in zip(disps, counts)), default=0)


def _rs_buffers(n_pes: int, counts: tuple[int, ...], extent: int,
                itemsize: int) -> tuple[Buffer, ...]:
    return (
        Buffer("dest", "user", tuple(c * itemsize for c in counts)),
        Buffer("src", "user", extent * itemsize),
        Buffer("a", "scratch", extent * itemsize, symmetric=True),
        Buffer("l", "private", extent * itemsize),
    )


def _rs_deliver(n_pes: int, counts: tuple[int, ...],
                itemsize: int) -> tuple:
    return tuple((r, "dest", 0, counts[r] * itemsize)
                 for r in range(n_pes) if counts[r])


def _rs_degenerate(n_pes: int, counts: tuple[int, ...],
                   disps: tuple[int, ...], nelems: int, itemsize: int,
                   op: str, algorithm: str) -> Schedule:
    """n_pes == 1 or empty vector: a local copy of the own block."""
    programs = []
    for r in range(n_pes):
        steps: list = []
        if counts[r]:
            steps.append(Copy("dest", 0, "src", disps[r] * itemsize,
                              counts[r], 1, skip_noop=False))
        steps.append(BARRIER)
        programs.append(RankProgram(r, tuple(steps)))
    return Schedule(
        collective="reduce_scatter", algorithm=algorithm, n_pes=n_pes,
        itemsize=itemsize, op=op,
        buffers=(Buffer("dest", "user",
                        tuple(c * itemsize for c in counts)),
                 Buffer("src", "user",
                        _rs_extent(counts, disps) * itemsize)),
        programs=tuple(programs),
        deliver=_rs_deliver(n_pes, counts, itemsize),
    )


@lru_cache(maxsize=256)
def _compile_ring_rs(n_pes: int, counts: tuple[int, ...],
                     disps: tuple[int, ...], nelems: int, itemsize: int,
                     op: str) -> Schedule:
    """Rotating ring reduce-scatter: N-1 one-block stages."""
    if n_pes == 1 or nelems == 0:
        return _rs_degenerate(n_pes, counts, disps, nelems, itemsize, op,
                              "ring")
    eb = itemsize
    extent = _rs_extent(counts, disps)
    programs = []
    for r in range(n_pes):
        left = (r - 1) % n_pes
        prologue = (Copy("a", 0, "src", 0, extent, 1, skip_noop=False),
                    BARRIER)
        stages = []
        for s in range(n_pes - 1):
            # After stage s, this rank's accumulator block (r-2-s) mod N
            # holds the partial over ranks r-1-s..r; the walk ends with
            # block r complete at s = N-2.
            blk = (r - 2 - s) % n_pes
            cnt = counts[blk]
            steps: list = []
            if cnt:
                off = disps[blk] * eb
                steps.append(Get("l", off, "a", off, cnt, 1, left))
                steps.append(Reduce("a", off, "l", off, cnt, 1, cnt))
            steps.append(BARRIER)
            stages.append(Stage(s, tuple(steps)))
        epilogue: tuple = ()
        if counts[r]:
            epilogue = (Copy("dest", 0, "a", disps[r] * eb, counts[r], 1,
                             skip_noop=False),)
        programs.append(RankProgram(r, prologue, tuple(stages), epilogue))
    return Schedule(
        collective="reduce_scatter", algorithm="ring", n_pes=n_pes,
        itemsize=eb, op=op,
        buffers=_rs_buffers(n_pes, counts, extent, eb),
        programs=tuple(programs),
        deliver=_rs_deliver(n_pes, counts, eb),
    )


def _coalesce_blocks(blocks, counts, disps) -> list:
    """Merge disp-adjacent blocks into element ranges ``[lo, hi)``.

    ``blocks`` walks ring-consecutive ranks in descending order, so with
    the usual packed displacements the whole grab collapses into one or
    two (at the N-wrap) contiguous gets.
    """
    runs: list = []
    for d in blocks:
        if counts[d] == 0:
            continue
        lo, hi = disps[d], disps[d] + counts[d]
        if runs and runs[-1][0] == hi:    # extends the last run downward
            runs[-1][0] = lo
        elif runs and runs[-1][1] == lo:  # extends it upward
            runs[-1][1] = hi
        else:
            runs.append([lo, hi])
    return runs


@lru_cache(maxsize=256)
def _compile_pat_rs(n_pes: int, counts: tuple[int, ...],
                    disps: tuple[int, ...], nelems: int, itemsize: int,
                    op: str, segments: int) -> Schedule:
    """Parallel aggregated trees: the dissemination dual, pipelined."""
    if n_pes == 1 or nelems == 0:
        return _rs_degenerate(n_pes, counts, disps, nelems, itemsize, op,
                              "pat")
    eb = itemsize
    extent = _rs_extent(counts, disps)
    S = max(1, min(segments, max(counts)))
    # The allgather ladder reversed: the window of blocks each rank
    # still accumulates shrinks from N down to 1 (its own block).
    steps_desc = tuple(reversed(pat_width_steps(n_pes)))
    n_groups = len(steps_desc)
    programs = []
    for r in range(n_pes):
        prologue = (Copy("a", 0, "src", 0, extent, 1, skip_noop=False),
                    BARRIER)
        groups = [[()] * S for _ in range(n_groups)]
        for g, (w, grab) in enumerate(steps_desc):
            peer = (r + w) % n_pes
            blocks = [(r - o) % n_pes for o in range(grab)]
            if S == 1:
                steps: list = []
                for lo, hi in _coalesce_blocks(blocks, counts, disps):
                    off, cnt = lo * eb, hi - lo
                    steps.append(Get("l", off, "a", off, cnt, 1, peer))
                    steps.append(Reduce("a", off, "l", off, cnt, 1, cnt))
                groups[g][0] = tuple(steps)
                continue
            # Segmented: cut within each block so that segment k of this
            # step reads exactly the bytes segment k of the previous
            # (larger-width) step finished folding — the per-block
            # pipeline hazard contract the linter verifies.
            for k in range(S):
                steps = []
                for d in blocks:
                    e_lo, e_hi = segment_bounds(counts[d], S, k)
                    if e_hi == e_lo:
                        continue
                    off = (disps[d] + e_lo) * eb
                    cnt = e_hi - e_lo
                    steps.append(Get("l", off, "a", off, cnt, 1, peer))
                    steps.append(Reduce("a", off, "l", off, cnt, 1, cnt))
                groups[g][k] = tuple(steps)
        pipe = Pipeline(0, S, tuple(tuple(g) for g in groups),
                        attrs=(("phase", "pat-reduce"),))
        epilogue: tuple = ()
        if counts[r]:
            epilogue = (Copy("dest", 0, "a", disps[r] * eb, counts[r], 1,
                             skip_noop=False),)
        programs.append(RankProgram(r, prologue, (pipe,), epilogue))
    return Schedule(
        collective="reduce_scatter", algorithm="pat", n_pes=n_pes,
        itemsize=eb, op=op,
        buffers=_rs_buffers(n_pes, counts, extent, eb),
        programs=tuple(programs),
        deliver=_rs_deliver(n_pes, counts, eb),
    )
