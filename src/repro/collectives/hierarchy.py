"""Location-aware hierarchical collectives (paper section 7).

The paper lists "location aware communication optimization using the
xBGAS OLB" as future work: the OLB already knows which node hosts every
object, so a collective can route data node-by-node instead of treating
all PEs as equidistant.

These collectives run in two levels:

* **inter-node** — a binomial tree over one *leader* PE per node (the
  root's node is led by the root itself, so the data never takes an
  extra intra-node hop);
* **intra-node** — a binomial tree among each node's PEs, rooted at its
  leader, over the cheap intra-node path.

With the paper's sequential rank assignment, plain recursive halving is
already near-optimal (it crosses the node boundary only ⌈log₂ nodes⌉
times); the hierarchical variant matters when ranks are *scattered*
across nodes — e.g. a round-robin placement — where the flat tree pays
an inter-node hop at almost every edge.
``benchmarks/bench_ablation_locality.py`` quantifies both placements.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from .common import collective_span, resolve_group, span_bytes, validate_root
from .broadcast import run_binomial as _bcast_tree
from .reduce import run_binomial as _reduce_tree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = ["node_layout", "broadcast_hierarchical", "reduce_hierarchical"]


def node_layout(ctx: "XBRTime", members: Sequence[int],
                root_world: int) -> tuple[list[tuple[int, ...]], list[int]]:
    """Group ``members`` by hosting node.

    Returns ``(groups, leaders)`` where each group is the tuple of world
    ranks of one node (only nodes with members) and ``leaders[i]`` is
    the group's leader — the root for its node, the lowest rank
    elsewhere.
    """
    cfg = ctx.config
    by_node: dict[int, list[int]] = {}
    for r in members:
        by_node.setdefault(cfg.node_of(r), []).append(r)
    groups: list[tuple[int, ...]] = []
    leaders: list[int] = []
    for node in sorted(by_node):
        grp = tuple(sorted(by_node[node]))
        groups.append(grp)
        leaders.append(root_world if root_world in grp else grp[0])
    return groups, leaders


def broadcast_hierarchical(
    ctx: "XBRTime",
    dest: int,
    src: int,
    nelems: int,
    stride: int,
    root: int,
    dtype: np.dtype,
    *,
    group: Sequence[int] | None = None,
) -> None:
    """Two-level broadcast: leaders first, then within each node."""
    members, me = resolve_group(ctx, group)
    validate_root(root, len(members))
    root_world = members[root]
    groups, leaders = node_layout(ctx, members, root_world)
    if len(groups) <= 1:
        _bcast_tree(ctx, dest, src, nelems, stride, root, dtype,
                    tuple(members), me)
        return
    my_world = ctx.rank
    my_group = next(g for g in groups if my_world in g)
    my_leader = leaders[groups.index(my_group)]
    # Inter-node stage: binomial over the leaders, rooted at the root.
    if my_world in leaders:
        with collective_span(ctx, "broadcast.inter", tuple(leaders),
                             root=leaders.index(root_world), nelems=nelems,
                             dtype=str(dtype)):
            _bcast_tree(
                ctx, dest, src, nelems, stride, leaders.index(root_world),
                dtype, tuple(leaders), leaders.index(my_world),
            )
    # Intra-node stage: each node fans out from its leader, reading the
    # data the leader just received into dest (or src on the root).
    local_src = src if my_world == root_world else dest
    with collective_span(ctx, "broadcast.intra", my_group,
                         root=my_group.index(my_leader), nelems=nelems,
                         dtype=str(dtype)):
        _bcast_tree(
            ctx, dest, local_src, nelems, stride, my_group.index(my_leader),
            dtype, my_group, my_group.index(my_world),
        )


def reduce_hierarchical(
    ctx: "XBRTime",
    dest: int,
    src: int,
    nelems: int,
    stride: int,
    root: int,
    op: str,
    dtype: np.dtype,
    *,
    group: Sequence[int] | None = None,
) -> None:
    """Two-level reduction: within each node first, then across leaders."""
    members, me = resolve_group(ctx, group)
    validate_root(root, len(members))
    root_world = members[root]
    groups, leaders = node_layout(ctx, members, root_world)
    if len(groups) <= 1:
        _reduce_tree(ctx, dest, src, nelems, stride, root, op, dtype,
                     tuple(members), me)
        return
    my_world = ctx.rank
    my_group = next(g for g in groups if my_world in g)
    my_leader = leaders[groups.index(my_group)]
    # Intra-node partials land in symmetric scratch (the second stage
    # reads them one-sidedly from the leaders).
    nbytes = max(span_bytes(max(nelems, 1), stride, dtype.itemsize), 16)
    partial = ctx.scratch_alloc(nbytes)
    with collective_span(ctx, "reduce.intra", my_group,
                         root=my_group.index(my_leader), op=op,
                         nelems=nelems, dtype=str(dtype)):
        _reduce_tree(
            ctx, partial, src, nelems, stride, my_group.index(my_leader), op,
            dtype, my_group, my_group.index(my_world),
        )
    if my_world in leaders:
        with collective_span(ctx, "reduce.inter", tuple(leaders),
                             root=leaders.index(root_world), op=op,
                             nelems=nelems, dtype=str(dtype)):
            _reduce_tree(
                ctx, dest, partial, nelems, stride,
                leaders.index(root_world), op, dtype, tuple(leaders),
                leaders.index(my_world),
            )
    ctx.scratch_free(partial)
