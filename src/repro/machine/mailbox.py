"""Two-sided mailbox engine (the Xctcmsg-style core-to-core design).

Every PE owns one bounded receive queue of
:attr:`~repro.params.MailboxParams.recv_depth` message slots.  A send
travels through the *postoffice*: the ordinary fabric/topology path of
:mod:`repro.machine.network` (injection link, fabric channels, wire
latency) plus a per-hop routing charge and fixed header framing — so
mailbox traffic contends with one-sided traffic for exactly the same
links and extends the same barrier quiescence horizon.

Semantics (matching the ``Send``/``Recv`` IR nodes):

* **send** is eager and buffered — it completes once the message is
  committed to the target's receive queue.  It blocks only on
  *backpressure*: when the queue is full the enqueue does not happen
  (commit-safety — no partial slots), the sender backs off
  ``retry_ns`` and retries, up to ``max_retries`` before
  :class:`~repro.errors.MailboxBackpressureError`.  The retry loop
  keeps the sender runnable, so a stuck receiver surfaces as this
  error instead of a silent scheduler deadlock.
* **recv** blocks (suspending the PE) until the *first* message from
  the named source arrives; matching is strictly FIFO per
  (source, destination) pair.  The message's ``tag`` is then verified —
  a mismatch means sender and receiver disagree on the protocol and
  raises :class:`~repro.errors.MailboxProtocolError`.
* **try_recv** never blocks and only sees messages whose delivery time
  has already passed on the caller's clock (a message still in flight
  is invisible, exactly as on real hardware).

Fault injection hooks into the *enqueue* path through the machine's
:class:`~repro.faults.injector.FaultInjector` (via ``Network.send``):
a ``drop`` means the message is never enqueued, ``corrupt`` flags the
message so the payload is bit-flipped at delivery, ``delay``/``degrade``
shift its delivery time.  With a :class:`~repro.faults.plan.RetryConfig`
armed, dropped/corrupted enqueues are retried like reliable puts.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from ..errors import (
    MailboxBackpressureError,
    MailboxProtocolError,
    TransferTimeoutError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import Machine

__all__ = ["Message", "MailboxRouter"]


class Message:
    """One mailbox message occupying a receive-queue slot."""

    __slots__ = ("src", "dst", "tag", "data", "nbytes", "seq", "t_avail",
                 "fault")

    def __init__(self, src: int, dst: int, tag: int,
                 data: np.ndarray | None, nbytes: int, seq: int,
                 t_avail: float, fault=None):
        self.src = src
        self.dst = dst
        self.tag = tag
        #: Contiguous payload copy (None for payload-free control msgs).
        self.data = data
        self.nbytes = nbytes
        #: Global enqueue sequence number (diagnostics / determinism).
        self.seq = seq
        #: Instant the message becomes visible at the destination.
        self.t_avail = t_avail
        #: A fired ``corrupt`` fault to apply at delivery (None = clean).
        self.fault = fault

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Message(#{self.seq} PE{self.src}->PE{self.dst} "
                f"tag={self.tag} {self.nbytes}B @{self.t_avail:.0f}ns)")


class MailboxRouter:
    """Shared mailbox state for one simulated machine.

    Owns every PE's receive queue plus the blocked-receiver registry;
    all mutation happens at scheduler checkpoints so queue order is
    deterministic.  Memory-side costs (gathering the payload from the
    sender's buffer, scattering into the receiver's) are charged by the
    :class:`~repro.runtime.context.XBRTime` wrappers, not here.
    """

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.cfg = machine.config
        self.params = machine.config.mailbox
        n = machine.config.n_pes
        self._queues: list[deque[Message]] = [deque() for _ in range(n)]
        #: Blocked receiver rank -> source rank it awaits.
        self._waiting: dict[int, int] = {}
        self._seq = 0
        #: Peak receive-queue occupancy observed (per PE).
        self.peak_depth = [0] * n
        #: Sender stalls that hit a full queue (backpressure events).
        self.stalls = 0
        #: Messages whose enqueue was dropped by fault injection.
        self.dropped = 0

    # -- introspection ------------------------------------------------------

    def depth(self, rank: int) -> int:
        """Current occupancy of ``rank``'s receive queue."""
        return len(self._queues[rank])

    def route_ns(self, src_pe: int, dst_pe: int) -> float:
        """Postoffice routing charge: per-hop table work between nodes."""
        net = self.machine.network
        src_node, dst_node = net.node_of(src_pe), net.node_of(dst_pe)
        if src_node == dst_node:
            return 0.0
        hops = net.topology.hops(src_node, dst_node)
        return self.params.route_ns_per_hop * hops

    # -- send ----------------------------------------------------------------

    def send(self, rank: int, target: int, data: np.ndarray | None,
             nbytes: int, tag: int) -> None:
        """Commit one message into ``target``'s receive queue.

        ``data`` is already a contiguous copy of the payload (the caller
        charged the gather); the router charges wire + routing time and
        blocks the sender on backpressure.  Either the whole message is
        enqueued or nothing is — a failed attempt leaves no partial
        state, and the retry re-runs the entire commit.
        """
        machine = self.machine
        engine = machine.engine
        params = self.params
        pe = engine.pes[rank]
        queue = self._queues[target]
        traced = engine.trace.enabled

        # Backpressure: spin (runnable, so no false scheduler deadlock)
        # until a slot frees, with a bounded retry budget.
        stalls = 0
        while len(queue) >= params.recv_depth:
            stalls += 1
            if stalls > params.max_retries:
                raise MailboxBackpressureError(
                    f"PE {rank}: mailbox send to PE {target} stalled "
                    f"{stalls - 1} times on a full queue "
                    f"(depth {params.recv_depth}, max_retries="
                    f"{params.max_retries} exhausted)"
                )
            self.stalls += 1
            machine.stats.mbx_stalls += 1
            if traced:
                engine.record("mailbox",
                              f"backpressure -> PE{target} "
                              f"(depth {len(queue)})")
            pe.advance(params.retry_ns)
            engine.checkpoint()

        retry = machine.retry
        injector = machine.faults
        timeout = retry.timeout_ns if retry is not None else 0.0
        attempts = 1 + (retry.max_retries if retry is not None else 0)
        wire_bytes = nbytes + params.header_bytes
        for attempt in range(attempts):
            res = machine.network.send(pe.clock, rank, target, wire_bytes)
            pe.advance_to(res.t_source_free)
            fault = res.fault
            if (fault is not None and fault.kind in ("drop", "corrupt")
                    and retry is not None):
                injector.note_retry(pe.clock, rank, target,
                                    fault.seq, attempt, timeout)
                pe.advance(timeout)
                timeout *= retry.backoff
                continue
            if fault is not None and fault.kind == "drop":
                # Unreliable mode: the postoffice lost the message and
                # nothing was ever committed to the queue.
                self.dropped += 1
                machine.stats.mbx_dropped += 1
                return
            t_avail = res.t_delivered + self.route_ns(rank, target)
            machine.network.note_delivery(t_avail)
            corrupt = (fault if fault is not None
                       and fault.kind == "corrupt" else None)
            self._seq += 1
            msg = Message(rank, target, tag, data, nbytes, self._seq,
                          t_avail, fault=corrupt)
            queue.append(msg)
            depth = len(queue)
            if depth > self.peak_depth[target]:
                self.peak_depth[target] = depth
            machine.stats.sends += 1
            machine.stats.bytes_sent += nbytes
            if self._waiting.get(target) == rank:
                del self._waiting[target]
                engine.resume(target, at_time=msg.t_avail)
            return
        raise TransferTimeoutError(
            f"PE {rank}: mailbox send of {nbytes}B to PE {target} lost "
            f"{attempts} times (max_retries={retry.max_retries} exhausted)"
        )

    # -- receive -------------------------------------------------------------

    def _match(self, rank: int, src: int) -> Message | None:
        """Pop the first queued message from ``src`` (FIFO per pair)."""
        queue = self._queues[rank]
        for msg in queue:
            if msg.src == src:
                queue.remove(msg)
                return msg
        return None

    def recv(self, rank: int, src: int, tag: int) -> Message:
        """Block until the next message from ``src`` arrives; verify tag."""
        machine = self.machine
        engine = machine.engine
        pe = engine.pes[rank]
        while True:
            msg = self._match(rank, src)
            if msg is not None:
                break
            self._waiting[rank] = src
            engine.suspend()  # woken by the matching send's enqueue
        if msg.tag != tag:
            raise MailboxProtocolError(
                f"PE {rank}: recv from PE {src} expected tag {tag} but "
                f"the pair's FIFO head is {msg!r} — sender and receiver "
                f"disagree on message order"
            )
        pe.advance_to(msg.t_avail)
        pe.advance(self.params.match_ns)
        machine.stats.recvs += 1
        return msg

    def try_recv(self, rank: int, src: int | None = None) -> Message | None:
        """Non-blocking receive: the oldest *visible* message, or None.

        ``src=None`` matches any source (whole-queue FIFO order).  Only
        messages already delivered on the caller's clock are visible.
        """
        machine = self.machine
        pe = machine.engine.pes[rank]
        queue = self._queues[rank]
        for msg in queue:
            if msg.t_avail > pe.clock:
                continue
            if src is not None and msg.src != src:
                continue
            queue.remove(msg)
            pe.advance(self.params.match_ns)
            machine.stats.recvs += 1
            return msg
        return None

    def probe(self, rank: int, src: int | None = None) -> bool:
        """Whether a visible message (optionally from ``src``) is queued."""
        pe = self.machine.engine.pes[rank]
        return any(msg.t_avail <= pe.clock
                   and (src is None or msg.src == src)
                   for msg in self._queues[rank])
