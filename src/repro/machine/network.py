"""LogGP-style network model with injection links and fabric contention.

The paper's simulation used MPICH 3.2 between Spike instances; here the
transport costs are explicit and swappable (:mod:`repro.params` presets
for xBGAS one-sided, RDMA-like and MPI-like two-sided behaviour).

Cost structure for a message of ``nbytes`` from PE *s* to PE *d*:

* **Same node** — no NIC or fabric involvement, but all cores of a node
  share one internal bus with a fixed per-message occupancy: as the
  aggregate message rate approaches bus capacity, queueing delay grows
  and backpressures senders.  The paper's testbed is a single 12-core
  host, so this bus is what saturates at 8 PEs in Figures 4-5.
* **Different nodes** — the sender pays ``o_send`` CPU overhead, the
  message serialises on the source node's injection link
  (``inj_ns_per_byte``), then crosses the shared fabric.  The fabric is
  modelled as a small number of parallel channels with a fixed per-message
  routing occupancy plus a per-byte cost — when the aggregate message rate
  approaches channel capacity, queueing delay grows and *backpressures the
  sender* (this is what degrades 8-PE GUPs/IS in Figures 4-5).  Wire
  latency scales mildly with topology hop count.

Two-sided transports additionally pay the handshake above the eager
threshold, per-message kernel crossings and staging copies at both ends.

All state updates happen at scheduler checkpoints, so the global order of
``send`` calls is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import MachineConfig
from ..sim.trace import SimStats
from .topology import Topology, build_topology

__all__ = ["PutResult", "GetResult", "Network"]

#: Fixed fabric occupancy per message (routing/arbitration), ns.
FABRIC_NS_PER_MSG = 45.0
#: Number of independent fabric channels (bisection parallelism).
FABRIC_CHANNELS = 2
#: Additional wire latency per extra hop, as a fraction of base latency.
HOP_LATENCY_FACTOR = 0.15
#: Per-message occupancy of a node's shared internal bus, ns.
NODE_BUS_NS_PER_MSG = 16.0


@dataclass(frozen=True)
class PutResult:
    """Timing of a one-way message.

    ``t_source_free``: when the sender may proceed (includes backpressure).
    ``t_delivered``: when the payload is visible at the target.
    ``fault``: the :class:`~repro.faults.plan.FiredFault` that struck
    this message (None on the clean path).  For a ``drop`` the payload
    never lands and ``t_delivered`` is when it *would* have.
    """

    t_source_free: float
    t_delivered: float
    fault: object | None = None


@dataclass(frozen=True)
class GetResult:
    """Timing of a round-trip read: ``t_complete`` is when data is local.

    ``fault`` mirrors :attr:`PutResult.fault`; a dropped get means the
    response was lost and no data arrived.
    """

    t_complete: float
    fault: object | None = None


class Network:
    """Shared interconnect state for one simulated machine."""

    def __init__(self, config: MachineConfig, stats: SimStats | None = None):
        self.cfg = config
        self.tp = config.transport
        self.stats = stats if stats is not None else SimStats()
        self.topology: Topology = build_topology(
            config.topology, config.n_nodes
        )
        # Next instant each node's injection link is free.
        self._link_free = [0.0] * config.n_nodes
        # Next instant each node's shared internal bus is free.
        self._bus_free = [0.0] * config.n_nodes
        # Next instant each fabric channel is free (round-robin by load).
        self._fabric_free = [0.0] * FABRIC_CHANNELS
        # Latest delivery time of any in-flight message (barrier quiescence).
        self.max_delivery = 0.0
        #: Optional :class:`~repro.faults.injector.FaultInjector` consulted
        #: for every remote message (set by the Machine; None = clean).
        self.injector = None

    # -- helpers -----------------------------------------------------------

    def node_of(self, pe: int) -> int:
        return self.cfg.node_of(pe)

    def same_node(self, src_pe: int, dst_pe: int) -> bool:
        return self.node_of(src_pe) == self.node_of(dst_pe)

    def _wire_latency(self, src_node: int, dst_node: int) -> float:
        hops = self.topology.hops(src_node, dst_node)
        return self.tp.latency_ns * (1.0 + HOP_LATENCY_FACTOR * max(0, hops - 1))

    def _cross_fabric(self, t_ready: float, nbytes: float) -> tuple[float, float]:
        """Serialise one message through the fabric.

        Returns ``(t_enter, queued_ns)`` where ``t_enter`` is when the
        message starts crossing (sender is backpressured until then).
        """
        occ = FABRIC_NS_PER_MSG + nbytes * self.cfg.fabric_gap_ns_per_byte
        # Earliest-free channel.
        ch = min(range(FABRIC_CHANNELS), key=self._fabric_free.__getitem__)
        t_enter = max(t_ready, self._fabric_free[ch])
        self._fabric_free[ch] = t_enter + occ
        queued = t_enter - t_ready
        if queued > 0:
            self.stats.fabric_queued_ns += queued
        return t_enter, queued

    def _cross_bus(self, node: int, t_ready: float, nbytes: float) -> float:
        """Serialise one message on a node's shared internal bus.

        Returns the instant the message starts crossing; the sender is
        backpressured until then.
        """
        occ = NODE_BUS_NS_PER_MSG + nbytes * self.tp.intra_gap_ns_per_byte
        t_enter = max(t_ready, self._bus_free[node])
        self._bus_free[node] = t_enter + occ
        queued = t_enter - t_ready
        if queued > 0:
            self.stats.fabric_queued_ns += queued
        return t_enter

    def _sample_fault(self, t_now: float, src_pe: int, dst_pe: int,
                      nbytes: int):
        """Ask the injector (if any) whether this message is struck."""
        if self.injector is None or src_pe == dst_pe:
            return None
        return self.injector.on_message(t_now, src_pe, dst_pe, nbytes)

    @staticmethod
    def _faulted_delivery(fault, t_del: float, nbytes: float,
                          gap_ns_per_byte: float) -> float:
        """Fold a fired fault's timing effect into a delivery instant.

        ``delay`` adds a fixed extra latency; ``degrade`` stretches the
        serialisation term by ``factor`` (the link ran slower).  Drops
        and corruption do not change *when* the bits land — only whether
        they are any good.
        """
        if fault is None:
            return t_del
        if fault.kind == "delay":
            return t_del + fault.delay_ns
        if fault.kind == "degrade":
            return t_del + nbytes * gap_ns_per_byte * (fault.factor - 1.0)
        return t_del

    def _sender_side(self, t_now: float, nbytes: int) -> float:
        """Per-message sender CPU costs common to put and get requests."""
        tp = self.tp
        ns = tp.o_send + tp.kernel_ns + nbytes * tp.copy_ns_per_byte
        if tp.handshake_ns and nbytes > tp.eager_threshold:
            ns += tp.handshake_ns
        return t_now + ns

    # -- one-way message (put) ------------------------------------------------

    def send(self, t_now: float, src_pe: int, dst_pe: int, nbytes: int,
             *, faultable: bool = True) -> PutResult:
        """Cost a one-way payload transfer of ``nbytes``.

        For one-sided transports the target CPU is not involved; for
        two-sided ones the caller must additionally charge ``o_recv`` and
        the receive-side copy to the target PE.  ``faultable=False``
        exempts the message from injection (callers with no recovery
        protocol of their own).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        tp = self.tp
        self.stats.messages += 1
        self.stats.bytes_on_wire += nbytes
        fault = (self._sample_fault(t_now, src_pe, dst_pe, nbytes)
                 if faultable else None)
        src_node, dst_node = self.node_of(src_pe), self.node_of(dst_pe)
        if src_node == dst_node:
            t_ready = t_now + tp.o_send + tp.kernel_ns + nbytes * tp.copy_ns_per_byte
            if tp.handshake_ns and nbytes > tp.eager_threshold:
                t_ready += tp.handshake_ns
            t_enter = self._cross_bus(src_node, t_ready, nbytes)
            t_del = t_enter + tp.intra_latency_ns + nbytes * tp.intra_gap_ns_per_byte
            if tp.two_sided:
                t_del += tp.o_recv + nbytes * tp.copy_ns_per_byte
            t_del = self._faulted_delivery(fault, t_del, nbytes,
                                           tp.intra_gap_ns_per_byte)
            if fault is None or fault.kind != "drop":
                # A dropped payload never lands, so it cannot extend the
                # quiescence horizon.
                self.max_delivery = max(self.max_delivery, t_del)
            return PutResult(t_source_free=max(t_ready, t_enter),
                             t_delivered=t_del, fault=fault)
        t_ready = self._sender_side(t_now, nbytes)
        t_inj_done = max(t_ready, self._link_free[src_node]) + nbytes * tp.inj_ns_per_byte
        self._link_free[src_node] = t_inj_done
        t_enter, _ = self._cross_fabric(t_inj_done, nbytes)
        t_del = t_enter + self._wire_latency(src_node, dst_node) + nbytes * tp.gap_ns_per_byte
        if tp.two_sided:
            t_del += tp.o_recv + nbytes * tp.copy_ns_per_byte
        t_del = self._faulted_delivery(fault, t_del, nbytes, tp.gap_ns_per_byte)
        if fault is None or fault.kind != "drop":
            self.max_delivery = max(self.max_delivery, t_del)
        # Backpressure: the sender stalls until the fabric accepts.
        return PutResult(t_source_free=max(t_ready, t_enter),
                         t_delivered=t_del, fault=fault)

    # -- round trip (get) -------------------------------------------------------

    def fetch(self, t_now: float, src_pe: int, dst_pe: int, nbytes: int,
              *, faultable: bool = True) -> GetResult:
        """Cost a one-sided read of ``nbytes`` from ``dst_pe`` to ``src_pe``.

        The request is a small message; the response carries the payload.
        One-sided transports need no target-CPU participation (the xBGAS
        OLB answers directly).  ``faultable=False`` exempts the message
        from injection (remote atomics, which have no retry protocol).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        tp = self.tp
        src_node, dst_node = self.node_of(src_pe), self.node_of(dst_pe)
        self.stats.messages += 2
        self.stats.bytes_on_wire += nbytes + 16
        # One sample covers the request/response pair: losing either
        # direction loses the read.
        fault = (self._sample_fault(t_now, src_pe, dst_pe, nbytes)
                 if faultable else None)
        if src_node == dst_node:
            t_ready = t_now + tp.o_send + tp.kernel_ns
            t_req = self._cross_bus(src_node, t_ready, 16)
            t_arrive = t_req + tp.intra_latency_ns
            if tp.two_sided:
                t_arrive += tp.o_recv + tp.kernel_ns
            t_rsp = self._cross_bus(src_node, t_arrive, nbytes)
            t = t_rsp + tp.intra_latency_ns + nbytes * tp.intra_gap_ns_per_byte
            if tp.two_sided:
                t += nbytes * tp.copy_ns_per_byte
            t = self._faulted_delivery(fault, t, nbytes,
                                       tp.intra_gap_ns_per_byte)
            if fault is None or fault.kind != "drop":
                self.max_delivery = max(self.max_delivery, t)
            return GetResult(t_complete=t, fault=fault)
        t_ready = self._sender_side(t_now, 16)
        # Request crosses the fabric...
        t_req = max(t_ready, self._link_free[src_node]) + 16 * tp.inj_ns_per_byte
        self._link_free[src_node] = t_req
        t_enter, _ = self._cross_fabric(t_req, 16)
        t_arrive = t_enter + self._wire_latency(src_node, dst_node)
        if tp.two_sided:
            t_arrive += tp.o_recv + tp.kernel_ns
        # ...and the response comes back through the target's link.
        t_rsp = max(t_arrive, self._link_free[dst_node]) + nbytes * tp.inj_ns_per_byte
        self._link_free[dst_node] = t_rsp
        t_enter2, _ = self._cross_fabric(t_rsp, nbytes)
        t_done = t_enter2 + self._wire_latency(dst_node, src_node) + nbytes * tp.gap_ns_per_byte
        if tp.two_sided:
            t_done += nbytes * tp.copy_ns_per_byte
        t_done = self._faulted_delivery(fault, t_done, nbytes,
                                        tp.gap_ns_per_byte)
        if fault is None or fault.kind != "drop":
            self.max_delivery = max(self.max_delivery, t_done)
        return GetResult(t_complete=t_done, fault=fault)

    # -- barrier support ---------------------------------------------------------

    def quiescence_time(self) -> float:
        """Earliest instant at which no message is still in flight."""
        return self.max_delivery

    def note_delivery(self, t: float) -> None:
        """Extend the quiescence horizon (e.g. for target-side memory
        time the runtime folds into a put's delivery)."""
        if t > self.max_delivery:
            self.max_delivery = t
