"""Timing substrate: caches, TLB, DRAM, nodes and the interconnect.

Models the paper's evaluation platform (section 5.1): RISC-V cores with a
256-entry TLB and 8-way set-associative L1 (16 KB) / L2 (8 MB) caches,
connected by a network whose role MPICH 3.2 played in the original
infrastructure.
"""

from .cache import Cache, CacheLevelResult
from .tlb import Tlb
from .memsys import MemoryHierarchy
from .topology import Topology, build_topology
from .network import Network, PutResult, GetResult
from .node import Node

__all__ = [
    "Cache",
    "CacheLevelResult",
    "Tlb",
    "MemoryHierarchy",
    "Topology",
    "build_topology",
    "Network",
    "PutResult",
    "GetResult",
    "Node",
]
