"""Fully-associative LRU TLB (256 entries, 4 KB pages in the paper)."""

from __future__ import annotations

from ..params import TlbParams

__all__ = ["Tlb"]


class Tlb:
    """Translation look-aside buffer.

    Exploits Python dict insertion order for O(1) LRU: a hit re-inserts
    the page at the back; a miss evicts the front (oldest) entry.
    """

    def __init__(self, params: TlbParams):
        self.params = params
        self.page_shift = params.page_bytes.bit_length() - 1
        if (1 << self.page_shift) != params.page_bytes:
            raise ValueError("TLB page size must be a power of two")
        self._entries: dict[int, None] = {}
        self.hits = 0
        self.misses = 0

    def page_of(self, addr: int) -> int:
        return addr >> self.page_shift

    def access(self, page: int) -> bool:
        """Touch ``page``; returns True on hit, False on miss (then fills)."""
        entries = self._entries
        if page in entries:
            self.hits += 1
            del entries[page]  # re-insert at the back = most recent
            entries[page] = None
            return True
        self.misses += 1
        if len(entries) >= self.params.entries:
            oldest = next(iter(entries))
            del entries[oldest]
        entries[page] = None
        return False

    def access_run(self, first_page: int, n_pages: int) -> tuple[int, int]:
        """Touch the sequential pages ``[first_page, first_page+n_pages)``.

        Equivalent to one :meth:`access` per page in ascending order
        (pages in a run are distinct, so each lookup is independent),
        with the per-page call overhead and branchy stat updates hoisted
        out of the loop.  Returns ``(hits, misses)``; stats are updated.
        """
        entries = self._entries
        capacity = self.params.entries
        hits = 0
        for page in range(first_page, first_page + n_pages):
            if page in entries:
                hits += 1
                del entries[page]
                entries[page] = None
            else:
                if len(entries) >= capacity:
                    del entries[next(iter(entries))]
                entries[page] = None
        misses = n_pages - hits
        self.hits += hits
        self.misses += misses
        return hits, misses

    def probe(self, page: int) -> bool:
        """Presence check without touching LRU order or stats."""
        return page in self._entries

    def flush(self) -> None:
        self._entries.clear()

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tlb({self.params.entries} entries, hits={self.hits}, "
            f"misses={self.misses})"
        )
