"""Per-core memory hierarchy: TLB + L1 + L2 + DRAM latency model.

The hierarchy is *timing only*: it converts an access (address, size,
read/write) into nanoseconds, updating hit/miss statistics.  Functional
data lives in :class:`repro.isa.memory.Memory`.

Two costing entry points:

* :meth:`MemoryHierarchy.access` — one scalar access (the GUPs inner
  loop uses this per random update).
* :meth:`MemoryHierarchy.access_range` — a bulk sequential range (used
  by the runtime's put/get transfer engine and the vectorised benchmark
  phases).

Bulk ranges normally go through the batched fast path
(:meth:`Cache.access_run` / :meth:`Tlb.access_run`), which classifies a
whole run per cache set instead of making one Python call per line.
Setting ``fast_path = False`` on an instance restores the per-line
reference loop; the two are equivalent — identical counters, identical
cache/TLB state, and identical ns because the grouped cost formula
regroups exact (dyadic) per-line terms — and the equivalence suite
asserts it bit for bit.
"""

from __future__ import annotations

from ..params import MemoryParams
from .cache import Cache, CacheLevelResult
from .tlb import Tlb

__all__ = ["MemoryHierarchy"]


class MemoryHierarchy:
    """TLB, L1 and L2 models plus DRAM latency for one core."""

    def __init__(self, params: MemoryParams):
        self.params = params
        self.tlb = Tlb(params.tlb)
        self.l1 = Cache(params.l1)
        self.l2 = Cache(params.l2)
        if params.l1.line_bytes != params.l2.line_bytes:
            raise ValueError("L1 and L2 must share a line size")
        self._line_bytes = params.l1.line_bytes
        self._line_shift = self.l1.line_shift
        self._page_shift = self.tlb.page_shift
        #: Route bulk ranges through the batched run classifiers.  Set
        #: False to fall back to the per-line reference loop (the oracle
        #: the equivalence tests compare against).
        self.fast_path = True

    # -- single access ----------------------------------------------------

    def access(self, addr: int, size: int = 8, write: bool = False,
               use_tlb: bool = True) -> float:
        """Cost one access of ``size`` bytes at ``addr`` in ns.

        Accesses that straddle a line boundary are charged per line.
        ``use_tlb=False`` models *physically-addressed* traffic — xBGAS
        remote accesses resolve through the requester's OLB, so they
        bypass the target core's TLB entirely (paper section 3.2).
        """
        first = addr >> self._line_shift
        last = (addr + max(size, 1) - 1) >> self._line_shift
        if first == last:
            return self._access_line(first, write, use_tlb)
        if self.fast_path:
            return self._run_cost(first, last - first + 1, write, use_tlb,
                                  stream=False)
        ns = 0.0
        for line in range(first, last + 1):
            ns += self._access_line(line, write, use_tlb)
        return ns

    def _access_line(self, line: int, write: bool, use_tlb: bool = True,
                     stream: bool = False) -> float:
        p = self.params
        ns = 0.0
        if use_tlb:
            page = (line << self._line_shift) >> self._page_shift
            if not self.tlb.access(page):
                ns += p.tlb.walk_ns
        if self.l1.access(line, write) is CacheLevelResult.HIT:
            return ns + p.l1.hit_ns
        ns += p.l1.hit_ns  # L1 lookup still costs its hit time
        if self.l2.access(line, write) is CacheLevelResult.HIT:
            return ns + p.l2.hit_ns
        # Sequential misses pipeline in DRAM (row-buffer hits + MLP);
        # isolated random misses pay the full access latency.
        return ns + p.l2.hit_ns + (p.dram_stream_ns if stream else p.dram_ns)

    def _run_cost(self, first: int, n_lines: int, write: bool,
                  use_tlb: bool, stream: bool) -> float:
        """Bulk-cost the sequential lines ``[first, first+n_lines)``.

        Produces the same counters and final cache/TLB state as per-line
        :meth:`_access_line` calls in ascending order.  The ns total
        regroups the identical per-line terms by count
        (``count × latency`` per level); every default latency parameter
        is an exact dyadic float and run totals stay far below 2^53, so
        the regrouped sum is bit-identical to the left-to-right one.
        """
        p = self.params
        l1_hits, l1_misses, missed = self.l1.access_run(
            first, n_lines, write, collect_missed=True
        )
        l2_misses = 0
        if l1_misses:
            if missed is None:
                # Every line missed L1: L2 sees the same contiguous run.
                _, l2_misses, _ = self.l2.access_run(first, n_lines, write)
            else:
                _, l2_misses = self.l2.access_lines(missed, write)
        ns = n_lines * p.l1.hit_ns + l1_misses * p.l2.hit_ns
        if l2_misses:
            ns += l2_misses * (p.dram_stream_ns if stream else p.dram_ns)
        if use_tlb:
            shift = self._page_shift - self._line_shift
            first_page = first >> shift
            n_pages = ((first + n_lines - 1) >> shift) - first_page + 1
            _, tlb_misses = self.tlb.access_run(first_page, n_pages)
            # The per-line reference touches the TLB once per line; the
            # repeat touches within a page are guaranteed hits that leave
            # LRU order unchanged (the page is already most recent).
            self.tlb.hits += n_lines - n_pages
            if tlb_misses:
                ns += tlb_misses * p.tlb.walk_ns
        return ns

    # -- bulk range ---------------------------------------------------------

    def access_range(self, addr: int, nbytes: int, write: bool = False,
                     use_tlb: bool = True) -> float:
        """Cost a sequential range, one lookup per cache line touched.

        For ranges far larger than L2 the model switches to a closed-form
        streaming estimate (every line misses to DRAM) to keep simulation
        time bounded; the answer matches the per-line loop because an LRU
        cache has no reuse within a single sequential sweep of that size.
        """
        if nbytes <= 0:
            return 0.0
        first = addr >> self._line_shift
        last = (addr + nbytes - 1) >> self._line_shift
        n_lines = last - first + 1
        p = self.params
        if n_lines > 4 * self.l2.params.n_lines:
            # Streaming regime: charge pipelined DRAM for every line, then
            # leave the caches holding the tail of the sweep so later
            # reuse behaves.
            per_line = p.l1.hit_ns + p.l2.hit_ns + p.dram_stream_ns
            pages = ((last << self._line_shift) >> self._page_shift) - (
                (first << self._line_shift) >> self._page_shift
            ) + 1
            ns = n_lines * per_line
            if use_tlb:
                ns += pages * p.tlb.walk_ns
            tail_lines = self.l2.params.n_lines
            if self.fast_path:
                # Same state transitions as the per-line tail touch; the
                # returned ns is discarded exactly as the loop's was.
                self._run_cost(last - tail_lines + 1, tail_lines, write,
                               use_tlb, stream=True)
            else:
                for line in range(last - tail_lines + 1, last + 1):
                    self._access_line(line, write, use_tlb, stream=True)
            return ns
        if self.fast_path:
            return self._run_cost(first, n_lines, write, use_tlb, stream=True)
        ns = 0.0
        for line in range(first, last + 1):
            ns += self._access_line(line, write, use_tlb, stream=True)
        return ns

    def access_strided(
        self, addr: int, nelems: int, elem_bytes: int, stride_elems: int,
        write: bool = False, use_tlb: bool = True,
    ) -> float:
        """Cost ``nelems`` accesses of ``elem_bytes`` separated by
        ``stride_elems`` elements (the runtime's strided put/get)."""
        if nelems <= 0:
            return 0.0
        step = elem_bytes * max(stride_elems, 1)
        if step <= self._line_bytes and stride_elems >= 1:
            # Dense or near-dense: equivalent to a sequential sweep.
            span = (nelems - 1) * step + elem_bytes
            return self.access_range(addr, span, write, use_tlb)
        ns = 0.0
        a = addr
        for _ in range(nelems):
            ns += self.access(a, elem_bytes, write, use_tlb)
            a += step
        return ns

    # -- statistics -----------------------------------------------------------

    def stat_tuple(self) -> tuple[int, int, int, int, int, int]:
        """(l1_hits, l1_misses, l2_hits, l2_misses, tlb_hits, tlb_misses)."""
        return (
            self.l1.hits,
            self.l1.misses,
            self.l2.hits,
            self.l2.misses,
            self.tlb.hits,
            self.tlb.misses,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryHierarchy(l1={self.l1!r}, l2={self.l2!r}, tlb={self.tlb!r})"
