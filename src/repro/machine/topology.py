"""Interconnect topologies.

The binomial-tree collectives make no topology assumption (paper section
4.2) — they must work on a torus as well as a hypercube.  The topology
module supplies hop counts between nodes so the network model can scale
wire latency with distance, and the ablation benches can compare
collective performance across topologies.

Graphs are built with :mod:`networkx`; hop counts are precomputed with a
BFS per node (all edges have unit weight).
"""

from __future__ import annotations

import math
from functools import lru_cache

import networkx as nx

from ..errors import NetworkError

__all__ = ["Topology", "build_topology", "TOPOLOGY_NAMES"]

TOPOLOGY_NAMES = ("fully-connected", "ring", "torus", "hypercube", "star")


class Topology:
    """A node interconnect graph with precomputed hop counts."""

    def __init__(self, name: str, graph: nx.Graph):
        if graph.number_of_nodes() == 0:
            raise NetworkError("topology needs at least one node")
        if graph.number_of_nodes() > 1 and not nx.is_connected(graph):
            raise NetworkError(f"{name} topology is not connected")
        self.name = name
        self.graph = graph
        self.n_nodes = graph.number_of_nodes()
        self._hops: list[list[int]] = [
            [0] * self.n_nodes for _ in range(self.n_nodes)
        ]
        for src, dists in nx.all_pairs_shortest_path_length(graph):
            for dst, d in dists.items():
                self._hops[src][dst] = d
        self.diameter = max(
            (d for row in self._hops for d in row), default=0
        )

    def hops(self, src: int, dst: int) -> int:
        """Shortest-path hop count between nodes ``src`` and ``dst``."""
        try:
            return self._hops[src][dst]
        except IndexError:
            raise NetworkError(
                f"node out of range: {src}->{dst} (n_nodes={self.n_nodes})"
            ) from None

    def degree(self, node: int) -> int:
        return self.graph.degree[node]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology({self.name!r}, n={self.n_nodes}, "
            f"diameter={self.diameter})"
        )


def _torus_dims(n: int) -> tuple[int, int]:
    """Pick the most square 2-D factorisation of ``n``."""
    best = (1, n)
    for a in range(1, int(math.isqrt(n)) + 1):
        if n % a == 0:
            best = (a, n // a)
    return best


@lru_cache(maxsize=64)
def build_topology(name: str, n_nodes: int) -> Topology:
    """Construct a named topology over ``n_nodes`` nodes.

    Supported names: ``fully-connected``, ``ring``, ``torus`` (2-D, most
    square factorisation), ``hypercube`` (requires a power-of-two node
    count) and ``star``.

    Results are memoized: a topology (graph + hop matrix) is logically
    immutable and pure in its arguments, and the all-pairs BFS dominates
    machine-construction time for sweeps that build many machines.
    """
    if n_nodes <= 0:
        raise NetworkError("n_nodes must be positive")
    if name == "fully-connected":
        g = nx.complete_graph(n_nodes)
    elif name == "ring":
        g = nx.cycle_graph(n_nodes) if n_nodes > 2 else nx.path_graph(n_nodes)
    elif name == "torus":
        a, b = _torus_dims(n_nodes)
        if min(a, b) == 1:
            g = nx.cycle_graph(n_nodes) if n_nodes > 2 else nx.path_graph(n_nodes)
        else:
            grid = nx.grid_2d_graph(a, b, periodic=True)
            g = nx.convert_node_labels_to_integers(grid, ordering="sorted")
    elif name == "hypercube":
        dim = n_nodes.bit_length() - 1
        if (1 << dim) != n_nodes:
            raise NetworkError(
                f"hypercube needs a power-of-two node count, got {n_nodes}"
            )
        g = nx.hypercube_graph(dim) if dim > 0 else nx.complete_graph(1)
        g = nx.convert_node_labels_to_integers(g, ordering="sorted")
    elif name == "star":
        g = nx.star_graph(n_nodes - 1) if n_nodes > 1 else nx.complete_graph(1)
    else:
        raise NetworkError(
            f"unknown topology {name!r}; expected one of {TOPOLOGY_NAMES}"
        )
    return Topology(name, g)
