"""Set-associative, write-back, write-allocate cache with LRU replacement.

Geometry comes from :class:`repro.params.CacheParams`; the paper's cores
use 8-way L1 (16 KB) and L2 (8 MB) caches with 64-byte lines.

The model tracks tags only — data lives in the functional
:class:`repro.isa.memory.Memory`.  Sets are allocated lazily (a dict of
per-set LRU lists) so an 8 MB L2 costs nothing until touched.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..params import CacheParams

__all__ = ["CacheLevelResult", "Cache"]


class CacheLevelResult(enum.Enum):
    """Outcome of one cache lookup."""

    HIT = "hit"
    MISS = "miss"


@dataclass
class _Line:
    tag: int
    dirty: bool


class Cache:
    """One cache level.

    Lookups operate on *line addresses* (byte address >> line shift); the
    :class:`~repro.machine.memsys.MemoryHierarchy` splits byte ranges into
    lines before consulting the cache.
    """

    def __init__(self, params: CacheParams):
        self.params = params
        self.line_shift = params.line_bytes.bit_length() - 1
        if (1 << self.line_shift) != params.line_bytes:
            raise ValueError("cache line size must be a power of two")
        self.n_sets = params.n_sets
        self.ways = params.ways
        self._sets: dict[int, list[_Line]] = {}
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def line_of(self, addr: int) -> int:
        """Line address containing byte address ``addr``."""
        return addr >> self.line_shift

    def access(self, line: int, write: bool) -> CacheLevelResult:
        """Look up ``line``; allocate it on miss (write-allocate).

        Returns HIT or MISS.  A dirty eviction increments ``writebacks``
        (charged by the hierarchy as an extra memory-side transfer).
        """
        set_idx = line % self.n_sets
        tag = line // self.n_sets
        lru = self._sets.get(set_idx)
        if lru is None:
            lru = []
            self._sets[set_idx] = lru
        for i, entry in enumerate(lru):
            if entry.tag == tag:
                self.hits += 1
                if write:
                    entry.dirty = True
                if i != 0:
                    lru.insert(0, lru.pop(i))
                return CacheLevelResult.HIT
        # Miss: allocate, evicting the LRU way if the set is full.
        self.misses += 1
        if len(lru) >= self.ways:
            victim = lru.pop()
            if victim.dirty:
                self.writebacks += 1
        lru.insert(0, _Line(tag=tag, dirty=write))
        return CacheLevelResult.MISS

    def probe(self, line: int) -> bool:
        """Non-destructive presence check (no LRU update, no stats)."""
        set_idx = line % self.n_sets
        tag = line // self.n_sets
        lru = self._sets.get(set_idx)
        return lru is not None and any(e.tag == tag for e in lru)

    def invalidate_all(self) -> int:
        """Drop every line; returns how many dirty lines were discarded."""
        dirty = sum(
            1 for lru in self._sets.values() for e in lru if e.dirty
        )
        self._sets.clear()
        return dirty

    @property
    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(lru) for lru in self._sets.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        p = self.params
        return (
            f"Cache({p.size_bytes >> 10} KiB, {p.ways}-way, "
            f"{p.line_bytes} B lines, hits={self.hits}, misses={self.misses})"
        )
