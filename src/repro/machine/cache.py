"""Set-associative, write-back, write-allocate cache with LRU replacement.

Geometry comes from :class:`repro.params.CacheParams`; the paper's cores
use 8-way L1 (16 KB) and L2 (8 MB) caches with 64-byte lines.

The model tracks tags only — data lives in the functional
:class:`repro.isa.memory.Memory`.  Sets are allocated lazily (a dict of
per-set LRU lists) so an 8 MB L2 costs nothing until touched.  A line
entry is a plain two-element list ``[tag, dirty]`` — the batch paths
allocate entries in bulk, and a list literal is several times cheaper
to construct than any object with named fields.

Two lookup granularities:

* :meth:`Cache.access` — one line, the reference model (and the GUPs
  hot path).
* :meth:`Cache.access_run` / :meth:`Cache.access_lines` — a batch of
  distinct ascending lines classified set by set.  Within one batch no
  line repeats, so per set the accessed tags are strictly increasing:
  the outcome decomposes into pure-miss *spans* (no currently-resident
  tag inside them, filled with one bulk LRU splice) separated by at
  most ``ways`` individual hits.

Both granularities sit on a per-set MRU mirror: packed
``(tag << 1) | dirty`` codes in an ``array('q')`` (zero-copy viewable
by numpy), -1 for an empty set.  The mirror serves two purposes:

* A run whose sets are each touched once is classified with one
  vectorized probe when every line is an MRU hit or a cold miss.
* A set holding exactly **one** line can live in the mirror alone —
  no dict entry, no list.  Cold sequential fills (the dominant case
  for a fresh machine) then cost one vectorized scatter instead of
  thousands of Python list allocations.  The LRU list is materialized
  from the mirror code the first time a second tag maps to the set.

Invariant: ``_mru[s] == -1`` iff set ``s`` is empty; if ``s`` is in
``_sets`` the (non-empty) list is authoritative and ``_mru[s]`` mirrors
its MRU entry; otherwise a non-negative code *is* the set's single
line.  All paths produce bit-identical hit/miss/writeback counters and
an identical effective LRU state to the per-line reference.
"""

from __future__ import annotations

import enum
from array import array
from bisect import bisect_left

import numpy as np

from ..params import CacheParams

__all__ = ["CacheLevelResult", "Cache"]


class CacheLevelResult(enum.Enum):
    """Outcome of one cache lookup."""

    HIT = "hit"
    MISS = "miss"


class Cache:
    """One cache level.

    Lookups operate on *line addresses* (byte address >> line shift); the
    :class:`~repro.machine.memsys.MemoryHierarchy` splits byte ranges into
    lines before consulting the cache.
    """

    def __init__(self, params: CacheParams):
        self.params = params
        self.line_shift = params.line_bytes.bit_length() - 1
        if (1 << self.line_shift) != params.line_bytes:
            raise ValueError("cache line size must be a power of two")
        self.n_sets = params.n_sets
        self.ways = params.ways
        #: set index -> LRU-ordered entries, each a ``[tag, dirty]`` list.
        #: Single-line sets are elided — see the module docstring.
        self._sets: dict[int, list[list]] = {}
        self._mru = array("q", [-1]) * params.n_sets
        #: Zero-copy int64 view of the mirror for the vectorized paths.
        self._mru_view = np.frombuffer(self._mru, dtype=np.int64)
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def line_of(self, addr: int) -> int:
        """Line address containing byte address ``addr``."""
        return addr >> self.line_shift

    def access(self, line: int, write: bool) -> CacheLevelResult:
        """Look up ``line``; allocate it on miss (write-allocate).

        Returns HIT or MISS.  A dirty eviction increments ``writebacks``
        (charged by the hierarchy as an extra memory-side transfer).
        """
        set_idx = line % self.n_sets
        tag = line // self.n_sets
        lru = self._sets.get(set_idx)
        if lru is None:
            code = self._mru[set_idx]
            if code < 0:
                self.misses += 1
                self._mru[set_idx] = (tag << 1) | write
                return CacheLevelResult.MISS
            if (code >> 1) == tag:
                self.hits += 1
                if write:
                    self._mru[set_idx] = code | 1
                return CacheLevelResult.HIT
            # Second tag maps here: materialize the single-line set.
            lru = [[code >> 1, code & 1]]
            self._sets[set_idx] = lru
        else:
            for i, entry in enumerate(lru):
                if entry[0] == tag:
                    self.hits += 1
                    if write:
                        entry[1] = True
                    if i != 0:
                        lru.insert(0, lru.pop(i))
                    self._mru[set_idx] = (tag << 1) | entry[1]
                    return CacheLevelResult.HIT
        # Miss: allocate, evicting the LRU way if the set is full.
        self.misses += 1
        if len(lru) >= self.ways:
            victim = lru.pop()
            if victim[1]:
                self.writebacks += 1
        lru.insert(0, [tag, write])
        self._mru[set_idx] = (tag << 1) | write
        return CacheLevelResult.MISS

    def access_run(
        self,
        first_line: int,
        n_lines: int,
        write: bool,
        collect_missed: bool = False,
    ) -> tuple[int, int, np.ndarray | None]:
        """Look up the sequential lines ``[first_line, first_line+n_lines)``.

        Equivalent to calling :meth:`access` once per line in ascending
        order — same hit/miss/writeback counters, same final LRU state —
        but classified one set at a time.  With ``collect_missed`` the
        third element is the ascending array of line addresses that
        missed (``None`` when every line hit or every line missed can be
        reconstructed trivially by the caller); the hierarchy uses it to
        feed exactly the L1-missing lines to L2.
        """
        if n_lines <= 0:
            return 0, 0, None
        n_sets = self.n_sets
        ways = self.ways
        sets = self._sets
        if 32 <= n_lines <= n_sets:
            # Each set is touched once; one vectorized probe of the MRU
            # mirror classifies the whole run as long as every line is
            # either an MRU hit (a re-sweep: no promotion needed) or a
            # cold miss (first touch: the scatter into the mirror below
            # IS the fill — single-line sets have no list).  Only runs
            # into occupied sets with a different or deeper tag fall
            # through to the scalar walk.
            lines = np.arange(first_line, first_line + n_lines, dtype=np.int64)
            s_arr = lines % n_sets
            t_arr = lines // n_sets
            view = self._mru_view
            codes = view[s_arr]
            hit_mru = (codes >> 1) == t_arr
            cold = codes == -1
            n_hit = int(hit_mru.sum())
            n_cold = int(cold.sum())
            if n_hit + n_cold == n_lines:
                self.hits += n_hit
                self.misses += n_cold
                if n_cold:
                    view[s_arr[cold]] = (t_arr[cold] << 1) | write
                if write and n_hit:
                    clean = hit_mru & ((codes & 1) == 0)
                    if clean.any():
                        view[s_arr[clean]] |= 1
                        for s in s_arr[clean].tolist():
                            lru = sets.get(s)
                            if lru is not None:
                                lru[0][1] = True
                missed = None
                if collect_missed and n_cold and n_hit:
                    missed = lines[cold]
                return n_hit, n_cold, missed
        hits = 0
        misses = 0
        wb = 0
        spans: list[tuple[int, int, int]] | None = [] if collect_missed else None
        append_span = spans.append if spans is not None else None
        if n_lines <= n_sets:
            # Every set is touched exactly once: walk the sets with an
            # incremental index (no division per line) and short-circuit
            # the three dominant outcomes straight off the mirror — an
            # empty set (the mirror store is the whole fill), a
            # single-line hit and an MRU hit.  Lines are visited
            # ascending, so misses collect into a flat pre-sorted list.
            missed_lines: list[int] | None = [] if collect_missed else None
            add_missed = missed_lines.append if missed_lines is not None else None
            mru = self._mru
            s = first_line % n_sets
            t = first_line // n_sets
            for line in range(first_line, first_line + n_lines):
                lru = sets.get(s)
                if lru is None:
                    code = mru[s]
                    if code < 0:
                        misses += 1
                        mru[s] = (t << 1) | write
                        if add_missed is not None:
                            add_missed(line)
                        lru = False
                    elif (code >> 1) == t:
                        hits += 1
                        if write:
                            mru[s] = code | 1
                        lru = False
                    else:
                        lru = [[code >> 1, code & 1]]
                        sets[s] = lru
                if lru:
                    e0 = lru[0]
                    if e0[0] == t:
                        hits += 1
                        if write and not e0[1]:
                            e0[1] = True
                            mru[s] = (t << 1) | 1
                    else:
                        for i in range(1, len(lru)):
                            entry = lru[i]
                            if entry[0] == t:
                                hits += 1
                                if write:
                                    entry[1] = True
                                lru.insert(0, lru.pop(i))
                                mru[s] = (t << 1) | entry[1]
                                break
                        else:
                            misses += 1
                            if len(lru) >= ways:
                                victim = lru.pop()
                                if victim[1]:
                                    wb += 1
                            lru.insert(0, [t, write])
                            mru[s] = (t << 1) | write
                            if add_missed is not None:
                                add_missed(line)
                s += 1
                if s == n_sets:
                    s = 0
                    t += 1
            self.hits += hits
            self.misses += misses
            self.writebacks += wb
            missed = None
            if missed_lines and hits:
                missed = np.array(missed_lines, dtype=np.int64)
            return hits, misses, missed
        last_line = first_line + n_lines - 1
        mru = self._mru
        if not sets and n_sets >= 64:
            # (Below 64 sets the numpy setup costs more than the plain
            # per-off loop it replaces.)
            view = self._mru_view
            if not bool((view >= 0).any()):
                # Whole cache cold: every line misses and the final state
                # per set is just the last min(cnt, ways) of its segment
                # tags, MRU-descending.  Vectorize the segment math and
                # only materialize the lists.
                offs = np.arange(n_sets, dtype=np.int64)
                line0 = first_line + offs
                s_arr = line0 % n_sets
                t_lo_arr = line0 // n_sets
                cnt_arr = (last_line - line0) // n_sets + 1
                t_hi_arr = t_lo_arr + cnt_arr - 1
                keep_arr = np.minimum(cnt_arr, ways)
                self.misses += n_lines
                if write:
                    self.writebacks += int((cnt_arr - keep_arr).sum())
                view[s_arr] = (t_hi_arr << 1) | write
                for s, th, kp in zip(s_arr.tolist(), t_hi_arr.tolist(),
                                     keep_arr.tolist()):
                    if kp > 1:
                        sets[s] = [[t, write] for t in range(th, th - kp, -1)]
                return 0, n_lines, None
        for off in range(min(n_sets, n_lines)):
            line0 = first_line + off
            set_idx = line0 % n_sets
            t_lo = line0 // n_sets
            cnt = (last_line - line0) // n_sets + 1
            lru = sets.get(set_idx)
            if lru is None:
                code = mru[set_idx]
                if code < 0:
                    # Cold set: the whole segment misses.  A single line
                    # stays mirror-only; a longer segment materializes.
                    misses += cnt
                    t_hi = t_lo + cnt - 1
                    if cnt == 1:
                        mru[set_idx] = (t_lo << 1) | write
                    else:
                        keep = cnt if cnt < ways else ways
                        if write and cnt > keep:
                            wb += cnt - keep
                        sets[set_idx] = [
                            [t, write] for t in range(t_hi, t_hi - keep, -1)
                        ]
                        mru[set_idx] = (t_hi << 1) | write
                    if append_span is not None:
                        append_span((t_lo, cnt, set_idx))
                    continue
                lru = [[code >> 1, code & 1]]
                sets[set_idx] = lru
            # A re-sweep of a previously filled segment finds its tags as
            # the top cnt entries in exactly the consecutive-descending
            # order the ascending hits would restore — all hit, no
            # reorder.
            t_hi = t_lo + cnt - 1
            if cnt > 1 and len(lru) >= cnt and lru[0][0] == t_hi:
                for i in range(1, cnt):
                    if lru[i][0] != t_hi - i:
                        break
                else:
                    hits += cnt
                    if write:
                        for i in range(cnt):
                            lru[i][1] = True
                        mru[set_idx] = (t_hi << 1) | 1
                    else:
                        mru[set_idx] = (t_hi << 1) | lru[0][1]
                    continue
            # The single-tag segment is inlined: scalar hit-or-miss.
            if cnt == 1:
                for i, entry in enumerate(lru):
                    if entry[0] == t_lo:
                        hits += 1
                        if write:
                            entry[1] = True
                        if i:
                            lru.insert(0, lru.pop(i))
                        mru[set_idx] = (t_lo << 1) | entry[1]
                        break
                else:
                    misses += 1
                    if len(lru) >= ways:
                        victim = lru.pop()
                        if victim[1]:
                            wb += 1
                    lru.insert(0, [t_lo, write])
                    mru[set_idx] = (t_lo << 1) | write
                    if append_span is not None:
                        append_span((t_lo, 1, set_idx))
                continue
            h, m = self._run_set(lru, t_lo, t_lo + cnt - 1, write, set_idx,
                                 spans)
            hits += h
            misses += m
            top = lru[0]
            mru[set_idx] = (top[0] << 1) | top[1]
        self.hits += hits
        self.misses += misses
        self.writebacks += wb
        missed = None
        if collect_missed and spans and hits:
            parts = [
                np.arange(t0, t0 + cnt, dtype=np.int64) * n_sets + s
                for (t0, cnt, s) in spans
            ]
            missed = np.sort(np.concatenate(parts))
        return hits, misses, missed

    def _run_set(
        self,
        lru: list[list],
        t_lo: int,
        t_hi: int,
        write: bool,
        set_idx: int,
        spans: list[tuple[int, int, int]] | None,
    ) -> tuple[int, int]:
        """Access the consecutive tags ``[t_lo, t_hi]`` of one set, ascending."""
        cnt = t_hi - t_lo + 1
        # One scan classifies the set: no resident tag in range is a
        # pure-miss span; every tag resident collapses the cnt ascending
        # promotions to one splice (promoted entries MRU-descending, the
        # rest in their old order).  Only the mixed case needs the
        # segment loop below.
        by_tag: dict[int, list] = {}
        rest: list[list] = []
        for entry in lru:
            if t_lo <= entry[0] <= t_hi:
                by_tag[entry[0]] = entry
            else:
                rest.append(entry)
        if not by_tag:
            self._fill_span(lru, t_lo, t_hi, write)
            if spans is not None:
                spans.append((t_lo, cnt, set_idx))
            return 0, cnt
        if len(by_tag) == cnt:
            promoted = [by_tag[t] for t in range(t_hi, t_lo - 1, -1)]
            if write:
                for entry in promoted:
                    entry[1] = True
            lru[:] = promoted + rest
            return cnt, 0
        hits = 0
        misses = 0
        t = t_lo
        while t <= t_hi:
            # Smallest resident tag inside the remaining range.  If it is
            # not t itself, every tag before it misses as one span; the
            # span's evictions may remove the resident tag, so re-probe
            # rather than assuming a hit at r.
            r = -1
            hit_i = -1
            for i, entry in enumerate(lru):
                et = entry[0]
                if t <= et <= t_hi and (r < 0 or et < r):
                    r = et
                    hit_i = i
            if r != t:
                end = t_hi if r < 0 else r - 1
                cnt = end - t + 1
                misses += cnt
                self._fill_span(lru, t, end, write)
                if spans is not None:
                    spans.append((t, cnt, set_idx))
                t = end + 1
                continue
            hits += 1
            entry = lru[hit_i]
            if write:
                entry[1] = True
            if hit_i:
                lru.insert(0, lru.pop(hit_i))
            t += 1
        return hits, misses

    def _fill_span(self, lru: list[list], t_first: int, t_last: int, write: bool) -> None:
        """Allocate the all-missing tags ``[t_first, t_last]`` in one splice.

        Matches the per-line sequence exactly: with initial occupancy o,
        w ways and cnt insertions, o + cnt - w entries are evicted — the
        LRU tail of the initial entries first (dirty ones write back),
        then the oldest of the newly inserted entries (which are dirty
        iff ``write``).  The survivors are the last min(cnt, w) inserted
        tags, MRU-ordered descending, ahead of any surviving initial
        entries in their old order.
        """
        cnt = t_last - t_first + 1
        occ = len(lru)
        ways = self.ways
        n_ev = occ + cnt - ways
        if n_ev > 0:
            ev_init = n_ev if n_ev < occ else occ
            if ev_init:
                for entry in lru[occ - ev_init :]:
                    if entry[1]:
                        self.writebacks += 1
                del lru[occ - ev_init :]
            if write and n_ev > ev_init:
                self.writebacks += n_ev - ev_init
        keep = cnt if cnt < ways else ways
        lru[:0] = [[t, write] for t in range(t_last, t_last - keep, -1)]

    def access_lines(self, lines: np.ndarray, write: bool) -> tuple[int, int]:
        """Look up an ascending array of distinct line addresses.

        Equivalent to per-line :meth:`access` calls in array order.  Used
        for the (possibly non-contiguous) subset of a run that missed L1
        and must be charged to L2.
        """
        total = len(lines)
        if total == 0:
            return 0, 0
        n_sets = self.n_sets
        sets = self._sets
        hits = 0
        misses = 0
        if n_sets == 1:
            groups: list[tuple[int, np.ndarray]] = [(0, lines)]
        else:
            set_idx = lines % n_sets
            order = np.argsort(set_idx, kind="stable")
            ss = set_idx[order]
            ts = (lines // n_sets)[order]
            starts = np.flatnonzero(np.r_[True, ss[1:] != ss[:-1]])
            bounds = np.r_[starts, total]
            groups = [
                (int(ss[bounds[k]]), ts[bounds[k] : bounds[k + 1]])
                for k in range(len(starts))
            ]
        mru = self._mru
        for s, tags in groups:
            lru = sets.get(s)
            if lru is None:
                code = mru[s]
                lru = [] if code < 0 else [[code >> 1, code & 1]]
                sets[s] = lru
            h, m = self._run_set_list(lru, tags.tolist(), write)
            hits += h
            misses += m
            top = lru[0]
            mru[s] = (top[0] << 1) | top[1]
        self.hits += hits
        self.misses += misses
        return hits, misses

    def _run_set_list(
        self, lru: list[list], tags: list[int], write: bool
    ) -> tuple[int, int]:
        """Access an ascending list of distinct tags of one set, in order."""
        total = len(tags)
        if total <= len(lru):
            # Same warm-set collapse as :meth:`_run_set`, over an
            # explicit tag list.
            tagset = set(tags)
            by_tag: dict[int, list] = {}
            rest: list[list] = []
            for entry in lru:
                if entry[0] in tagset:
                    by_tag[entry[0]] = entry
                else:
                    rest.append(entry)
            if len(by_tag) == total:
                promoted = [by_tag[t] for t in reversed(tags)]
                if write:
                    for entry in promoted:
                        entry[1] = True
                lru[:] = promoted + rest
                return total, 0
        hits = 0
        misses = 0
        idx = 0
        while idx < total:
            # Earliest remaining access whose tag is currently resident.
            j = -1
            hit_i = -1
            for i, entry in enumerate(lru):
                k = bisect_left(tags, entry[0], idx)
                if k < total and tags[k] == entry[0] and (j < 0 or k < j):
                    j = k
                    hit_i = i
            if j != idx:
                end = total if j < 0 else j
                span = tags[idx:end]
                misses += len(span)
                self._fill_list(lru, span, write)
                idx = end
                continue
            hits += 1
            entry = lru[hit_i]
            if write:
                entry[1] = True
            if hit_i:
                lru.insert(0, lru.pop(hit_i))
            idx += 1
        return hits, misses

    def _fill_list(self, lru: list[list], span: list[int], write: bool) -> None:
        """:meth:`_fill_span` for an explicit (ascending) tag list."""
        cnt = len(span)
        occ = len(lru)
        ways = self.ways
        n_ev = occ + cnt - ways
        if n_ev > 0:
            ev_init = n_ev if n_ev < occ else occ
            if ev_init:
                for entry in lru[occ - ev_init :]:
                    if entry[1]:
                        self.writebacks += 1
                del lru[occ - ev_init :]
            if write and n_ev > ev_init:
                self.writebacks += n_ev - ev_init
        keep = cnt if cnt < ways else ways
        lru[:0] = [[t, write] for t in reversed(span[cnt - keep :])]

    def probe(self, line: int) -> bool:
        """Non-destructive presence check (no LRU update, no stats)."""
        set_idx = line % self.n_sets
        tag = line // self.n_sets
        lru = self._sets.get(set_idx)
        if lru is None:
            code = self._mru[set_idx]
            return code >= 0 and (code >> 1) == tag
        return any(e[0] == tag for e in lru)

    def invalidate_all(self) -> int:
        """Drop every line; returns how many dirty lines were discarded."""
        dirty = sum(
            1 for lru in self._sets.values() for e in lru if e[1]
        )
        view = self._mru_view
        solo_dirty = (view >= 0) & ((view & 1) == 1)
        if self._sets:
            materialized = np.fromiter(
                self._sets.keys(), dtype=np.int64, count=len(self._sets)
            )
            solo_dirty[materialized] = False
        dirty += int(solo_dirty.sum())
        self._sets.clear()
        self._mru = array("q", [-1]) * self.n_sets
        self._mru_view = np.frombuffer(self._mru, dtype=np.int64)
        return dirty

    @property
    def occupancy(self) -> int:
        """Number of resident lines."""
        view = self._mru_view
        non_empty = int((view >= 0).sum())
        return (
            sum(len(lru) for lru in self._sets.values())
            + non_empty
            - len(self._sets)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        p = self.params
        return (
            f"Cache({p.size_bytes >> 10} KiB, {p.ways}-way, "
            f"{p.line_bytes} B lines, hits={self.hits}, misses={self.misses})"
        )
