"""A node: one or more cores sharing a position on the interconnect.

In the paper's environment each Spike instance acts as a single-core
node connected over MPICH, so the default configuration maps one PE per
node; ``cores_per_node > 1`` models multicore nodes with sequential rank
assignment (the layout assumption behind recursive halving, section 4.2).
Each PE keeps a *private* memory hierarchy — the paper's per-core L1/L2.
"""

from __future__ import annotations

from ..params import MachineConfig
from .memsys import MemoryHierarchy

__all__ = ["Node"]


class Node:
    """Container for the per-node hardware owned by a set of PEs."""

    def __init__(self, node_id: int, config: MachineConfig):
        self.node_id = node_id
        self.config = config
        self.pe_ranks = config.node_members(node_id)
        #: One private memory hierarchy per hosted PE (paper: per-core
        #: 256-entry TLB, 16 KB L1, 8 MB L2).
        self.hierarchies = {r: MemoryHierarchy(config.mem) for r in self.pe_ranks}

    def hierarchy_of(self, pe: int) -> MemoryHierarchy:
        return self.hierarchies[pe]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node(id={self.node_id}, pes={list(self.pe_ranks)})"
