"""Deterministic, seeded fault plans.

A :class:`FaultPlan` is a pure description of the fault environment: a
seed plus an ordered tuple of :class:`FaultRule` entries.  Nothing here
touches wall-clock time or global RNG state — every probabilistic draw
is a keyed hash of ``(seed, rule_index, message_index)`` (a splitmix64
finaliser), so

* the same seed and rules produce a byte-identical fault schedule on
  every run, regardless of host, Python hash seed or retry count; and
* a retransmitted message gets a *fresh* deterministic draw (it has a
  new message index), so retries are not doomed to repeat their fate.

Message-level kinds (sampled per remote message at the transport
boundary):

``drop``
    The payload never lands (with the retry layer enabled the sender
    times out and retransmits).
``delay``
    Delivery is late by ``delay_ns`` (the barrier quiescence horizon
    still waits for it, so collectives stay correct without retry).
``corrupt``
    The payload lands with a deterministic single-bit flip (retry
    treats a failed checksum like a drop).
``degrade``
    The link runs at ``1/factor`` of its per-byte bandwidth for this
    message — a slow link, not a lossy one.

PE-level kinds (scheduled against simulated time, fired at the victim's
next runtime call):

``stall``
    The PE freezes for ``duration_ns`` at its first runtime call at or
    after ``at_ns`` (a GC pause / OS jitter model).
``crash``
    The PE dies at its first runtime call at or after ``at_ns``; it
    raises :class:`~repro.errors.PECrashedError` and never returns a
    result.  Barriers containing it release survivors in degraded mode.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FaultPlanError

__all__ = [
    "MESSAGE_KINDS",
    "PE_KINDS",
    "CRASHED",
    "FaultRule",
    "FiredFault",
    "FaultPlan",
    "RetryConfig",
    "keyed_u01",
    "keyed_salt",
    "drop",
    "delay",
    "corrupt",
    "degrade",
    "stall",
    "crash",
]

#: Kinds sampled per remote message.
MESSAGE_KINDS = ("drop", "delay", "corrupt", "degrade")
#: Kinds scheduled against a PE's simulated clock.
PE_KINDS = ("stall", "crash")

_MASK64 = (1 << 64) - 1


class _Crashed:
    """Sentinel result for a PE that died of an injected crash."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "CRASHED"


#: What ``Machine.run`` returns for a crashed PE's slot.
CRASHED = _Crashed()


def keyed_u01(seed: int, rule_index: int, msg_index: int) -> float:
    """Uniform [0, 1) draw keyed on (seed, rule, message) — splitmix64."""
    x = (seed * 0x9E3779B97F4A7C15
         + (rule_index + 1) * 0xBF58476D1CE4E5B9
         + (msg_index + 1) * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x / 2.0 ** 64


def keyed_salt(seed: int, rule_index: int, msg_index: int) -> int:
    """A 64-bit deterministic salt (bit/element choice for corruption)."""
    x = (seed * 0xD1B54A32D192ED03
         + (rule_index + 1) * 0x8CB92BA72F3D8DD7
         + (msg_index + 1) * 0x9E3779B97F4A7C15) & _MASK64
    x ^= x >> 32
    x = (x * 0xD6E8FEB86659FD93) & _MASK64
    x ^= x >> 32
    return x


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault source.  Use the module-level constructors
    (:func:`drop`, :func:`crash`, ...) rather than building directly."""

    kind: str
    #: Per-message firing probability (message kinds only).
    probability: float = 1.0
    #: Restrict to messages from/to a world rank (None = any).
    src: int | None = None
    dst: int | None = None
    #: Message kinds: active window in simulated ns.
    after_ns: float = 0.0
    until_ns: float = float("inf")
    #: Maximum number of firings (0 = unlimited).
    count: int = 0
    #: ``delay``: extra delivery latency.
    delay_ns: float = 0.0
    #: ``degrade``: per-byte cost multiplier (>= 1).
    factor: float = 1.0
    #: PE kinds: the victim rank and trigger time.
    pe: int | None = None
    at_ns: float = 0.0
    #: ``stall``: how long the victim freezes.
    duration_ns: float = 0.0

    def matches(self, t_now: float, src: int, dst: int) -> bool:
        """Static filters for a message fault (probability aside)."""
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        return self.after_ns <= t_now < self.until_ns


@dataclass(frozen=True)
class FiredFault:
    """One fault firing, as handed to the network/transfer layer."""

    kind: str
    rule_index: int
    #: Global message sequence number the fault fired on.
    seq: int
    delay_ns: float = 0.0
    factor: float = 1.0
    #: Deterministic salt for payload corruption.
    salt: int = 0


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the ordered fault rules — immutable and reusable."""

    seed: int = 0x5EED
    rules: tuple[FaultRule, ...] = ()
    #: Extra barrier cost survivors pay when the failure detector trips
    #: (the timeout a real dissemination barrier would wait out).
    detector_timeout_ns: float = 50_000.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        for i, r in enumerate(self.rules):
            if r.kind not in MESSAGE_KINDS + PE_KINDS:
                raise FaultPlanError(f"rule {i}: unknown fault kind {r.kind!r}")
            if not 0.0 <= r.probability <= 1.0:
                raise FaultPlanError(
                    f"rule {i}: probability {r.probability} outside [0, 1]"
                )
            if r.kind in PE_KINDS and r.pe is None:
                raise FaultPlanError(f"rule {i}: {r.kind} needs a victim pe")
            if r.kind == "delay" and r.delay_ns < 0:
                raise FaultPlanError(f"rule {i}: negative delay_ns")
            if r.kind == "degrade" and r.factor < 1.0:
                raise FaultPlanError(f"rule {i}: degrade factor must be >= 1")
            if r.kind == "stall" and r.duration_ns < 0:
                raise FaultPlanError(f"rule {i}: negative stall duration")
        if self.detector_timeout_ns < 0:
            raise FaultPlanError("detector_timeout_ns must be >= 0")

    # -- sampling ---------------------------------------------------------

    def sample_message(
        self,
        msg_index: int,
        t_now: float,
        src: int,
        dst: int,
        fired_counts: list[int],
    ) -> FiredFault | None:
        """The fault (if any) striking message ``msg_index``.

        Rules are consulted in order; the first hit wins.  Pure with
        respect to everything but ``fired_counts`` (which the injector
        owns), so identical call sequences give identical schedules.
        """
        for i, rule in enumerate(self.rules):
            if rule.kind not in MESSAGE_KINDS:
                continue
            if rule.count and fired_counts[i] >= rule.count:
                continue
            if not rule.matches(t_now, src, dst):
                continue
            if rule.probability < 1.0 and (
                keyed_u01(self.seed, i, msg_index) >= rule.probability
            ):
                continue
            return FiredFault(
                kind=rule.kind,
                rule_index=i,
                seq=msg_index,
                delay_ns=rule.delay_ns,
                factor=rule.factor,
                salt=keyed_salt(self.seed, i, msg_index),
            )
        return None

    def pe_rules(self, kind: str) -> list[tuple[int, FaultRule]]:
        """(rule_index, rule) pairs of one PE-level kind."""
        return [(i, r) for i, r in enumerate(self.rules) if r.kind == kind]


@dataclass(frozen=True)
class RetryConfig:
    """Reliability knobs for remote put/get (sequence-numbered
    ack/retry with timeout and exponential backoff)."""

    #: Retransmissions after the first attempt before giving up.
    max_retries: int = 5
    #: Initial ack timeout the sender waits out on a loss.
    timeout_ns: float = 20_000.0
    #: Timeout multiplier per successive retry (exponential backoff).
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise FaultPlanError("max_retries must be >= 0")
        if self.timeout_ns <= 0:
            raise FaultPlanError("timeout_ns must be positive")
        if self.backoff < 1.0:
            raise FaultPlanError("backoff must be >= 1")


# -- rule constructors ----------------------------------------------------


def drop(probability: float = 1.0, *, src: int | None = None,
         dst: int | None = None, after_ns: float = 0.0,
         until_ns: float = float("inf"), count: int = 0) -> FaultRule:
    """Message loss: the payload never reaches the target."""
    return FaultRule("drop", probability=probability, src=src, dst=dst,
                     after_ns=after_ns, until_ns=until_ns, count=count)


def delay(delay_ns: float, probability: float = 1.0, *,
          src: int | None = None, dst: int | None = None,
          after_ns: float = 0.0, until_ns: float = float("inf"),
          count: int = 0) -> FaultRule:
    """Late delivery by ``delay_ns`` (data still arrives intact)."""
    return FaultRule("delay", probability=probability, src=src, dst=dst,
                     after_ns=after_ns, until_ns=until_ns, count=count,
                     delay_ns=delay_ns)


def corrupt(probability: float = 1.0, *, src: int | None = None,
            dst: int | None = None, after_ns: float = 0.0,
            until_ns: float = float("inf"), count: int = 0) -> FaultRule:
    """Payload corruption: a deterministic single-bit flip on arrival."""
    return FaultRule("corrupt", probability=probability, src=src, dst=dst,
                     after_ns=after_ns, until_ns=until_ns, count=count)


def degrade(factor: float, probability: float = 1.0, *,
            src: int | None = None, dst: int | None = None,
            after_ns: float = 0.0, until_ns: float = float("inf"),
            count: int = 0) -> FaultRule:
    """Link degradation: per-byte cost multiplied by ``factor``."""
    return FaultRule("degrade", probability=probability, src=src, dst=dst,
                     after_ns=after_ns, until_ns=until_ns, count=count,
                     factor=factor)


def stall(pe: int, at_ns: float, duration_ns: float) -> FaultRule:
    """Freeze ``pe`` for ``duration_ns`` at its first runtime call at or
    after ``at_ns``."""
    return FaultRule("stall", pe=pe, at_ns=at_ns, duration_ns=duration_ns)


def crash(pe: int, at_ns: float) -> FaultRule:
    """Kill ``pe`` at its first runtime call at or after ``at_ns``."""
    return FaultRule("crash", pe=pe, at_ns=at_ns)
