"""Degraded-mode collectives: survive PE crashes by rebuilding the tree.

When a barrier's failure detector trips, every surviving participant of
that barrier instance raises :class:`~repro.errors.PeerFailedError`
carrying the *same* dead set.  The wrappers here catch it, shrink the
group, remap the binomial tree's virtual ranks over the survivors
(:func:`~repro.collectives.virtual_rank.remap_root`) and rerun the
collective — all survivors make identical decisions from identical
exception payloads, so no extra agreement protocol is needed.

Two semantics are offered:

* **rebuild** (:func:`resilient_broadcast`, :func:`resilient_reduce`,
  :func:`resilient_allreduce`) — rerun over the survivor group until an
  attempt completes.  For reductions this is the *eventually
  consistent* mode of Iakymchuk et al.: the result folds only the
  survivors' contributions, and the returned
  :class:`ResilientResult.contributors` mask says exactly whose data is
  in it — a partial result with provenance instead of a hang.
* The caller may instead treat any non-empty ``dead`` as fatal by
  checking :attr:`ResilientResult.complete`.

Group agreement relies on one rule: membership decisions derive only
from ``PeerFailedError.dead`` payloads (shared state), never from
asking the injector directly — survivors may observe a crash at
different simulated times, but they always drain through the same
degraded barrier instance and therefore see the same dead set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..collectives.common import resolve_group, validate_root
from ..collectives.virtual_rank import remap_root
from ..errors import PeerFailedError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import XBRTime

__all__ = [
    "ResilientResult",
    "resilient_broadcast",
    "resilient_reduce",
    "resilient_allreduce",
]


@dataclass(frozen=True)
class ResilientResult:
    """Outcome of one resilient collective on this PE."""

    #: How many times the collective restarted after a detected failure.
    restarts: int
    #: World ranks whose contribution is in the result (the mask).
    contributors: tuple[int, ...]
    #: World ranks detected dead during the call.
    dead: tuple[int, ...]
    #: World rank holding the rooted result (None for allreduce).
    root: int | None = None

    @property
    def complete(self) -> bool:
        """True when every original participant contributed."""
        return not self.dead


def _run_attempts(ctx: "XBRTime", members: tuple[int, ...],
                  max_restarts: int, attempt) -> tuple[int, tuple[int, ...]]:
    """Drive ``attempt(live)`` until it completes over a stable group.

    Starts from the full member list (never from a liveness query — see
    module docstring) and shrinks it by each PeerFailedError's dead set.
    """
    live = members
    restarts = 0
    while True:
        try:
            attempt(live)
            return restarts, live
        except PeerFailedError as err:
            survivors = tuple(r for r in live if r not in err.dead)
            if not survivors or ctx.rank not in survivors:
                raise
            live = survivors
            restarts += 1
            if restarts > max_restarts:
                raise


def resilient_broadcast(
    ctx: "XBRTime", dest: int, src: int, nelems: int, stride: int,
    root: int, dtype: np.dtype, *, group: Sequence[int] | None = None,
    max_restarts: int = 8,
) -> ResilientResult:
    """Broadcast that survives PE crashes by re-rooting over survivors.

    If the root dies mid-tree, the survivor with the smallest virtual
    rank (the earliest-reached subtree head) becomes the new root and
    forwards from its ``dest`` — the payload it already received.  If
    the root dies before completing any stage, survivors receive the
    new root's current ``dest`` contents; data the root never sent
    cannot be recovered.
    """
    from ..collectives import broadcast as _b

    members, _ = resolve_group(ctx, group)
    validate_root(root, len(members))
    root_world = members[root]

    def attempt(live: tuple[int, ...]) -> None:
        new_root = remap_root(members, root, live)
        local_src = src if ctx.rank == root_world else dest
        _b.broadcast(ctx, dest, local_src, nelems, stride,
                     live.index(new_root), dtype, group=live)

    restarts, live = _run_attempts(ctx, members, max_restarts, attempt)
    return ResilientResult(
        restarts=restarts,
        contributors=live,
        dead=tuple(r for r in members if r not in live),
        root=remap_root(members, root, live),
    )


def resilient_reduce(
    ctx: "XBRTime", dest: int, src: int, nelems: int, stride: int,
    root: int, op: str, dtype: np.dtype, *,
    group: Sequence[int] | None = None, max_restarts: int = 8,
) -> ResilientResult:
    """Eventually consistent reduction: fold the survivors' values.

    Each attempt restarts from every live PE's untouched ``src``, so a
    partial previous attempt cannot double-count.  The result lands in
    ``dest`` on :attr:`ResilientResult.root`; the contribution mask
    names the ranks whose values are in it.
    """
    from ..collectives import reduce as _r

    members, _ = resolve_group(ctx, group)
    validate_root(root, len(members))

    def attempt(live: tuple[int, ...]) -> None:
        new_root = remap_root(members, root, live)
        _r.reduce(ctx, dest, src, nelems, stride, live.index(new_root),
                  op, dtype, group=live)

    restarts, live = _run_attempts(ctx, members, max_restarts, attempt)
    return ResilientResult(
        restarts=restarts,
        contributors=live,
        dead=tuple(r for r in members if r not in live),
        root=remap_root(members, root, live),
    )


def resilient_allreduce(
    ctx: "XBRTime", dest: int, src: int, nelems: int, stride: int,
    op: str, dtype: np.dtype, *, group: Sequence[int] | None = None,
    max_restarts: int = 8,
) -> ResilientResult:
    """Eventually consistent allreduce over the survivors.

    Every surviving PE ends with the same partial reduction in ``dest``
    plus the contribution mask saying which ranks are folded in.
    """
    from ..collectives.allreduce import allreduce as _ar

    members, _ = resolve_group(ctx, group)

    def attempt(live: tuple[int, ...]) -> None:
        _ar(ctx, dest, src, nelems, stride, op, dtype, group=live)

    restarts, live = _run_attempts(ctx, members, max_restarts, attempt)
    return ResilientResult(
        restarts=restarts,
        contributors=live,
        dead=tuple(r for r in members if r not in live),
        root=None,
    )
