"""Runtime fault injector: the live side of a :class:`FaultPlan`.

One injector per :class:`~repro.runtime.context.Machine`.  It sits at
two choke points:

* the **transport boundary** — :meth:`on_message` is consulted by
  :meth:`Network.send <repro.machine.network.Network.send>` /
  ``Network.fetch`` for every remote message (any ``src != dst`` pair,
  same-node or cross-node), assigning each message a global sequence
  number and sampling the plan against it; and
* the **runtime call boundary** — :meth:`check_pe` runs at every
  ``ctx`` API checkpoint and fires pending PE stalls/crashes once the
  victim's simulated clock reaches the scheduled instant.

Every firing is recorded three ways so faults are observable end to
end: a ``fault`` instant event in the trace (→ Chrome-trace export), a
tag on the PE's innermost open span (→ collective metrics), and an
entry in :attr:`fired` — a plain list of tuples the determinism tests
compare across runs.

The machine consults the injector only through ``is None`` guards, so
a machine built without a plan pays nothing and behaves identically to
one built before this subsystem existed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import PECrashedError
from .plan import FaultPlan, FiredFault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import Machine

__all__ = ["FaultInjector"]


class FaultInjector:
    """Mutable per-run fault state driven by an immutable plan."""

    def __init__(self, machine: "Machine", plan: FaultPlan):
        self.machine = machine
        self.plan = plan
        #: Global remote-message counter (the sequence-number space).
        self._msg_index = 0
        #: Firings per rule (enforces FaultRule.count).
        self._rule_fired = [0] * len(plan.rules)
        #: World ranks that crashed.
        self._dead: set[int] = set()
        #: (seq_or_-1, kind, src_pe, dst_pe_or_-1, time_ns) per firing —
        #: the schedule the determinism tests assert byte-identical.
        self.fired: list[tuple[int, str, int, int, float]] = []
        #: Pending per-PE crash trigger times (earliest rule wins).
        n = machine.config.n_pes
        self._crash_at: list[float | None] = [None] * n
        for _, rule in plan.pe_rules("crash"):
            assert rule.pe is not None
            if 0 <= rule.pe < n:
                cur = self._crash_at[rule.pe]
                if cur is None or rule.at_ns < cur:
                    self._crash_at[rule.pe] = rule.at_ns
        #: Pending per-PE stalls: [(at_ns, duration_ns), ...], unfired.
        self._stalls: list[list[tuple[float, float]]] = [[] for _ in range(n)]
        for _, rule in plan.pe_rules("stall"):
            assert rule.pe is not None
            if 0 <= rule.pe < n:
                self._stalls[rule.pe].append((rule.at_ns, rule.duration_ns))
        for lst in self._stalls:
            lst.sort()

    # -- liveness ---------------------------------------------------------

    @property
    def dead_pes(self) -> frozenset[int]:
        """World ranks that have crashed so far."""
        return frozenset(self._dead)

    def is_dead(self, rank: int) -> bool:
        return rank in self._dead

    @property
    def detector_timeout_ns(self) -> float:
        return self.plan.detector_timeout_ns

    # -- transport boundary ------------------------------------------------

    def on_message(self, t_now: float, src_pe: int, dst_pe: int,
                   nbytes: int) -> FiredFault | None:
        """Sample the plan for one remote message; record any firing."""
        seq = self._msg_index
        self._msg_index += 1
        fault = self.plan.sample_message(seq, t_now, src_pe, dst_pe,
                                         self._rule_fired)
        if fault is None:
            return None
        self._rule_fired[fault.rule_index] += 1
        self._record(fault.kind, src_pe, dst_pe, t_now, {
            "seq": seq, "src": src_pe, "dst": dst_pe, "bytes": nbytes,
            "rule": fault.rule_index,
        }, f"{fault.kind} seq={seq} PE{src_pe}->PE{dst_pe} {nbytes}B")
        return fault

    def note_retry(self, t_now: float, src_pe: int, dst_pe: int,
                   seq: int, attempt: int, timeout_ns: float) -> None:
        """Account one retransmission (trace + stats, not a fault)."""
        st = self.machine.stats
        st.retries += 1
        trace = self.machine.engine.trace
        if trace.enabled:
            trace.record(
                t_now, src_pe, "retry",
                f"seq={seq} attempt={attempt} -> PE{dst_pe}",
                attrs={"seq": seq, "attempt": attempt, "dst": dst_pe,
                       "timeout_ns": timeout_ns},
            )

    # -- payload faults (applied by the transfer engine) -------------------

    @staticmethod
    def corrupt_payload(view: np.ndarray, fault: FiredFault) -> None:
        """Flip one deterministic bit of the delivered payload."""
        flat = view.reshape(-1)
        if flat.size == 0:
            return
        idx = fault.salt % flat.size
        nbits = flat.dtype.itemsize * 8
        bit = (fault.salt >> 20) % nbits
        raw = bytearray(flat[idx].tobytes())
        raw[bit // 8] ^= 1 << (bit % 8)
        flat[idx] = np.frombuffer(bytes(raw), dtype=flat.dtype)[0]

    # -- runtime call boundary ---------------------------------------------

    def check_pe(self, rank: int, clock: float) -> None:
        """Fire any due stall/crash for ``rank``; called at API
        checkpoints.  Raises :class:`PECrashedError` on a crash."""
        stalls = self._stalls[rank]
        while stalls and stalls[0][0] <= clock:
            at_ns, duration = stalls.pop(0)
            pe = self.machine.engine.pes[rank]
            self._record("stall", rank, -1, pe.clock, {
                "duration_ns": duration, "scheduled_ns": at_ns,
            }, f"stall PE{rank} {duration:.0f}ns")
            pe.advance(duration)
            clock = pe.clock
        at = self._crash_at[rank]
        if at is not None and clock >= at and rank not in self._dead:
            self._crash_at[rank] = None
            self._dead.add(rank)
            self._record("crash", rank, -1, clock, {
                "scheduled_ns": at,
            }, f"crash PE{rank}")
            # Release any barrier now only waiting on the dead.
            self.machine.barriers.handle_pe_death(rank)
            raise PECrashedError(
                f"PE {rank} crashed (injected fault) at t={clock:.0f} ns"
            )

    # -- recording ---------------------------------------------------------

    def _record(self, kind: str, src_pe: int, dst_pe: int, t_now: float,
                attrs: dict, detail: str) -> None:
        machine = self.machine
        machine.stats.faults_injected[kind] += 1
        seq = attrs.get("seq", -1)
        self.fired.append((seq, kind, src_pe, dst_pe, t_now))
        trace = machine.engine.trace
        if trace.enabled:
            trace.record(t_now, src_pe, "fault", detail,
                         attrs={"fault": kind, **attrs})
            machine.engine.spans.annotate(src_pe, "faults", kind,
                                          append=True)
