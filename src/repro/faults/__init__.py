"""Fault injection and resilient collectives (``repro.faults``).

The paper assumes a perfectly reliable fabric; this subsystem lets the
reproduction study what its collectives do when the fabric is not:

* :mod:`repro.faults.plan` — deterministic, seeded fault plans
  (message drops/delays/corruption, link degradation, PE stalls and
  crashes) plus the :class:`RetryConfig` reliability knobs;
* :mod:`repro.faults.injector` — the runtime injector hooked into the
  network and transfer layers;
* :mod:`repro.faults.resilient` — degraded-mode collectives that
  rebuild the binomial tree over survivors and return contribution
  masks instead of hanging.

Usage::

    from repro import Machine, MachineConfig
    from repro.faults import FaultPlan, RetryConfig, drop, crash

    plan = FaultPlan(seed=7, rules=(drop(probability=0.05),
                                    crash(pe=3, at_ns=200_000)))
    machine = Machine(MachineConfig(n_pes=8), faults=plan,
                      retry=RetryConfig())
    results = machine.run(main)   # results[3] is faults.CRASHED
"""

from .plan import (
    CRASHED,
    FaultPlan,
    FaultRule,
    FiredFault,
    RetryConfig,
    corrupt,
    crash,
    degrade,
    delay,
    drop,
    stall,
)
from .injector import FaultInjector
from .resilient import (
    ResilientResult,
    resilient_allreduce,
    resilient_broadcast,
    resilient_reduce,
)

__all__ = [
    "CRASHED",
    "FaultPlan",
    "FaultRule",
    "FiredFault",
    "RetryConfig",
    "FaultInjector",
    "ResilientResult",
    "resilient_allreduce",
    "resilient_broadcast",
    "resilient_reduce",
    "drop",
    "delay",
    "corrupt",
    "degrade",
    "stall",
    "crash",
]
