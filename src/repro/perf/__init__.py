"""Wall-clock performance-regression harness for the simulator itself.

Unlike ``repro.bench`` (which measures the *modeled* machine in
simulated nanoseconds), this package measures how fast the simulator
runs on the host: every benchmark executes the same workload twice —
once on the reference implementations (``fast_paths=False``: per-line
memory costing, scheduler-thread bounce) and once on the fast paths
(batched run costing, direct-handoff scheduling) — and reports median
wall-clock seconds for both plus their ratio.  Because both arms run on
the same host in the same process, the speedup is machine-independent
even though the absolute seconds are not.

``python -m repro.perf`` writes ``BENCH_simwall.json``;
``python -m repro.perf --check BENCH_simwall.json`` re-runs a quick
sweep and fails when the fast path regressed (used by the CI perf-smoke
job).
"""

from .bench import (  # noqa: F401
    BENCH_FILENAME,
    CHECK_FLOORS,
    SCHEMA,
    BenchResult,
    bench_bulk_costing,
    bench_collectives_micro,
    bench_engine_switch,
    bench_gups_slice,
    run_all,
)

__all__ = [
    "BENCH_FILENAME",
    "CHECK_FLOORS",
    "SCHEMA",
    "BenchResult",
    "bench_bulk_costing",
    "bench_collectives_micro",
    "bench_engine_switch",
    "bench_gups_slice",
    "run_all",
]
