"""``python -m repro.perf`` — run the simulator wall-clock benchmarks.

Default mode measures full-size workloads and writes
``BENCH_simwall.json`` (the committed baseline).  ``--check BASELINE``
re-runs the same workload sizes as the baseline and fails when the fast
path regressed:

* any benchmark's fast-path ("after") median exceeds ``--max-slowdown``
  times the baseline's after median (generous, to tolerate runner
  noise and hardware differences), or
* a benchmark's measured speedup falls below its floor in
  :data:`repro.perf.CHECK_FLOORS` (host-independent ratios, the
  primary regression signal).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .bench import BENCH_FILENAME, CHECK_FLOORS, run_all


def _print_table(doc: dict) -> None:
    print(f"{'benchmark':<20} {'before s':>10} {'after s':>10} {'speedup':>9}")
    for name, row in doc["benchmarks"].items():
        print(f"{name:<20} {row['before_s']:>10.4f} {row['after_s']:>10.4f} "
              f"{row['speedup']:>8.2f}x")


def _check(doc: dict, baseline: dict, max_slowdown: float) -> list[str]:
    """Compare a fresh run against the committed baseline."""
    problems: list[str] = []
    for name, row in doc["benchmarks"].items():
        base = baseline.get("benchmarks", {}).get(name)
        if base is None:
            problems.append(f"{name}: missing from baseline")
            continue
        floor = CHECK_FLOORS.get(name)
        if floor is not None and row["speedup"] < floor:
            problems.append(
                f"{name}: speedup {row['speedup']:.2f}x below floor {floor}x"
            )
        limit = base["after_s"] * max_slowdown
        if row["after_s"] > limit:
            problems.append(
                f"{name}: after {row['after_s']:.4f}s exceeds "
                f"{max_slowdown}x baseline ({base['after_s']:.4f}s)"
            )
    return problems


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.perf",
        description="Wall-clock perf benchmarks of the simulator itself.",
    )
    parser.add_argument("--repeats", type=int, default=None,
                        help="repeats per arm (default: 5, or 3 with --check)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (CI-sized)")
    parser.add_argument("--output", type=Path, default=None,
                        help=f"write results here (default: ./{BENCH_FILENAME}; "
                             "'-' prints JSON only)")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare against a committed baseline instead of "
                             "writing one (re-runs the baseline's workload "
                             "sizes)")
    parser.add_argument("--max-slowdown", type=float, default=2.0,
                        help="allowed after_s ratio vs baseline in --check "
                             "mode (default: 2.0)")
    args = parser.parse_args(argv)

    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        repeats = args.repeats if args.repeats is not None else 3
        doc = run_all(repeats=repeats, quick=baseline.get("quick", False))
        _print_table(doc)
        problems = _check(doc, baseline, args.max_slowdown)
        if problems:
            for p in problems:
                print(f"PERF REGRESSION: {p}", file=sys.stderr)
            return 1
        print("perf check OK")
        return 0

    repeats = args.repeats if args.repeats is not None else 5
    doc = run_all(repeats=repeats, quick=args.quick)
    _print_table(doc)
    if args.output == Path("-"):
        print(json.dumps(doc, indent=2))
        return 0
    out = args.output if args.output is not None else Path(BENCH_FILENAME)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
