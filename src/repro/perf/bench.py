"""The four simulator micro-benchmarks behind ``BENCH_simwall.json``.

Each benchmark is a pure function ``bench_*(repeats, quick) ->
BenchResult`` timing one simulator hot path with the fast paths off
("before", the reference implementations kept for the equivalence
oracle) and on ("after").  Workloads are deterministic — both arms
simulate the exact same events, which the equivalence suite
(``tests/machine/test_costing_equivalence.py``,
``tests/sim/test_scheduler_equivalence.py``) separately proves produce
bit-identical results.

* ``engine_switch`` — raw context-switch rate of the cooperative
  scheduler: PEs that only ``advance`` + ``checkpoint``, forcing a
  switch on every yield.
* ``bulk_costing`` — ``MemoryHierarchy.access_range`` sweeps below the
  streaming cutoff, the per-line loop the vectorized run classifier
  replaces.
* ``collectives_micro`` — the end-to-end ``bench_collectives_micro``
  slice: real collectives on an 8-PE machine (engine + transfer +
  memory costing together).
* ``gups_slice`` — a short verified GUPs run, the scalar-access /
  random-index workload the batch path cannot help (guards against the
  fast paths regressing scalar traffic).
"""

from __future__ import annotations

import gc
import platform
import sys
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "SCHEMA",
    "BENCH_FILENAME",
    "CHECK_FLOORS",
    "BenchResult",
    "bench_engine_switch",
    "bench_bulk_costing",
    "bench_collectives_micro",
    "bench_gups_slice",
    "run_all",
]

SCHEMA = "repro-perf-simwall/1"
BENCH_FILENAME = "BENCH_simwall.json"

#: Minimum speedups ``--check`` enforces (deliberately far below the
#: recorded medians so runner noise cannot flake CI; ``None`` = ratio
#: not enforced, only the absolute-slowdown bound applies).
CHECK_FLOORS: dict[str, float | None] = {
    "engine_switch": 1.1,
    "bulk_costing": 1.5,
    "collectives_micro": 1.1,
    "gups_slice": None,
}


@dataclass(frozen=True)
class BenchResult:
    """Before/after wall-clock medians for one micro-benchmark."""

    name: str
    detail: str
    repeats: int
    before_s: float
    after_s: float

    @property
    def speedup(self) -> float:
        return self.before_s / self.after_s if self.after_s > 0 else float("inf")

    def as_dict(self) -> dict:
        return {
            "detail": self.detail,
            "repeats": self.repeats,
            "before_s": self.before_s,
            "after_s": self.after_s,
            "speedup": self.speedup,
        }


def _median(xs: list[float]) -> float:
    s = sorted(xs)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else 0.5 * (s[mid - 1] + s[mid])


def _measure(workload: Callable[[bool], None], repeats: int) -> tuple[float, float]:
    """Median wall seconds of ``workload(fast)`` for both arms.

    Arms alternate (before, after, before, ...) so slow drift in host
    load hits both medians equally.  Garbage from earlier arms (and
    earlier benchmarks) is collected before each timing so no arm pays
    another's allocator debt; collections triggered *by* the workload
    still count against it.
    """
    before: list[float] = []
    after: list[float] = []
    for _ in range(repeats):
        for fast, acc in ((False, before), (True, after)):
            gc.collect()
            t0 = time.perf_counter()
            workload(fast)
            acc.append(time.perf_counter() - t0)
    return _median(before), _median(after)


# -- benchmarks ------------------------------------------------------------


def bench_engine_switch(repeats: int = 5, quick: bool = False) -> BenchResult:
    """Context-switch rate: every checkpoint yields to another PE."""
    from ..sim.engine import Engine

    n_pes = 4
    yields = 800 if quick else 4000

    def workload(fast: bool) -> None:
        eng = Engine(n_pes, direct_handoff=fast)

        def body(pe) -> None:
            for _ in range(yields):
                pe.advance(1.0)
                eng.checkpoint()

        eng.run(body)

    before, after = _measure(workload, repeats)
    return BenchResult(
        name="engine_switch",
        detail=f"{n_pes} PEs x {yields} forced yields",
        repeats=repeats,
        before_s=before,
        after_s=after,
    )


def bench_bulk_costing(repeats: int = 5, quick: bool = False) -> BenchResult:
    """Sequential-range costing below the streaming cutoff."""
    from ..machine.memsys import MemoryHierarchy
    from ..params import MemoryParams

    nbytes = (512 if quick else 2048) * 1024
    sweeps = 2 if quick else 6

    def workload(fast: bool) -> None:
        hier = MemoryHierarchy(MemoryParams())
        hier.fast_path = fast
        for i in range(sweeps):
            hier.access_range(0, nbytes, write=bool(i & 1))

    before, after = _measure(workload, repeats)
    return BenchResult(
        name="bulk_costing",
        detail=f"{sweeps} x {nbytes >> 10} KiB access_range sweeps",
        repeats=repeats,
        before_s=before,
        after_s=after,
    )


def bench_collectives_micro(repeats: int = 3, quick: bool = False) -> BenchResult:
    """End-to-end collectives on an 8-PE machine (makespan workload)."""
    from ..params import MachineConfig
    from ..runtime.context import Machine

    n_pes = 8
    # The payload points of benchmarks/bench_collectives_micro.py: a
    # latency-dominated size and a bandwidth-dominated one.
    sizes = (8, 256) if quick else (8, 1024)
    ops = ("broadcast", "reduce", "allreduce", "alltoall")

    def body(ctx, op: str, nelems: int) -> None:
        ctx.init()
        n = ctx.num_pes()
        src = ctx.malloc(8 * nelems * n)
        dest = ctx.malloc(8 * nelems * n)
        ctx.view(src, "int64", nelems)[:] = np.arange(nelems) + ctx.my_pe()
        if op == "broadcast":
            ctx.broadcast(src, src, nelems, 1, 0)
        elif op == "reduce":
            ctx.reduce(dest, src, nelems, 1, 0, "sum")
        elif op == "allreduce":
            ctx.allreduce(dest, src, nelems, 1, "sum")
        else:
            ctx.alltoall(dest, src, nelems)
        ctx.close()

    iters = 1 if quick else 3

    def workload(fast: bool) -> None:
        for _ in range(iters):
            for op in ops:
                for nelems in sizes:
                    machine = Machine(MachineConfig(n_pes=n_pes),
                                      fast_paths=fast)
                    machine.run(body, [(op, nelems)] * n_pes)

    before, after = _measure(workload, repeats)
    return BenchResult(
        name="collectives_micro",
        detail=f"{'/'.join(ops)} @ {'/'.join(map(str, sizes))} int64 "
               f"on {n_pes} PEs",
        repeats=repeats,
        before_s=before,
        after_s=after,
    )


def bench_gups_slice(repeats: int = 3, quick: bool = False) -> BenchResult:
    """Short verified GUPs run (scalar random-access hot path)."""
    from ..bench.gups import GupsParams, run_gups
    from ..params import MachineConfig

    n_pes = 4
    updates = 128 if quick else 512
    params = GupsParams(log2_table_size=16, updates_per_pe=updates)
    config = MachineConfig(n_pes=n_pes)

    def workload(fast: bool) -> None:
        res = run_gups(config, params, fast_paths=fast)
        assert res.passed

    before, after = _measure(workload, repeats)
    return BenchResult(
        name="gups_slice",
        detail=f"2^16-word table, {updates} updates/PE on {n_pes} PEs, verified",
        repeats=repeats,
        before_s=before,
        after_s=after,
    )


_BENCHES: tuple[Callable[[int, bool], BenchResult], ...] = (
    bench_engine_switch,
    bench_bulk_costing,
    bench_collectives_micro,
    bench_gups_slice,
)


def run_all(repeats: int = 5, quick: bool = False) -> dict:
    """Run every benchmark; returns the ``BENCH_simwall.json`` document."""
    results = [b(repeats, quick) for b in _BENCHES]
    return {
        "schema": SCHEMA,
        "quick": quick,
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        "benchmarks": {r.name: r.as_dict() for r in results},
    }
