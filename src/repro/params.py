"""Machine and cost-model parameters.

All simulated time is in **nanoseconds**.  The defaults mirror the paper's
evaluation platform (section 5.1): RISC-V RV64I cores at 1 GHz with a
256-entry TLB and 8-way set-associative L1 (16 KB) / L2 (8 MB) caches,
with MPICH-class inter-node links replaced by the xBGAS one-sided
transport.

Three transport presets model the overhead ordering the paper argues in
section 3.1:

* :func:`xbgas_transport` — remote load/store straight from user space;
  no kernel crossing, no handshake, no intermediate copies.
* :func:`rdma_transport` — one-sided but library-mediated: memory
  registration/doorbell costs per operation.
* :func:`mpi_transport` — two-sided: per-message handshake (rendezvous
  above the eager threshold), kernel crossings and an extra payload copy
  on each end.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "CacheParams",
    "TlbParams",
    "MemoryParams",
    "TransportParams",
    "MailboxParams",
    "MachineConfig",
    "xbgas_transport",
    "rdma_transport",
    "mpi_transport",
    "paper_machine",
]


@dataclass(frozen=True)
class CacheParams:
    """Geometry and latency of one cache level."""

    size_bytes: int
    ways: int
    line_bytes: int = 64
    hit_ns: float = 1.0

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return max(1, self.n_lines // self.ways)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        if self.size_bytes % self.line_bytes:
            raise ValueError("cache size must be a multiple of the line size")


@dataclass(frozen=True)
class TlbParams:
    """TLB geometry: entries, page size and miss (page-walk) penalty.

    The walk penalty models a software-assisted page-table walk on the
    simulated in-order RISC-V core (~3 dependent memory accesses).
    """

    entries: int = 256
    page_bytes: int = 4096
    walk_ns: float = 120.0


@dataclass(frozen=True)
class MemoryParams:
    """The full per-core memory hierarchy of the paper's testbed."""

    l1: CacheParams = field(
        default_factory=lambda: CacheParams(
            size_bytes=16 * 1024, ways=8, hit_ns=1.0
        )
    )
    l2: CacheParams = field(
        default_factory=lambda: CacheParams(
            size_bytes=8 * 1024 * 1024, ways=8, hit_ns=10.0
        )
    )
    tlb: TlbParams = field(default_factory=TlbParams)
    #: Random-access DRAM latency (one isolated cache-line fill).
    dram_ns: float = 90.0
    #: Per-line cost of *sequential* DRAM traffic, where row-buffer hits
    #: and memory-level parallelism pipeline the fills (~8 GB/s).
    dram_stream_ns: float = 8.0


@dataclass(frozen=True)
class TransportParams:
    """LogGP-style inter-PE transport costs (all ns unless stated).

    Attributes
    ----------
    name:
        Preset label shown in benchmark output.
    o_send / o_recv:
        CPU overhead paid by the initiator (and, for two-sided
        transports, the target) per message.
    latency_ns:
        Wire latency L between distinct nodes.
    gap_ns_per_byte:
        Inverse bandwidth G of the network path.
    inj_ns_per_byte:
        Inverse bandwidth of a node's injection (NIC) link; messages from
        one source serialise on it.
    intra_latency_ns / intra_gap_ns_per_byte:
        Cheaper path for PEs mapped to the same node.
    handshake_ns:
        Rendezvous handshake cost (two-sided only; 0 for one-sided).
    eager_threshold:
        Messages larger than this pay ``handshake_ns`` (bytes).
    copy_ns_per_byte:
        Extra per-byte copy cost at each end (two-sided staging copies;
        0 for true one-sided transports).
    kernel_ns:
        Kernel-crossing / syscall cost per message (0 when the transport
        operates from user space, as xBGAS does).
    two_sided:
        Whether the target CPU participates (pays ``o_recv``).
    """

    name: str
    o_send: float
    o_recv: float
    latency_ns: float
    gap_ns_per_byte: float
    inj_ns_per_byte: float
    intra_latency_ns: float
    intra_gap_ns_per_byte: float
    handshake_ns: float = 0.0
    eager_threshold: int = 0
    copy_ns_per_byte: float = 0.0
    kernel_ns: float = 0.0
    two_sided: bool = False

    def with_(self, **kw: object) -> "TransportParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kw)


def xbgas_transport() -> TransportParams:
    """Remote load/store issued directly by the core (paper section 3.1)."""
    return TransportParams(
        name="xbgas",
        o_send=20.0,
        o_recv=0.0,
        latency_ns=450.0,
        gap_ns_per_byte=0.10,
        inj_ns_per_byte=0.08,
        intra_latency_ns=12.0,
        intra_gap_ns_per_byte=0.02,
    )


def rdma_transport() -> TransportParams:
    """RDMA verbs: one-sided but with library/doorbell costs per op."""
    return TransportParams(
        name="rdma",
        o_send=250.0,
        o_recv=0.0,
        latency_ns=600.0,
        gap_ns_per_byte=0.10,
        inj_ns_per_byte=0.08,
        intra_latency_ns=150.0,
        intra_gap_ns_per_byte=0.03,
    )


def mpi_transport() -> TransportParams:
    """Two-sided MPI-class transport (socket setup, handshake, copies)."""
    return TransportParams(
        name="mpi",
        o_send=400.0,
        o_recv=400.0,
        latency_ns=900.0,
        gap_ns_per_byte=0.12,
        inj_ns_per_byte=0.08,
        intra_latency_ns=300.0,
        intra_gap_ns_per_byte=0.05,
        handshake_ns=1800.0,
        eager_threshold=8192,
        copy_ns_per_byte=0.05,
        kernel_ns=700.0,
        two_sided=True,
    )


_TRANSPORTS = {
    "xbgas": xbgas_transport,
    "rdma": rdma_transport,
    "mpi": mpi_transport,
}


@dataclass(frozen=True)
class MailboxParams:
    """Two-sided mailbox engine parameters (the Xctcmsg-style design).

    Every PE owns one bounded receive queue of ``recv_depth`` message
    slots.  A sender whose target queue is full stalls (backpressure)
    until the receiver drains a slot.  Messages travel through the
    postoffice: the regular fabric/topology path of ``network.py`` plus
    ``route_ns_per_hop`` of routing-table work per topology hop and a
    fixed ``header_bytes`` framing overhead per message.

    Attributes
    ----------
    recv_depth:
        Slots in each PE's receive queue.  Lowered schedules need the
        depth to cover a stage's worst fan-in (the linter warns on
        queues shallower than 1).
    route_ns_per_hop:
        Postoffice routing charge per topology hop between nodes
        (added on top of the fabric latency the network model charges).
    header_bytes:
        Wire framing per message: (src, dst, tag, length) descriptor.
    match_ns:
        Receive-side cost of matching one message against a pending
        receive (tag + source compare, queue bookkeeping).
    retry_ns:
        Sender backoff before re-attempting an enqueue that found the
        target queue full (the commit-safety retry loop).
    max_retries:
        Enqueue attempts before the sender gives up and the machine
        raises — a safety net against livelock on a stuck receiver.
    """

    recv_depth: int = 64
    route_ns_per_hop: float = 25.0
    header_bytes: int = 16
    match_ns: float = 12.0
    retry_ns: float = 200.0
    max_retries: int = 64

    def __post_init__(self) -> None:
        if self.recv_depth <= 0:
            raise ValueError("mailbox recv_depth must be positive")
        if self.max_retries <= 0:
            raise ValueError("mailbox max_retries must be positive")

    def with_(self, **kw: object) -> "MailboxParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kw)


@dataclass(frozen=True)
class MachineConfig:
    """Full configuration of the simulated machine.

    The paper's environment is a single host with 12 RISC-V cores whose
    Spike instances communicate through MPICH; the default therefore maps
    up to 12 PEs onto one node whose shared internal bus has finite
    message throughput (this is what produces the 8-PE per-PE drop of
    Figures 4-5).  Set ``cores_per_node=1`` for a cluster of single-core
    nodes joined by the topology/fabric model.
    """

    n_pes: int = 8
    memory_bytes_per_pe: int = 96 * 1024 * 1024
    symmetric_heap_bytes: int = 48 * 1024 * 1024
    #: Symmetric scratch reserved for collective work buffers (the SHMEM
    #: pWrk/pSync idea); carved out of the symmetric heap.
    collective_scratch_bytes: int = 4 * 1024 * 1024
    cores_per_node: int = 12
    #: Optional explicit PE→node placement overriding the sequential
    #: ``cores_per_node`` blocks — e.g. a round-robin placement for the
    #: locality experiments (section 7's "location aware communication
    #: optimization using the xBGAS OLB").  Node IDs must be contiguous
    #: from 0.
    pe_node_map: tuple[int, ...] | None = None
    #: The simulation host's physical core count (the paper's 12-core
    #: machine) and how many host cores one PE effectively consumes
    #: (its Spike instance plus the MPICH progress engine).  Once
    #: ``n_pes * host_cores_per_pe`` exceeds ``host_cores`` the host is
    #: oversubscribed and every PE slows down uniformly — the mechanism
    #: behind the paper's 8-PE per-PE throughput drop (Figures 4-5).
    host_cores: int = 12
    host_cores_per_pe: float = 2.25
    clock_ghz: float = 1.0
    mem: MemoryParams = field(default_factory=MemoryParams)
    transport: TransportParams = field(default_factory=xbgas_transport)
    #: Two-sided mailbox engine (used when ``Machine(transport="mailbox")``).
    mailbox: MailboxParams = field(default_factory=MailboxParams)
    topology: str = "fully-connected"
    #: Aggregate fabric bandwidth shared by all nodes, ns per byte of
    #: concurrently in-flight traffic (0 disables contention modelling).
    fabric_gap_ns_per_byte: float = 0.035
    #: Number of elements above which the generated transfer loop is
    #: unrolled (paper section 3.3).
    unroll_threshold: int = 8
    unroll_factor: int = 4
    #: "model" = analytic costing; "isa" = execute generated xBGAS
    #: assembly on the functional core for the transfer inner loops.
    fidelity: str = "model"
    #: In "isa" fidelity, layer the pipeline timing model (load-use
    #: stalls, branch flushes, I-cache) onto the functional cores.
    pipeline: bool = False
    seed: int = 0x5EED

    def __post_init__(self) -> None:
        if self.n_pes <= 0:
            raise ValueError("n_pes must be positive")
        if self.cores_per_node <= 0:
            raise ValueError("cores_per_node must be positive")
        if self.symmetric_heap_bytes > self.memory_bytes_per_pe:
            raise ValueError("symmetric heap cannot exceed PE memory")
        if self.collective_scratch_bytes >= self.symmetric_heap_bytes:
            raise ValueError("collective scratch must fit inside the heap")
        if self.fidelity not in ("model", "isa"):
            raise ValueError("fidelity must be 'model' or 'isa'")
        if self.pe_node_map is not None:
            m = self.pe_node_map
            if len(m) != self.n_pes:
                raise ValueError(
                    f"pe_node_map has {len(m)} entries for {self.n_pes} PEs"
                )
            if sorted(set(m)) != list(range(max(m) + 1)):
                raise ValueError("pe_node_map node IDs must be contiguous")

    @property
    def cycle_ns(self) -> float:
        """Duration of one core clock cycle in ns."""
        return 1.0 / self.clock_ghz

    @property
    def time_dilation(self) -> float:
        """Uniform slowdown from simulation-host oversubscription."""
        if self.host_cores <= 0:
            return 1.0
        return max(1.0, self.n_pes * self.host_cores_per_pe / self.host_cores)

    @property
    def n_nodes(self) -> int:
        if self.pe_node_map is not None:
            return max(self.pe_node_map) + 1
        return -(-self.n_pes // self.cores_per_node)

    def node_of(self, pe: int) -> int:
        """Node hosting ``pe`` — sequential ``cores_per_node`` blocks
        (the assumption behind the paper's recursive halving) unless a
        ``pe_node_map`` overrides the placement."""
        if not 0 <= pe < self.n_pes:
            raise ValueError(f"pe {pe} out of range [0, {self.n_pes})")
        if self.pe_node_map is not None:
            return self.pe_node_map[pe]
        return pe // self.cores_per_node

    def node_members(self, node: int) -> tuple[int, ...]:
        """All PEs placed on ``node``, in rank order."""
        return tuple(pe for pe in range(self.n_pes)
                     if self.node_of(pe) == node)

    def with_(self, **kw: object) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kw)

    def with_transport(self, name: str) -> "MachineConfig":
        """Return a copy using the named transport preset."""
        try:
            factory = _TRANSPORTS[name]
        except KeyError:
            raise ValueError(
                f"unknown transport {name!r}; expected one of "
                f"{sorted(_TRANSPORTS)}"
            ) from None
        return self.with_(transport=factory())


def paper_machine(n_pes: int = 8, **kw: object) -> MachineConfig:
    """The evaluation platform of section 5.1 with ``n_pes`` PEs."""
    return MachineConfig(n_pes=n_pes, **kw)
