"""Conservative parallel-discrete-event simulation engine.

Each processing element (PE) runs its user program on a dedicated Python
thread with a private simulated clock.  Exactly one thread executes at a
time; at every communication point the running PE yields to the scheduler,
which always resumes the runnable PE with the smallest clock (ties broken
by rank).  This produces a deterministic, legal linearization of the PE
programs — re-running a simulation gives bit-identical functional results
and timings.
"""

from .engine import Engine, PEProcess, PEState
from .trace import EventTrace, SimStats, TraceEvent

__all__ = [
    "Engine",
    "PEProcess",
    "PEState",
    "EventTrace",
    "SimStats",
    "TraceEvent",
]
