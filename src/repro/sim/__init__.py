"""Conservative parallel-discrete-event simulation engine.

Each processing element (PE) runs its user program on a dedicated Python
thread with a private simulated clock.  Exactly one thread executes at a
time; at every communication point the running PE yields to the scheduler,
which always resumes the runnable PE with the smallest clock (ties broken
by rank).  This produces a deterministic, legal linearization of the PE
programs — re-running a simulation gives bit-identical functional results
and timings.

Observability (all opt-in via ``Machine(..., trace=True)``): flat events
and hierarchical spans in :mod:`~repro.sim.trace` /
:mod:`~repro.sim.spans`, per-collective metrics in
:mod:`~repro.sim.metrics`, and Chrome-trace export in
:mod:`~repro.sim.chrome_trace`.
"""

from .chrome_trace import chrome_trace, write_chrome_trace
from .engine import Engine, PEProcess, PEState
from .metrics import CollectiveMetrics, PEActivity, StageMetrics, collective_metrics
from .spans import Span, SpanTracker, build_span_forest, walk
from .trace import EventTrace, SimStats, TraceEvent

__all__ = [
    "Engine",
    "PEProcess",
    "PEState",
    "EventTrace",
    "SimStats",
    "TraceEvent",
    "Span",
    "SpanTracker",
    "build_span_forest",
    "walk",
    "CollectiveMetrics",
    "PEActivity",
    "StageMetrics",
    "collective_metrics",
    "chrome_trace",
    "write_chrome_trace",
]
