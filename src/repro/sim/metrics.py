"""Per-collective metrics derived from the span tree.

Answers the questions the paper's evaluation turns on (Figs. 3–5):
where does time go inside the binomial trees?  For every traced
collective call this module reports

* the stage count and, per stage, the messages/bytes moved and the
  stage latency (first entry to last exit across the participants);
* per-PE busy/blocked split (blocked = time inside barriers);
* the critical-path latency through the tree — with a barrier closing
  every stage the stages are sequential, so the critical path is the
  makespan from the first PE entering to the last PE leaving.

Correlation across PEs relies on SPMD execution *within a group*:
every participant of a group opens its collective spans over that group
in the same order, so ``(name, group, occurrence)`` identifies one
logical call — ``occurrence`` being the per-PE count of earlier spans
with the same name and group.  Disjoint teams therefore correlate
independently, even when their members interleave differently with
other work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .spans import Span, build_span_forest, walk
from .trace import EventTrace

__all__ = [
    "StageMetrics",
    "PEActivity",
    "CollectiveMetrics",
    "collective_metrics",
]


@dataclass
class StageMetrics:
    """One binomial-tree stage, aggregated over all participants."""

    index: int
    messages: int = 0        #: remote puts + gets + sends issued in the stage
    local_copies: int = 0    #: puts/gets a PE issued to itself
    bytes: int = 0           #: payload bytes of the remote messages
    barriers: int = 0        #: barrier entries closing the stage
    t_start: float = float("inf")
    t_end: float = float("-inf")

    @property
    def latency_ns(self) -> float:
        """First entry to last exit across the participants."""
        if self.t_end < self.t_start:
            return 0.0
        return self.t_end - self.t_start


@dataclass
class PEActivity:
    """One participant's time split inside a collective."""

    pe: int
    t0: float
    t1: float
    blocked_ns: float = 0.0  #: time inside barriers

    @property
    def busy_ns(self) -> float:
        return max(0.0, (self.t1 - self.t0) - self.blocked_ns)


@dataclass
class CollectiveMetrics:
    """One logical collective call, correlated across its participants."""

    name: str
    seq: int
    group: tuple[int, ...]
    nested: bool = False     #: opened inside another collective's span
    stages: list[StageMetrics] = field(default_factory=list)
    per_pe: dict[int, PEActivity] = field(default_factory=dict)
    #: remote messages issued outside any stage (staging/reorder phases)
    extra_messages: int = 0
    extra_bytes: int = 0
    entry_barriers: int = 0

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    @property
    def total_messages(self) -> int:
        return sum(s.messages for s in self.stages) + self.extra_messages

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes for s in self.stages) + self.extra_bytes

    @property
    def t_start(self) -> float:
        return min(a.t0 for a in self.per_pe.values())

    @property
    def t_end(self) -> float:
        return max(a.t1 for a in self.per_pe.values())

    @property
    def critical_path_ns(self) -> float:
        """Makespan of the barrier-closed tree (see module docstring)."""
        return self.t_end - self.t_start

    def stage(self, index: int) -> StageMetrics:
        for s in self.stages:
            if s.index == index:
                return s
        raise KeyError(f"no stage {index} in {self.name}#{self.seq}")


def _op_stats(span: Span) -> tuple[bool, int]:
    """(is_remote_message, payload_bytes) for an op span."""
    remote = bool(span.attrs.get("remote"))
    nbytes = int(span.attrs.get("bytes", 0))
    return remote, nbytes


def _fold_ops(ops: Iterable[Span], cm: CollectiveMetrics,
              stage: StageMetrics | None) -> None:
    for op in ops:
        if op.name == "barrier":
            if stage is not None:
                stage.barriers += 1
            else:
                cm.entry_barriers += 1
            continue
        if op.name == "send":
            # Two-sided path: the send side owns the message accounting —
            # the matching recv is the same wire message, so folding both
            # would double-count mailbox traffic.
            _, nbytes = _op_stats(op)
            if stage is not None:
                stage.messages += 1
                stage.bytes += nbytes
            else:
                cm.extra_messages += 1
                cm.extra_bytes += nbytes
            continue
        if op.name not in ("put", "get"):
            continue
        remote, nbytes = _op_stats(op)
        if stage is not None:
            if remote:
                stage.messages += 1
                stage.bytes += nbytes
            else:
                stage.local_copies += 1
        elif remote:
            cm.extra_messages += 1
            cm.extra_bytes += nbytes


def _subtree_blocked_ns(span: Span) -> float:
    """Barrier time anywhere under ``span`` (one PE's subtree)."""
    total = 0.0
    for s in walk([span]):
        if s.kind == "op" and s.name == "barrier":
            total += s.dur_ns
    return total


def collective_metrics(trace: EventTrace) -> list[CollectiveMetrics]:
    """Aggregate a trace's collective spans into per-call metrics.

    Returns one entry per logical collective (including nested calls
    made by composed collectives such as ``reduce_all``, flagged
    ``nested=True``), ordered by start time.
    """
    forest = build_span_forest(trace)
    # Per-PE program order (span ids ascend with begin order on one PE)
    # gives each collective span its occurrence index within
    # (pe, name, group); matching occurrences across PEs are one call.
    by_pe: dict[tuple, list[Span]] = {}
    by_sid: dict[int, Span] = {}
    for span in walk(forest):
        by_sid[span.sid] = span
        if span.kind != "collective":
            continue
        group = tuple(span.attrs.get("group", ()))
        by_pe.setdefault((span.pe, span.name, group), []).append(span)
    flat: list[tuple[tuple, Span]] = []
    for (pe, name, group), pe_spans in by_pe.items():
        pe_spans.sort(key=lambda s: s.sid)
        for occ, span in enumerate(pe_spans):
            flat.append(((name, occ, group), span))
    flat.sort(key=lambda item: item[1].sid)
    calls: dict[tuple, CollectiveMetrics] = {}
    for (name, occ, group), span in flat:
        key = (name, occ, group)
        cm = calls.get(key)
        if cm is None:
            cm = calls[key] = CollectiveMetrics(name, occ, group)
        parent = by_sid.get(span.parent_id)
        if parent is not None and parent.kind == "collective":
            cm.nested = True
        cm.per_pe[span.pe] = PEActivity(
            pe=span.pe, t0=span.t0, t1=span.t1,
            blocked_ns=_subtree_blocked_ns(span),
        )
        # Fold this PE's stages and loose ops into the shared stage table.
        for child in span.children:
            if child.kind == "stage":
                idx = int(child.attrs.get("index", 0))
                stage = next((s for s in cm.stages if s.index == idx), None)
                if stage is None:
                    stage = StageMetrics(index=idx)
                    cm.stages.append(stage)
                stage.t_start = min(stage.t_start, child.t0)
                stage.t_end = max(stage.t_end, child.t1)
                _fold_ops((c for c in child.children if c.kind == "op"),
                          cm, stage)
            elif child.kind == "op":
                _fold_ops([child], cm, None)
    for cm in calls.values():
        cm.stages.sort(key=lambda s: s.index)
    return sorted(calls.values(), key=lambda c: c.t_start)
