"""Hierarchical spans over the event trace.

The observability layer for collectives: every traced operation opens a
*span* — an interval on one PE's simulated clock — nested three levels
deep:

    collective (broadcast, reduce, ...)
      └── stage (one binomial-tree stage, including its closing barrier)
            └── op (put / get / amo / barrier)

Spans are recorded through the existing :class:`~repro.sim.trace.EventTrace`
as a single event when they *close* (kind ``"span"``, ``detail`` = the
span name, ``dur_ns`` = length, ``parent_id`` = the enclosing span), so
the trace bound and drop accounting apply unchanged.  With tracing
disabled every entry point returns immediately — span emission is a
strict no-op and records nothing.

:func:`build_span_forest` rebuilds the tree from a trace; spans whose
parent was evicted by the trace bound surface as roots rather than being
lost.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Mapping

from .trace import EventTrace, TraceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Engine

__all__ = ["Span", "SpanTracker", "build_span_forest", "walk"]

#: Span kinds, outermost first.
SPAN_KINDS = ("collective", "stage", "op", "user")


@dataclass
class Span:
    """One node of a reconstructed span tree."""

    sid: int
    parent_id: int
    pe: int
    kind: str
    name: str
    t0: float
    t1: float
    attrs: Mapping[str, object]
    children: list["Span"] = field(default_factory=list)

    @property
    def dur_ns(self) -> float:
        return self.t1 - self.t0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.kind}:{self.name} pe={self.pe} "
            f"[{self.t0:.0f}, {self.t1:.0f}] children={len(self.children)})"
        )


class _OpenSpan:
    """Mutable begin-side record while a span is on a PE's stack."""

    __slots__ = ("sid", "parent_id", "kind", "name", "t0", "attrs")

    def __init__(self, sid: int, parent_id: int, kind: str, name: str,
                 t0: float, attrs: Mapping[str, object] | None):
        self.sid = sid
        self.parent_id = parent_id
        self.kind = kind
        self.name = name
        self.t0 = t0
        self.attrs = attrs


class SpanTracker:
    """Per-PE span stacks feeding span events into the engine's trace.

    One tracker per :class:`~repro.sim.engine.Engine`; PE threads only
    touch their own stack, so the engine's one-thread-at-a-time schedule
    keeps this safe without locks.
    """

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.trace: EventTrace = engine.trace
        self._stacks: list[list[_OpenSpan]] = [[] for _ in range(engine.n_pes)]
        self._next_sid = 1

    @property
    def enabled(self) -> bool:
        return self.trace.enabled

    # -- emission (called from PE threads) --------------------------------

    def begin(self, pe: int, kind: str, name: str,
              attrs: Mapping[str, object] | None = None) -> int:
        """Open a span on ``pe`` at its current clock; returns the span id.

        No-op (returns 0) when tracing is disabled.
        """
        if not self.trace.enabled:
            return 0
        stack = self._stacks[pe]
        parent = stack[-1].sid if stack else 0
        sid = self._next_sid
        self._next_sid += 1
        stack.append(_OpenSpan(sid, parent, kind, name,
                               self.engine.pes[pe].clock, attrs))
        return sid

    def end(self, pe: int) -> None:
        """Close the innermost open span on ``pe`` at its current clock."""
        if not self.trace.enabled:
            return
        stack = self._stacks[pe]
        if not stack:
            return  # tracing was enabled mid-span; nothing to close
        top = stack.pop()
        t1 = self.engine.pes[pe].clock
        self.trace.record_span(
            top.t0, pe, "span", f"{top.kind}:{top.name}",
            top.sid, top.parent_id, t1 - top.t0, top.attrs,
        )

    @contextmanager
    def scope(self, pe: int, kind: str, name: str,
              attrs: Mapping[str, object] | None = None) -> Iterator[int]:
        sid = self.begin(pe, kind, name, attrs)
        try:
            yield sid
        finally:
            if sid:
                self.end(pe)

    def annotate(self, pe: int, key: str, value: object,
                 append: bool = False) -> None:
        """Tag ``pe``'s innermost open span with ``key: value``.

        With ``append=True`` the key accumulates a list (used by the
        fault injector so a span hit by several faults keeps them all).
        No-op when tracing is disabled or no span is open.
        """
        if not self.trace.enabled:
            return
        stack = self._stacks[pe]
        if not stack:
            return
        top = stack[-1]
        attrs = dict(top.attrs) if top.attrs else {}
        if append:
            existing = attrs.get(key)
            attrs[key] = (list(existing) if existing else []) + [value]
        else:
            attrs[key] = value
        top.attrs = attrs

    def current(self, pe: int) -> int:
        """Id of ``pe``'s innermost open span (0 when none / disabled)."""
        stack = self._stacks[pe]
        return stack[-1].sid if stack else 0

    def depth(self, pe: int) -> int:
        return len(self._stacks[pe])


def build_span_forest(trace: EventTrace) -> list[Span]:
    """Rebuild the span trees from a trace's span events.

    Returns the roots, ordered by start time.  A span whose parent was
    evicted by the trace bound (or never closed) becomes a root itself —
    drops degrade the tree instead of breaking it.
    """
    spans: dict[int, Span] = {}
    events: list[TraceEvent] = trace.spans()
    for e in events:
        kind, _, name = e.detail.partition(":")
        spans[e.span_id] = Span(
            sid=e.span_id,
            parent_id=e.parent_id,
            pe=e.pe,
            kind=kind,
            name=name,
            t0=e.time_ns,
            t1=e.end_ns,
            attrs=e.attrs or {},
        )
    roots: list[Span] = []
    for span in spans.values():
        parent = spans.get(span.parent_id) if span.parent_id else None
        if parent is None:
            roots.append(span)
        else:
            parent.children.append(span)
    for span in spans.values():
        span.children.sort(key=lambda s: (s.t0, s.sid))
    roots.sort(key=lambda s: (s.t0, s.sid))
    return roots


def walk(roots: list[Span]) -> Iterator[Span]:
    """Depth-first iteration over a span forest."""
    stack = list(reversed(roots))
    while stack:
        span = stack.pop()
        yield span
        stack.extend(reversed(span.children))
