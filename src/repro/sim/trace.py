"""Event tracing and aggregate statistics for simulations.

Tracing is optional (off by default) because recording every event slows
simulation; statistics counters are always maintained — they are cheap and
the benchmark harness reports them alongside MOPS numbers.

Two flavours of record flow through one :class:`EventTrace`:

* *instant events* (``span_id == 0``) — the flat ``(time, pe, kind)``
  tuples the runtime has always emitted; and
* *span events* (``span_id != 0``) — hierarchical intervals
  (``collective → stage → put/get/barrier``) emitted by
  :class:`~repro.sim.spans.SpanTracker` when a span *closes*.  A span
  event carries its start time in ``time_ns``, its length in ``dur_ns``
  and its parent span in ``parent_id``, so the collective metrics layer
  (:mod:`repro.sim.metrics`) and the Chrome-trace exporter
  (:mod:`repro.sim.chrome_trace`) can rebuild the tree.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator, Mapping

__all__ = ["TraceEvent", "EventTrace", "SimStats"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulation event (instant or completed span)."""

    time_ns: float
    pe: int
    kind: str
    detail: str = ""
    #: Non-zero for span events; unique within one trace.
    span_id: int = 0
    #: Enclosing span id (0 = top-level) — only meaningful on span events.
    parent_id: int = 0
    #: Span length; instant events have zero duration.
    dur_ns: float = 0.0
    #: Structured payload (bytes moved, target PE, stage index, ...).
    attrs: Mapping[str, object] | None = None

    @property
    def is_span(self) -> bool:
        return self.span_id != 0

    @property
    def end_ns(self) -> float:
        return self.time_ns + self.dur_ns

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dur = f" dur={self.dur_ns:.1f}" if self.span_id else ""
        return (
            f"[{self.time_ns:12.1f} ns] PE{self.pe:<3d} {self.kind}"
            f"{dur} {self.detail}"
        )


class EventTrace:
    """Bounded in-memory event log.

    Parameters
    ----------
    enabled:
        When False, :meth:`record` is a no-op.
    max_events:
        Oldest events are dropped beyond this bound so long simulations
        cannot exhaust memory.  Drop accounting is per kind
        (:attr:`dropped_by_kind`), so consumers of :meth:`of_kind` can
        tell whether the events they are counting are complete.
    """

    def __init__(self, enabled: bool = False, max_events: int = 100_000):
        self.enabled = enabled
        self.max_events = max(1, max_events)
        self._events: list[TraceEvent] = []
        self._dropped = 0
        self._dropped_by_kind: Counter = Counter()

    def _evict(self) -> None:
        # Drop the oldest half in one go to amortise the cost (at least
        # one event, so a tiny max_events still stays bounded), keeping
        # the per-kind drop accounting consistent with what left the log.
        drop = max(1, self.max_events // 2)
        for e in self._events[:drop]:
            self._dropped_by_kind[e.kind] += 1
        del self._events[:drop]
        self._dropped += drop

    def record(self, time_ns: float, pe: int, kind: str, detail: str = "",
               attrs: Mapping[str, object] | None = None) -> None:
        """Record one instant event (``attrs`` = structured payload,
        e.g. a fired fault's kind/seq/endpoints)."""
        if not self.enabled:
            return
        if len(self._events) >= self.max_events:
            self._evict()
        self._events.append(TraceEvent(time_ns, pe, kind, detail,
                                       attrs=attrs))

    def record_span(
        self,
        time_ns: float,
        pe: int,
        kind: str,
        detail: str,
        span_id: int,
        parent_id: int,
        dur_ns: float,
        attrs: Mapping[str, object] | None = None,
    ) -> None:
        """Record one completed span (called by ``SpanTracker.end``)."""
        if not self.enabled:
            return
        if len(self._events) >= self.max_events:
            self._evict()
        self._events.append(TraceEvent(
            time_ns, pe, kind, detail, span_id, parent_id, dur_ns, attrs
        ))

    @property
    def dropped(self) -> int:
        return self._dropped

    @property
    def dropped_by_kind(self) -> Mapping[str, int]:
        """How many events of each kind were evicted by the bound."""
        return dict(self._dropped_by_kind)

    def dropped_of_kind(self, kind: str) -> int:
        return self._dropped_by_kind[kind]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self._events if e.kind == kind]

    def spans(self) -> list[TraceEvent]:
        """The span events still in the log, in completion order."""
        return [e for e in self._events if e.span_id]

    def clear(self) -> None:
        self._events.clear()
        self._dropped = 0
        self._dropped_by_kind.clear()


@dataclass
class SimStats:
    """Aggregate counters maintained by the runtime during a simulation."""

    puts: int = 0
    gets: int = 0
    amos: int = 0
    bytes_put: int = 0
    bytes_got: int = 0
    remote_puts: int = 0
    remote_gets: int = 0
    barriers: int = 0
    collective_calls: Counter = field(default_factory=Counter)
    instructions_executed: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    tlb_hits: int = 0
    tlb_misses: int = 0
    messages: int = 0
    bytes_on_wire: int = 0
    fabric_queued_ns: float = 0.0
    #: Two-sided mailbox traffic (the ``transport="mailbox"`` engine).
    sends: int = 0
    recvs: int = 0
    bytes_sent: int = 0
    mbx_stalls: int = 0
    mbx_dropped: int = 0
    #: Fired fault-injection events by kind (drop, delay, crash, ...).
    faults_injected: Counter = field(default_factory=Counter)
    #: Retransmissions issued by the reliable-transfer layer.
    retries: int = 0

    def merge(self, other: "SimStats") -> None:
        """Fold ``other``'s counters into this one."""
        self.puts += other.puts
        self.gets += other.gets
        self.amos += other.amos
        self.bytes_put += other.bytes_put
        self.bytes_got += other.bytes_got
        self.remote_puts += other.remote_puts
        self.remote_gets += other.remote_gets
        self.barriers += other.barriers
        self.collective_calls.update(other.collective_calls)
        self.instructions_executed += other.instructions_executed
        self.l1_hits += other.l1_hits
        self.l1_misses += other.l1_misses
        self.l2_hits += other.l2_hits
        self.l2_misses += other.l2_misses
        self.tlb_hits += other.tlb_hits
        self.tlb_misses += other.tlb_misses
        self.messages += other.messages
        self.bytes_on_wire += other.bytes_on_wire
        self.fabric_queued_ns += other.fabric_queued_ns
        self.sends += other.sends
        self.recvs += other.recvs
        self.bytes_sent += other.bytes_sent
        self.mbx_stalls += other.mbx_stalls
        self.mbx_dropped += other.mbx_dropped
        self.faults_injected.update(other.faults_injected)
        self.retries += other.retries

    def summary(self) -> str:
        lines = [
            f"puts={self.puts} ({self.bytes_put} B, {self.remote_puts} remote)",
            f"gets={self.gets} ({self.bytes_got} B, {self.remote_gets} remote)",
            f"barriers={self.barriers}",
            f"messages={self.messages} ({self.bytes_on_wire} B on wire)",
        ]
        if self.sends or self.recvs:
            lines.append(
                f"mailbox: sends={self.sends} ({self.bytes_sent} B) "
                f"recvs={self.recvs} stalls={self.mbx_stalls} "
                f"dropped={self.mbx_dropped}"
            )
        if self.collective_calls:
            calls = ", ".join(
                f"{k}={v}" for k, v in sorted(self.collective_calls.items())
            )
            lines.append(f"collectives: {calls}")
        l1 = self.l1_hits + self.l1_misses
        if l1:
            lines.append(
                f"L1 hit rate {self.l1_hits / l1:6.2%}  "
                f"L2 hit rate "
                f"{self.l2_hits / max(1, self.l2_hits + self.l2_misses):6.2%}  "
                f"TLB hit rate "
                f"{self.tlb_hits / max(1, self.tlb_hits + self.tlb_misses):6.2%}"
            )
        if self.faults_injected:
            faults = ", ".join(
                f"{k}={v}" for k, v in sorted(self.faults_injected.items())
            )
            lines.append(f"faults injected: {faults} (retries={self.retries})")
        if self.instructions_executed:
            lines.append(f"instructions={self.instructions_executed}")
        return "\n".join(lines)
