"""Event tracing and aggregate statistics for simulations.

Tracing is optional (off by default) because recording every event slows
simulation; statistics counters are always maintained — they are cheap and
the benchmark harness reports them alongside MOPS numbers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["TraceEvent", "EventTrace", "SimStats"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulation event."""

    time_ns: float
    pe: int
    kind: str
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.time_ns:12.1f} ns] PE{self.pe:<3d} {self.kind} {self.detail}"


class EventTrace:
    """Bounded in-memory event log.

    Parameters
    ----------
    enabled:
        When False, :meth:`record` is a no-op.
    max_events:
        Oldest events are dropped beyond this bound so long simulations
        cannot exhaust memory.
    """

    def __init__(self, enabled: bool = False, max_events: int = 100_000):
        self.enabled = enabled
        self.max_events = max_events
        self._events: list[TraceEvent] = []
        self._dropped = 0

    def record(self, time_ns: float, pe: int, kind: str, detail: str = "") -> None:
        if not self.enabled:
            return
        if len(self._events) >= self.max_events:
            # Drop the oldest half in one go to amortise the cost.
            drop = self.max_events // 2
            del self._events[:drop]
            self._dropped += drop
        self._events.append(TraceEvent(time_ns, pe, kind, detail))

    @property
    def dropped(self) -> int:
        return self._dropped

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self._events if e.kind == kind]

    def clear(self) -> None:
        self._events.clear()
        self._dropped = 0


@dataclass
class SimStats:
    """Aggregate counters maintained by the runtime during a simulation."""

    puts: int = 0
    gets: int = 0
    amos: int = 0
    bytes_put: int = 0
    bytes_got: int = 0
    remote_puts: int = 0
    remote_gets: int = 0
    barriers: int = 0
    collective_calls: Counter = field(default_factory=Counter)
    instructions_executed: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    tlb_hits: int = 0
    tlb_misses: int = 0
    messages: int = 0
    bytes_on_wire: int = 0
    fabric_queued_ns: float = 0.0

    def merge(self, other: "SimStats") -> None:
        """Fold ``other``'s counters into this one."""
        self.puts += other.puts
        self.gets += other.gets
        self.amos += other.amos
        self.bytes_put += other.bytes_put
        self.bytes_got += other.bytes_got
        self.remote_puts += other.remote_puts
        self.remote_gets += other.remote_gets
        self.barriers += other.barriers
        self.collective_calls.update(other.collective_calls)
        self.instructions_executed += other.instructions_executed
        self.l1_hits += other.l1_hits
        self.l1_misses += other.l1_misses
        self.l2_hits += other.l2_hits
        self.l2_misses += other.l2_misses
        self.tlb_hits += other.tlb_hits
        self.tlb_misses += other.tlb_misses
        self.messages += other.messages
        self.bytes_on_wire += other.bytes_on_wire
        self.fabric_queued_ns += other.fabric_queued_ns

    def summary(self) -> str:
        lines = [
            f"puts={self.puts} ({self.bytes_put} B, {self.remote_puts} remote)",
            f"gets={self.gets} ({self.bytes_got} B, {self.remote_gets} remote)",
            f"barriers={self.barriers}",
            f"messages={self.messages} ({self.bytes_on_wire} B on wire)",
        ]
        if self.collective_calls:
            calls = ", ".join(
                f"{k}={v}" for k, v in sorted(self.collective_calls.items())
            )
            lines.append(f"collectives: {calls}")
        l1 = self.l1_hits + self.l1_misses
        if l1:
            lines.append(
                f"L1 hit rate {self.l1_hits / l1:6.2%}  "
                f"L2 hit rate "
                f"{self.l2_hits / max(1, self.l2_hits + self.l2_misses):6.2%}  "
                f"TLB hit rate "
                f"{self.tlb_hits / max(1, self.tlb_hits + self.tlb_misses):6.2%}"
            )
        if self.instructions_executed:
            lines.append(f"instructions={self.instructions_executed}")
        return "\n".join(lines)
