"""Deterministic cooperative scheduler for PE programs.

The engine implements conservative parallel discrete-event simulation with
one OS thread per PE but *no* real concurrency: threads take turns, and
the scheduler always resumes the runnable PE whose simulated clock is
smallest (ties broken by rank).  PE programs therefore interleave in a
single deterministic global order that is a legal linearization of the
simulated machine's behaviour.

PE code interacts with the engine through three primitives:

* :meth:`PEProcess.advance` — add local compute time to the PE's clock
  (no context switch; cheap enough for per-memory-access costing).
* :meth:`Engine.checkpoint` — yield so PEs with smaller clocks can run.
  Every communication operation is a checkpoint.
* :meth:`Engine.suspend` / :meth:`Engine.resume` — block the calling PE
  until another PE wakes it (used by barriers and two-sided receives).

Deadlock (no runnable PE while some are blocked) raises
:class:`~repro.errors.DeadlockError` instead of hanging.

Two scheduling strategies produce the identical event order:

* **Direct handoff** (default): the runnable set lives in a heap keyed
  by ``(clock, rank)``; a PE that yields dispatches the next PE's resume
  event itself — one OS context switch per yield — and the scheduler
  thread is only woken when a PE blocks with no successor or finishes.
* **Scheduler bounce** (``direct_handoff=False``): every yield returns
  to the scheduler thread, which rescans all PEs — the original
  reference implementation, kept as the oracle for the determinism
  tests and as the "before" arm of the perf harness.
"""

from __future__ import annotations

import enum
import heapq
import threading
from typing import Any, Callable, Sequence

from ..errors import DeadlockError, PECrashedError, SimulationError
from .spans import SpanTracker
from .trace import EventTrace, SimStats

__all__ = ["PEState", "PEProcess", "Engine"]


class PEState(enum.Enum):
    """Lifecycle of one PE process."""

    NEW = "new"
    RUNNABLE = "runnable"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


class PEProcess:
    """Handle for one PE's thread, clock and state."""

    def __init__(self, engine: "Engine", rank: int):
        self.engine = engine
        self.rank = rank
        self.clock: float = 0.0
        self.state = PEState.NEW
        self.result: Any = None
        self.error: BaseException | None = None
        # Binary baton: held (locked) while the PE is parked; releasing
        # it is the dispatch.  A bare lock is one futex op per
        # park/dispatch pair — measurably cheaper than an Event's
        # condition machinery on the yield-heavy hot path.
        self._baton = threading.Lock()
        self._baton.acquire()
        self._thread: threading.Thread | None = None
        #: Opaque slot for the runtime layer to attach its per-PE context.
        self.context: Any = None

    # -- clock ---------------------------------------------------------

    def advance(self, dt: float) -> None:
        """Add ``dt`` ns of local work to this PE's clock (no yield)."""
        if dt < 0:
            raise SimulationError(f"PE{self.rank}: negative time advance {dt}")
        self.clock += dt

    def advance_to(self, t: float) -> None:
        """Move the clock forward to at least ``t``."""
        if t > self.clock:
            self.clock = t

    # -- thread plumbing (engine-internal) ------------------------------

    def _start(self, fn: Callable[..., Any], args: tuple) -> None:
        def body() -> None:
            self._baton.acquire()
            try:
                self.result = fn(*args)
                self.state = PEState.DONE
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                self.error = exc
                self.state = PEState.FAILED
            finally:
                self.engine._sched_wake.set()

        self._thread = threading.Thread(
            target=body, name=f"pe-{self.rank}", daemon=True
        )
        self.state = PEState.RUNNABLE
        self._thread.start()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PEProcess(rank={self.rank}, clock={self.clock:.1f}, {self.state.value})"


class Engine:
    """Owns the PE processes and runs the cooperative schedule."""

    def __init__(self, n_pes: int, *, trace: bool = False,
                 direct_handoff: bool = True):
        if n_pes <= 0:
            raise SimulationError("need at least one PE")
        self.n_pes = n_pes
        self.pes = [PEProcess(self, r) for r in range(n_pes)]
        self.trace = EventTrace(enabled=trace)
        self.spans = SpanTracker(self)
        self.stats = SimStats()
        self._sched_wake = threading.Event()
        self._current: PEProcess | None = None
        self._running = False
        self._direct = direct_handoff
        #: Runnable-set heap of ``(clock, rank)`` entries (direct mode).
        #: Entries are lazily invalidated: one is live iff its PE is
        #: RUNNABLE and its recorded clock matches the PE's clock.
        self._runq: list[tuple[float, int]] = []

    # -- program entry ---------------------------------------------------

    def run(
        self,
        fn: Callable[..., Any],
        args_per_pe: Sequence[tuple] | None = None,
    ) -> list[Any]:
        """Run ``fn`` on every PE and return the per-rank results.

        ``fn`` is invoked as ``fn(pe_process, *extra)`` where ``extra`` is
        ``args_per_pe[rank]`` (empty by default).  Raises the first PE
        failure (annotated with its rank) or :class:`DeadlockError`.

        A PE that died of an *injected crash*
        (:class:`~repro.errors.PECrashedError`) is not a simulation
        failure: its result slot stays ``None`` and the run completes
        with the survivors' results.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        try:
            self._runq.clear()
            for pe in self.pes:
                extra = tuple(args_per_pe[pe.rank]) if args_per_pe else ()
                pe._start(fn, (pe, *extra))
                if self._direct:
                    heapq.heappush(self._runq, (pe.clock, pe.rank))
            self._schedule_loop()
        finally:
            self._running = False
        for pe in self.pes:
            if pe.state is PEState.FAILED:
                assert pe.error is not None
                if isinstance(pe.error, PECrashedError):
                    continue  # injected crash; survivors' results stand
                raise SimulationError(
                    f"PE {pe.rank} failed at t={pe.clock:.1f} ns"
                ) from pe.error
        return [pe.result for pe in self.pes]

    # -- primitives used by the runtime layer ----------------------------

    @property
    def current(self) -> PEProcess:
        """The PE process whose thread is currently executing."""
        if self._current is None:
            raise SimulationError("no PE is running (call from PE code only)")
        return self._current

    def checkpoint(self) -> None:
        """Yield; the scheduler resumes the smallest-clock runnable PE.

        Called from PE threads at every communication point.  Cheap fast
        path: if the calling PE still has the smallest clock it keeps
        running without a context switch.
        """
        me = self.current
        if self._direct:
            top = self._peek_runnable_clock()
            if top is None or top >= me.clock:
                return
            me.state = PEState.RUNNABLE
            # me.clock > top, so the peeked entry stays at the heap root
            # and _pop_next hands off to it, never back to me.
            heapq.heappush(self._runq, (me.clock, me.rank))
            nxt = self._pop_next()
            assert nxt is not None
            self._handoff(me, nxt)
            return
        if self._min_other_runnable_clock() >= me.clock:
            return
        me.state = PEState.RUNNABLE
        self._switch_out(me)

    def suspend(self) -> None:
        """Block the calling PE until :meth:`resume` is called for it."""
        me = self.current
        me.state = PEState.BLOCKED
        if self._direct:
            nxt = self._pop_next()
            if nxt is None:
                # Nothing runnable: let the scheduler thread decide
                # between completion and deadlock.
                self._switch_out(me)
            else:
                self._handoff(me, nxt)
            return
        self._switch_out(me)

    def resume(self, rank: int, at_time: float | None = None) -> None:
        """Make a blocked PE runnable again, optionally at ``at_time``."""
        pe = self.pes[rank]
        if pe.state is not PEState.BLOCKED:
            raise SimulationError(
                f"cannot resume PE {rank} in state {pe.state.value}"
            )
        if at_time is not None:
            pe.advance_to(at_time)
        pe.state = PEState.RUNNABLE
        if self._direct:
            heapq.heappush(self._runq, (pe.clock, pe.rank))

    def record(self, kind: str, detail: str = "") -> None:
        """Trace an event attributed to the current PE."""
        me = self.current
        self.trace.record(me.clock, me.rank, kind, detail)

    @property
    def elapsed_ns(self) -> float:
        """Simulated makespan so far: the maximum PE clock."""
        return max(pe.clock for pe in self.pes)

    # -- scheduler internals ----------------------------------------------

    def _min_other_runnable_clock(self) -> float:
        best = float("inf")
        me = self._current
        for pe in self.pes:
            if pe is me:
                continue
            if pe.state is PEState.RUNNABLE and pe.clock < best:
                best = pe.clock
        return best

    def _pick_next(self) -> PEProcess | None:
        best: PEProcess | None = None
        for pe in self.pes:
            if pe.state is PEState.RUNNABLE:
                if best is None or pe.clock < best.clock:
                    best = pe
        return best

    def _pop_next(self) -> PEProcess | None:
        """Pop the live ``(clock, rank)``-smallest runnable PE, if any."""
        q = self._runq
        pes = self.pes
        while q:
            clock, rank = q[0]
            pe = pes[rank]
            if pe.state is PEState.RUNNABLE:
                if pe.clock == clock:
                    heapq.heappop(q)
                    return pe
                # A runnable PE's clock moved since it was enqueued
                # (defensive: no current caller does this) — re-key it.
                heapq.heapreplace(q, (pe.clock, rank))
            else:
                heapq.heappop(q)
        return None

    def _peek_runnable_clock(self) -> float | None:
        """Clock of the live heap root without removing it."""
        q = self._runq
        pes = self.pes
        while q:
            clock, rank = q[0]
            pe = pes[rank]
            if pe.state is PEState.RUNNABLE:
                if pe.clock == clock:
                    return clock
                heapq.heapreplace(q, (pe.clock, rank))
            else:
                heapq.heappop(q)
        return None

    def _handoff(self, me: PEProcess, nxt: PEProcess) -> None:
        """Dispatch ``nxt`` directly from ``me``'s thread, then park."""
        nxt.state = PEState.RUNNING
        self._current = nxt
        nxt._baton.release()
        me._baton.acquire()

    def _switch_out(self, me: PEProcess) -> None:
        """Hand control back to the scheduler and wait to be resumed."""
        self._sched_wake.set()
        me._baton.acquire()

    def _schedule_loop(self) -> None:
        while True:
            nxt = self._pop_next() if self._direct else self._pick_next()
            if nxt is None:
                blocked = [p.rank for p in self.pes if p.state is PEState.BLOCKED]
                failed = [p.rank for p in self.pes if p.state is PEState.FAILED]
                # Injected crashes are expected deaths: survivors left
                # blocked behind one still deadlock rather than silently
                # ending the run with half-finished PEs.
                hard_failed = [
                    p.rank for p in self.pes
                    if p.state is PEState.FAILED
                    and not isinstance(p.error, PECrashedError)
                ]
                if blocked and not hard_failed:
                    crashed = [r for r in failed if r not in hard_failed]
                    hint = (f" (PEs {crashed} crashed by fault injection)"
                            if crashed else
                            " (mismatched barrier or receive?)")
                    raise DeadlockError(
                        f"deadlock: PEs {blocked} are blocked and none are "
                        f"runnable{hint}"
                    )
                # All DONE, or a failure left peers blocked — run() will
                # surface the PE error.
                return
            nxt.state = PEState.RUNNING
            self._current = nxt
            self._sched_wake.clear()
            nxt._baton.release()
            self._sched_wake.wait()
            self._current = None
