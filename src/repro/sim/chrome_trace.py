"""Chrome-trace (``chrome://tracing`` / Perfetto) export.

Converts an :class:`~repro.sim.trace.EventTrace` into the Trace Event
Format JSON that ``chrome://tracing``, Perfetto and speedscope all read:

* span events become complete (``"ph": "X"``) events — one track per PE,
  nesting drawn from the span durations;
* instant events (the runtime's flat put/get/barrier records) become
  thread-scoped instant (``"ph": "i"``) events;
* the export metadata reports the trace's drop counters, so a bounded
  trace is never mistaken for a complete one.

Timestamps are exported in microseconds (the format's unit), after
applying the machine's host-oversubscription dilation when requested.
"""

from __future__ import annotations

import json
from typing import IO, Mapping

from .trace import EventTrace

__all__ = ["chrome_trace", "write_chrome_trace"]

#: Trace Event Format categories by span kind.
_PID = 0


def _span_name(kind: str, name: str, attrs: Mapping[str, object]) -> str:
    if kind == "stage":
        return f"stage {attrs.get('index', '?')}"
    return name


def chrome_trace(trace: EventTrace, *, time_dilation: float = 1.0) -> dict:
    """Render ``trace`` as a Trace Event Format document (a dict).

    ``time_dilation`` scales simulated nanoseconds the way
    :attr:`MachineConfig.time_dilation` scales reported clocks, so the
    exported timeline matches ``ctx.time_ns``.
    """
    scale = time_dilation / 1000.0  # ns -> µs, dilated
    events: list[dict] = []
    pes: set[int] = set()
    for e in trace:
        pes.add(e.pe)
        if e.span_id:
            kind, _, name = e.detail.partition(":")
            attrs = dict(e.attrs or {})
            args = {k: (list(v) if isinstance(v, tuple) else v)
                    for k, v in attrs.items()}
            args["span_id"] = e.span_id
            if e.parent_id:
                args["parent_id"] = e.parent_id
            events.append({
                "name": _span_name(kind, name, attrs),
                "cat": kind,
                "ph": "X",
                "ts": e.time_ns * scale,
                "dur": e.dur_ns * scale,
                "pid": _PID,
                "tid": e.pe,
                "args": args,
            })
        else:
            args = {"detail": e.detail} if e.detail else {}
            if e.attrs:
                args.update({
                    k: (list(v) if isinstance(v, tuple) else v)
                    for k, v in e.attrs.items()
                })
            if e.kind in ("fault", "retry"):
                # Injected faults and retransmissions stand out from the
                # routine put/get/barrier instants: their own category
                # (filterable in Perfetto), named by the fault kind, and
                # process-scoped for crashes so the marker spans the
                # whole timeline.
                fault_kind = str((e.attrs or {}).get("fault", e.kind))
                name = f"fault:{fault_kind}" if e.kind == "fault" else "retry"
                scope = "p" if fault_kind == "crash" else "t"
                events.append({
                    "name": name,
                    "cat": "fault",
                    "ph": "i",
                    "s": scope,
                    "ts": e.time_ns * scale,
                    "pid": _PID,
                    "tid": e.pe,
                    "args": args,
                })
                continue
            events.append({
                "name": e.kind,
                "cat": "event",
                "ph": "i",
                "s": "t",
                "ts": e.time_ns * scale,
                "pid": _PID,
                "tid": e.pe,
                "args": args,
            })
    meta = [{
        "name": "process_name",
        "ph": "M",
        "pid": _PID,
        "args": {"name": "xBGAS simulation"},
    }]
    for pe in sorted(pes):
        meta.append({
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": pe,
            "args": {"name": f"PE {pe}"},
        })
        meta.append({
            "name": "thread_sort_index",
            "ph": "M",
            "pid": _PID,
            "tid": pe,
            "args": {"sort_index": pe},
        })
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ns",
        "otherData": {
            "dropped": trace.dropped,
            "dropped_by_kind": dict(trace.dropped_by_kind),
            "recorded": len(trace),
        },
    }


def write_chrome_trace(path_or_file: "str | IO[str]", trace: EventTrace, *,
                       time_dilation: float = 1.0) -> dict:
    """Serialise :func:`chrome_trace` to ``path_or_file``; returns the doc."""
    doc = chrome_trace(trace, time_dilation=time_dilation)
    if hasattr(path_or_file, "write"):
        json.dump(doc, path_or_file)
    else:
        with open(path_or_file, "w") as fh:
            json.dump(doc, fh)
    return doc
