"""Table 1 of the paper: xBGAS matched type names and types.

The xBGAS API exposes one explicit call per supported element type — e.g.
``xbrtime_int_put`` / ``xbrtime_double_broadcast`` — instead of the
size-suffixed calls of OpenSHMEM.  This module is the single source of
truth for that mapping: each :class:`TypeInfo` records the paper's
TYPENAME, the C type it stands for, and the numpy dtype this reproduction
uses to model it.

>>> from repro.types import TYPE_TABLE, typeinfo
>>> typeinfo("uint32").nbytes
4
>>> typeinfo("double").is_float
True
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import TypeNameError

__all__ = [
    "TypeInfo",
    "TYPE_TABLE",
    "TYPENAMES",
    "FLOAT_TYPENAMES",
    "INTEGRAL_TYPENAMES",
    "typeinfo",
    "dtype_of",
]


@dataclass(frozen=True)
class TypeInfo:
    """One row of Table 1.

    Attributes
    ----------
    typename:
        The xBGAS TYPENAME used in function names (``int``, ``uint64``...).
    ctype:
        The C type the TYPENAME maps to in the paper (``unsigned long``...).
    dtype:
        The numpy dtype used to model the C type in this reproduction.
    """

    typename: str
    ctype: str
    dtype: np.dtype

    @property
    def nbytes(self) -> int:
        """Size of one element in bytes."""
        return int(self.dtype.itemsize)

    @property
    def is_float(self) -> bool:
        """True for floating-point types (no bitwise reductions allowed)."""
        return self.dtype.kind == "f"

    @property
    def is_signed(self) -> bool:
        return self.dtype.kind in ("i", "f")


def _row(typename: str, ctype: str, np_dtype: object) -> TypeInfo:
    return TypeInfo(typename=typename, ctype=ctype, dtype=np.dtype(np_dtype))


# The 24 rows of Table 1, in the paper's order.  C ``long double`` has no
# portable numpy equivalent of fixed width; ``np.longdouble`` preserves the
# platform semantics (80-bit extended on x86, 128-bit elsewhere), which is
# exactly what the C type does.
TYPE_TABLE: tuple[TypeInfo, ...] = (
    _row("float", "float", np.float32),
    _row("double", "double", np.float64),
    _row("longdouble", "long double", np.longdouble),
    _row("char", "char", np.int8),
    _row("uchar", "unsigned char", np.uint8),
    _row("schar", "signed char", np.int8),
    _row("ushort", "unsigned short", np.uint16),
    _row("short", "short", np.int16),
    _row("uint", "unsigned int", np.uint32),
    _row("int", "int", np.int32),
    _row("ulong", "unsigned long", np.uint64),
    _row("long", "long", np.int64),
    _row("ulonglong", "unsigned long long", np.uint64),
    _row("longlong", "long long", np.int64),
    _row("uint8", "uint8_t", np.uint8),
    _row("int8", "int8_t", np.int8),
    _row("uint16", "uint16_t", np.uint16),
    _row("int16", "int16_t", np.int16),
    _row("uint32", "uint32_t", np.uint32),
    _row("int32", "int32_t", np.int32),
    _row("uint64", "uint64_t", np.uint64),
    _row("int64", "int64_t", np.int64),
    _row("size", "size_t", np.uint64),
    _row("ptrdiff", "ptrdiff_t", np.int64),
)

_BY_NAME: dict[str, TypeInfo] = {t.typename: t for t in TYPE_TABLE}

TYPENAMES: tuple[str, ...] = tuple(t.typename for t in TYPE_TABLE)
FLOAT_TYPENAMES: tuple[str, ...] = tuple(
    t.typename for t in TYPE_TABLE if t.is_float
)
INTEGRAL_TYPENAMES: tuple[str, ...] = tuple(
    t.typename for t in TYPE_TABLE if not t.is_float
)


def typeinfo(typename: str) -> TypeInfo:
    """Look up one Table 1 row by TYPENAME.

    Raises
    ------
    TypeNameError
        If ``typename`` is not one of the 24 supported names.
    """
    try:
        return _BY_NAME[typename]
    except KeyError:
        raise TypeNameError(
            f"unknown xBGAS TYPENAME {typename!r}; expected one of {TYPENAMES}"
        ) from None


def dtype_of(typename: str) -> np.dtype:
    """The numpy dtype modelling ``typename``'s C type."""
    return typeinfo(typename).dtype
