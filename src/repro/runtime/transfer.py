"""Low-level strided transfer engine behind ``get``/``put``.

The paper's runtime "directly translates these high-level function calls
into assembly instructions whenever possible" and unrolls the generated
loop when ``nelems`` exceeds a threshold (section 3.3).  This engine
offers both fidelity levels of the reproduction:

* ``model`` (default) — functional copy with numpy strided views plus an
  analytic cost that mirrors the generated loop's instruction counts,
  the local cache/TLB traffic and one network transfer for the payload.
* ``isa`` — actually generates xBGAS assembly for the element loop
  (``eld``/``esd`` with the target's object ID in the extended register,
  unrolled above the threshold), executes it on the PE's functional core
  and charges the measured cycle/network time.  Remote elements then cost
  one network operation each — the true per-element behaviour of remote
  load/store instructions.

Both paths move exactly the same bytes; the test suite checks them
against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import (
    AddressError,
    CollectiveArgumentError,
    TransferTimeoutError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import Machine

__all__ = ["TransferHandle", "TransferEngine"]

MASK64 = (1 << 64) - 1

#: Instructions per loop iteration without unrolling: load, store, two
#: pointer bumps and the loop branch.
_LOOP_INSTRS = 5
#: Loop-carried instructions amortised away by unrolling (the pointer
#: bumps and branch are shared by ``unroll_factor`` elements).
_LOOP_OVERHEAD_INSTRS = 3
#: Fixed call/setup instructions per transfer.
_SETUP_INSTRS = 12


@dataclass
class TransferHandle:
    """Completion token for a non-blocking transfer."""

    kind: str
    nbytes: int
    complete_at: float
    done: bool = False


class TransferEngine:
    """Per-PE implementation of blocking and non-blocking get/put."""

    def __init__(self, machine: "Machine", rank: int):
        self.machine = machine
        self.rank = rank
        self.pe = machine.engine.pes[rank]
        self.cfg = machine.config
        # Keyed by id(handle): O(1) insert/discard regardless of how many
        # transfers are outstanding (handles are kept alive by the dict
        # itself, so ids cannot be recycled while registered).
        self._pending: dict[int, TransferHandle] = {}
        self._loop_ns_cache: dict[int, float] = {}

    # -- validation helpers -------------------------------------------------

    def _check_args(self, nelems: int, stride: int, target: int) -> None:
        if nelems < 0:
            raise CollectiveArgumentError(f"nelems must be >= 0, got {nelems}")
        if stride < 1:
            raise CollectiveArgumentError(f"stride must be >= 1, got {stride}")
        if not 0 <= target < self.cfg.n_pes:
            raise CollectiveArgumentError(
                f"pe {target} out of range [0, {self.cfg.n_pes})"
            )

    def _views(
        self, dest: int, src: int, nelems: int, stride: int,
        target: int, dtype: np.dtype, dest_remote: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        mems = self.machine.memories
        if dest_remote:
            dmem, smem = mems[target], mems[self.rank]
        else:
            dmem, smem = mems[self.rank], mems[target]
        try:
            dview = dmem.view(dest, dtype, nelems, stride)
            sview = smem.view(src, dtype, nelems, stride)
        except AddressError as exc:
            raise AddressError(f"PE {self.rank} transfer: {exc}") from exc
        return dview, sview

    # -- cost model -----------------------------------------------------------

    def loop_overhead_ns(self, nelems: int) -> float:
        """Instruction cost of the generated element loop (section 3.3).

        Memoized per ``nelems``: collectives call this with the same few
        chunk sizes thousands of times per run, and the config is frozen.
        """
        ns = self._loop_ns_cache.get(nelems)
        if ns is not None:
            return ns
        if nelems <= 0:
            ns = 0.0
        else:
            cfg = self.cfg
            if nelems > cfg.unroll_threshold:
                per_elem = (_LOOP_INSTRS - _LOOP_OVERHEAD_INSTRS) + (
                    _LOOP_OVERHEAD_INSTRS / cfg.unroll_factor
                )
            else:
                per_elem = float(_LOOP_INSTRS)
            ns = (_SETUP_INSTRS + per_elem * nelems) * cfg.cycle_ns
        self._loop_ns_cache[nelems] = ns
        return ns

    def _local_cost(
        self, addr: int, nelems: int, elem_bytes: int, stride: int, write: bool
    ) -> float:
        hier = self.machine.hierarchy_of(self.rank)
        return hier.access_strided(addr, nelems, elem_bytes, stride, write)

    def _remote_cost(
        self, target: int, addr: int, nelems: int, elem_bytes: int,
        stride: int, write: bool,
    ) -> float:
        """Target-side memory time, folded into the message latency.

        One-sided operations do not involve the target CPU, but its
        memory system still serves the access (and its caches see the
        traffic — pollution included deliberately).  The access resolves
        through the requester's OLB to a physical address, so the target
        TLB is bypassed (paper section 3.2).
        """
        hier = self.machine.hierarchy_of(target)
        return hier.access_strided(addr, nelems, elem_bytes, stride, write,
                                   use_tlb=False)

    # -- reliable delivery under fault injection ----------------------------------

    def _reliable_put(
        self, dview: np.ndarray, sview: np.ndarray, dest: int, nelems: int,
        eb: int, stride: int, target: int, nbytes: int,
    ) -> None:
        """Remote put with ack/retry semantics when faults are enabled.

        Each attempt is a fresh message (new sequence number, fresh fault
        draw).  With a :class:`~repro.faults.plan.RetryConfig` the sender
        waits for an acknowledgement: a dropped or corrupted payload is
        detected at timeout and retransmitted with exponential backoff,
        up to ``max_retries`` before :class:`TransferTimeoutError`.
        Without one, losses are silent and corruption lands in memory —
        the raw unreliable substrate.
        """
        machine = self.machine
        injector = machine.faults
        retry = machine.retry
        network = machine.network
        pe = self.pe
        timeout = retry.timeout_ns if retry is not None else 0.0
        attempts = 1 + (retry.max_retries if retry is not None else 0)
        wcost = self._remote_cost(target, dest, nelems, eb, stride, write=True)
        for attempt in range(attempts):
            res = network.send(pe.clock, self.rank, target, nbytes)
            pe.advance_to(res.t_source_free)
            fault = res.fault
            if (fault is not None and fault.kind in ("drop", "corrupt")
                    and retry is not None):
                injector.note_retry(pe.clock, self.rank, target,
                                    fault.seq, attempt, timeout)
                pe.advance(timeout)
                timeout *= retry.backoff
                continue
            if fault is not None and fault.kind == "drop":
                return  # unreliable mode: the payload is simply gone
            network.note_delivery(res.t_delivered + wcost)
            dview[:] = sview
            if fault is not None and fault.kind == "corrupt":
                injector.corrupt_payload(dview, fault)
                return
            if retry is not None:
                # Positive acknowledgement: the sender may not declare
                # success until the ack crosses back.
                pe.advance_to(res.t_delivered + wcost
                              + machine.config.transport.latency_ns)
            return
        raise TransferTimeoutError(
            f"PE {self.rank}: put of {nbytes}B to PE {target} lost "
            f"{attempts} times (max_retries={retry.max_retries} exhausted)"
        )

    def _reliable_get(
        self, dview: np.ndarray, sview: np.ndarray, dest: int, src: int,
        nelems: int, eb: int, stride: int, target: int, nbytes: int,
    ) -> None:
        """Remote get counterpart of :meth:`_reliable_put` (the round
        trip is its own acknowledgement, so success needs no extra ack
        wait)."""
        machine = self.machine
        injector = machine.faults
        retry = machine.retry
        network = machine.network
        pe = self.pe
        timeout = retry.timeout_ns if retry is not None else 0.0
        attempts = 1 + (retry.max_retries if retry is not None else 0)
        rcost = self._remote_cost(target, src, nelems, eb, stride, write=False)
        for attempt in range(attempts):
            res = network.fetch(pe.clock, self.rank, target, nbytes)
            fault = res.fault
            if (fault is not None and fault.kind in ("drop", "corrupt")
                    and retry is not None):
                injector.note_retry(pe.clock, self.rank, target,
                                    fault.seq, attempt, timeout)
                pe.advance(timeout)
                timeout *= retry.backoff
                continue
            if fault is not None and fault.kind == "drop":
                return  # response lost; destination buffer untouched
            pe.advance_to(res.t_complete + rcost)
            pe.advance(self._local_cost(dest, nelems, eb, stride, write=True))
            dview[:] = sview
            if fault is not None and fault.kind == "corrupt":
                injector.corrupt_payload(dview, fault)
            return
        raise TransferTimeoutError(
            f"PE {self.rank}: get of {nbytes}B from PE {target} lost "
            f"{attempts} times (max_retries={retry.max_retries} exhausted)"
        )

    # -- blocking put -------------------------------------------------------------

    def put(
        self, dest: int, src: int, nelems: int, stride: int, target: int,
        dtype: np.dtype,
    ) -> None:
        """One-sided write of ``nelems`` elements to ``target``."""
        self._check_args(nelems, stride, target)
        st = self.machine.stats
        st.puts += 1
        if nelems == 0:
            return
        eb = dtype.itemsize
        nbytes = nelems * eb
        st.bytes_put += nbytes
        dview, sview = self._views(dest, src, nelems, stride, target, dtype, True)
        engine = self.machine.engine
        engine.checkpoint()
        traced = engine.trace.enabled
        if traced:
            engine.record("put", f"{nbytes}B -> PE{target} @{dest:#x}")
            engine.spans.begin(self.rank, "op", "put", {
                "bytes": nbytes, "nelems": nelems, "stride": stride,
                "target": target, "remote": target != self.rank,
                "dest": dest,
            })
        try:
            if self.cfg.fidelity == "isa":
                self.machine.isa_transfer(self.rank, dest, src, nelems,
                                          stride, target, eb, is_put=True)
                return
            pe = self.pe
            pe.advance(self.loop_overhead_ns(nelems))
            pe.advance(self._local_cost(src, nelems, eb, stride, write=False))
            if target == self.rank:
                pe.advance(self._local_cost(dest, nelems, eb, stride,
                                            write=True))
                dview[:] = sview
                return
            st.remote_puts += 1
            pe.advance(self.machine.olbs[self.rank].lookup_ns)
            if self.machine.faults is not None:
                self._reliable_put(dview, sview, dest, nelems, eb, stride,
                                   target, nbytes)
                return
            res = self.machine.network.send(pe.clock, self.rank, target,
                                            nbytes)
            pe.advance_to(res.t_source_free)
            wcost = self._remote_cost(target, dest, nelems, eb, stride,
                                      write=True)
            self.machine.network.note_delivery(res.t_delivered + wcost)
            dview[:] = sview
        finally:
            if traced:
                engine.spans.end(self.rank)

    # -- blocking get -------------------------------------------------------------

    def get(
        self, dest: int, src: int, nelems: int, stride: int, target: int,
        dtype: np.dtype,
    ) -> None:
        """One-sided read of ``nelems`` elements from ``target``."""
        self._check_args(nelems, stride, target)
        st = self.machine.stats
        st.gets += 1
        if nelems == 0:
            return
        eb = dtype.itemsize
        nbytes = nelems * eb
        st.bytes_got += nbytes
        dview, sview = self._views(dest, src, nelems, stride, target, dtype, False)
        engine = self.machine.engine
        engine.checkpoint()
        traced = engine.trace.enabled
        if traced:
            engine.record("get", f"{nbytes}B <- PE{target} @{src:#x}")
            engine.spans.begin(self.rank, "op", "get", {
                "bytes": nbytes, "nelems": nelems, "stride": stride,
                "target": target, "remote": target != self.rank,
                "dest": dest,
            })
        try:
            if self.cfg.fidelity == "isa":
                self.machine.isa_transfer(self.rank, dest, src, nelems,
                                          stride, target, eb, is_put=False)
                return
            pe = self.pe
            pe.advance(self.loop_overhead_ns(nelems))
            if target == self.rank:
                pe.advance(self._local_cost(src, nelems, eb, stride,
                                            write=False))
                pe.advance(self._local_cost(dest, nelems, eb, stride,
                                            write=True))
                dview[:] = sview
                return
            st.remote_gets += 1
            pe.advance(self.machine.olbs[self.rank].lookup_ns)
            if self.machine.faults is not None:
                self._reliable_get(dview, sview, dest, src, nelems, eb,
                                   stride, target, nbytes)
                return
            rcost = self._remote_cost(target, src, nelems, eb, stride,
                                      write=False)
            res = self.machine.network.fetch(pe.clock, self.rank, target,
                                             nbytes)
            pe.advance_to(res.t_complete + rcost)
            pe.advance(self._local_cost(dest, nelems, eb, stride, write=True))
            dview[:] = sview
        finally:
            if traced:
                engine.spans.end(self.rank)

    # -- non-blocking variants ---------------------------------------------------

    def put_nb(
        self, dest: int, src: int, nelems: int, stride: int, target: int,
        dtype: np.dtype,
    ) -> TransferHandle:
        """Initiate a put; returns a handle to wait on.

        The source buffer is captured at initiation (as with the real
        non-blocking calls, it must not be reused before completion).

        Under fault injection the non-blocking calls degrade to the
        blocking reliable path (retransmission is inherently
        synchronous) and return an already-completed handle.
        """
        if self.machine.faults is not None:
            self.put(dest, src, nelems, stride, target, dtype)
            return TransferHandle("put", nelems * dtype.itemsize,
                                  self.pe.clock, done=True)
        self._check_args(nelems, stride, target)
        st = self.machine.stats
        st.puts += 1
        eb = dtype.itemsize
        nbytes = nelems * eb
        if nelems == 0:
            return TransferHandle("put", 0, self.pe.clock, done=True)
        st.bytes_put += nbytes
        dview, sview = self._views(dest, src, nelems, stride, target, dtype, True)
        engine = self.machine.engine
        engine.checkpoint()
        traced = engine.trace.enabled
        if traced:
            engine.spans.begin(self.rank, "op", "put", {
                "bytes": nbytes, "nelems": nelems, "stride": stride,
                "target": target, "remote": target != self.rank,
                "dest": dest, "nb": True,
            })
        try:
            pe = self.pe
            pe.advance(self.loop_overhead_ns(nelems))
            pe.advance(self._local_cost(src, nelems, eb, stride, write=False))
            if target == self.rank:
                pe.advance(self._local_cost(dest, nelems, eb, stride,
                                            write=True))
                dview[:] = sview
                return TransferHandle("put", nbytes, pe.clock, done=True)
            st.remote_puts += 1
            pe.advance(self.machine.olbs[self.rank].lookup_ns)
            res = self.machine.network.send(pe.clock, self.rank, target,
                                            nbytes)
            pe.advance_to(res.t_source_free)
            wcost = self._remote_cost(target, dest, nelems, eb, stride,
                                      write=True)
            done_at = res.t_delivered + wcost
            self.machine.network.note_delivery(done_at)
            dview[:] = sview
            handle = TransferHandle("put", nbytes, done_at)
            self._pending[id(handle)] = handle
            return handle
        finally:
            if traced:
                engine.spans.end(self.rank)

    def get_nb(
        self, dest: int, src: int, nelems: int, stride: int, target: int,
        dtype: np.dtype,
    ) -> TransferHandle:
        """Initiate a get; data is usable after :meth:`wait`.

        Degrades to the blocking reliable path under fault injection,
        like :meth:`put_nb`.
        """
        if self.machine.faults is not None:
            self.get(dest, src, nelems, stride, target, dtype)
            return TransferHandle("get", nelems * dtype.itemsize,
                                  self.pe.clock, done=True)
        self._check_args(nelems, stride, target)
        st = self.machine.stats
        st.gets += 1
        eb = dtype.itemsize
        nbytes = nelems * eb
        if nelems == 0:
            return TransferHandle("get", 0, self.pe.clock, done=True)
        st.bytes_got += nbytes
        dview, sview = self._views(dest, src, nelems, stride, target, dtype, False)
        engine = self.machine.engine
        engine.checkpoint()
        traced = engine.trace.enabled
        if traced:
            engine.spans.begin(self.rank, "op", "get", {
                "bytes": nbytes, "nelems": nelems, "stride": stride,
                "target": target, "remote": target != self.rank,
                "dest": dest, "nb": True,
            })
        try:
            pe = self.pe
            pe.advance(self.loop_overhead_ns(nelems))
            if target == self.rank:
                pe.advance(self._local_cost(src, nelems, eb, stride,
                                            write=False))
                pe.advance(self._local_cost(dest, nelems, eb, stride,
                                            write=True))
                dview[:] = sview
                return TransferHandle("get", nbytes, pe.clock, done=True)
            st.remote_gets += 1
            pe.advance(self.machine.olbs[self.rank].lookup_ns)
            rcost = self._remote_cost(target, src, nelems, eb, stride,
                                      write=False)
            res = self.machine.network.fetch(pe.clock, self.rank, target,
                                             nbytes)
            wcost = self._local_cost(dest, nelems, eb, stride, write=True)
            dview[:] = sview
            handle = TransferHandle("get", nbytes,
                                    res.t_complete + rcost + wcost)
            self._pending[id(handle)] = handle
            return handle
        finally:
            if traced:
                engine.spans.end(self.rank)

    # -- remote atomics (xBGAS eamo*.d) ---------------------------------------------

    def amo(self, addr: int, value: int, target: int, op: str,
            dtype: np.dtype) -> int:
        """One-sided 64-bit fetch-and-op at ``addr`` on ``target``.

        Returns the old value.  Unlike the get-modify-put idiom, the
        read-modify-write executes atomically at the target's memory —
        no lost updates under contention.
        """
        from ..isa.cpu import amo_apply

        self._check_args(1, 1, target)
        if dtype.itemsize != 8 or dtype.kind not in "iu":
            raise CollectiveArgumentError(
                f"AMOs operate on 64-bit integer types, not {dtype}"
            )
        st = self.machine.stats
        st.amos += 1
        machine = self.machine
        mem = machine.memories[target]
        mem.check(addr, 8)
        engine = machine.engine
        engine.checkpoint()
        traced = engine.trace.enabled
        if traced:
            engine.spans.begin(self.rank, "op", "amo", {
                "bytes": 8, "op": op, "target": target,
                "remote": target != self.rank,
            })
        try:
            pe = self.pe
            signed = dtype.kind == "i"
            if self.cfg.fidelity == "isa":
                old = machine.isa_amo(self.rank, addr, int(value) & MASK64,
                                      target, op)
                return old - (1 << 64) if signed and old >> 63 else old
            if target == self.rank:
                pe.advance(self._local_cost(addr, 1, 8, 1, write=True))
                old = mem.load(addr, 8, signed=False)
                mem.store(addr, 8, amo_apply(op, old, int(value) & MASK64))
                return old - (1 << 64) if signed and old >> 63 else old
            pe.advance(machine.olbs[self.rank].lookup_ns)
            rcost = self._remote_cost(target, addr, 1, 8, 1, write=True)
            # AMOs ride the NIC's reliable execution unit: exempt from
            # message-fault injection (there is no software retry for a
            # half-applied atomic).
            res = machine.network.fetch(pe.clock, self.rank, target, 8,
                                        faultable=False)
            pe.advance_to(res.t_complete + rcost)
            old = mem.load(addr, 8, signed=False)
            mem.store(addr, 8, amo_apply(op, old, int(value) & MASK64))
            return old - (1 << 64) if signed and old >> 63 else old
        finally:
            if traced:
                engine.spans.end(self.rank)

    # -- completion ---------------------------------------------------------------

    def wait(self, handle: TransferHandle) -> None:
        """Block (in simulated time) until ``handle`` completes."""
        if not handle.done:
            self.pe.advance_to(handle.complete_at)
            handle.done = True
        self._pending.pop(id(handle), None)

    def quiet(self) -> None:
        """Complete every outstanding non-blocking transfer of this PE.

        Completion order does not matter for timing (``advance_to`` is a
        running max), so handles are drained in O(1) pops.
        """
        pending = self._pending
        pe = self.pe
        while pending:
            _, handle = pending.popitem()
            if not handle.done:
                pe.advance_to(handle.complete_at)
                handle.done = True
