"""Deferred-execution superstep mode (BSP-style request batching).

``with ctx.superstep():`` buffers the body's ``put``/``get`` calls and
collective calls into a per-step request queue instead of executing
them — the bsponmpi request-queue design, adapted to one-sided xBGAS
semantics.  At the step's sync point (the ``with`` exit, or an explicit
``ctx.barrier()`` inside the body) the queue **flushes**:

1. deferred one-sided transfers run first, coalesced — transfers with
   the same ``(kind, peer, dtype, stride)`` whose source *and*
   destination ranges are exactly contiguous merge into single larger
   transfers;
2. deferred collectives then run in call order, batched by the
   coalescing key ``(collective, root, group, dtype)``: same-key
   same-shape calls of a widenable algorithm merge into **one wider
   collective** with per-request sub-ranges
   (:func:`~repro.collectives.schedule.fuse.compile_widened`), and the
   remaining compiled schedules of a compatible batch interleave into
   one fused schedule under shared barriers
   (:func:`~repro.collectives.schedule.fuse.fuse_schedules`).

The flush executes through the ordinary schedule executor, so sim, mp
and vec backends run supersteps unmodified and byte-identical to eager
mode.  Ordering contract (the BSP step horizon): deferred operations
observe memory as of the flush, transfers commit before collectives,
and collectives commit in call order — a race-free eager program that
keeps its deferred operations' buffers disjoint within one step sees
identical bytes.

Determinism requirement: collective batching decisions must agree on
every rank (they feed one shared fused schedule), so a collective only
joins a batch when all its buffer addresses are symmetric — symmetric
allocations sit at rank-uniform addresses, making the conflict and
widening analysis SPMD-deterministic.  Everything else (private
destinations, ``body``-based algorithms, vector collectives) still
defers, but flushes as an individual call.

Fusion failures (:class:`~repro.errors.FusionError`) downgrade to
sequential execution — batching is a performance layer, never a
semantic one.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from ..errors import FusionError, RuntimeStateError

__all__ = ["Superstep", "superstep_context"]

#: Methods the superstep shadows on the context instance.
_SHADOWED = ("put", "get", "barrier")


@dataclass
class _Transfer:
    """One deferred one-sided transfer."""

    kind: str  # "put" | "get"
    dest: int
    src: int
    nelems: int
    stride: int
    pe: int
    dtype: np.dtype


@dataclass
class _Request:
    """One deferred collective call."""

    prepared: object  # PreparedCollective
    collective: str
    algorithm: str
    root: int | None
    op: str | None
    dest: int
    src: int
    nelems: int
    stride: int
    #: May this request join a fused batch?  Requires a compiled
    #: schedule and rank-uniform (symmetric) addresses — see module
    #: docstring.
    batchable: bool = False

    @property
    def span(self) -> int:
        if self.nelems == 0:
            return 0
        itemsize = self.prepared.dtype.itemsize
        return ((self.nelems - 1) * self.stride + 1) * itemsize

    @property
    def widen_key(self) -> tuple:
        return (self.collective, self.algorithm, self.root)


@dataclass
class _Opaque:
    """A deferred collective replayed as-is at flush (no fusion)."""

    label: str
    thunk: Callable


class Superstep:
    """The request queue of one active superstep (see module docstring).

    Public attributes: ``pending`` (deferred operation count) and
    ``flushes`` (completed flush count), mainly for tests and examples.
    """

    def __init__(self, ctx) -> None:
        self._ctx = ctx
        self._queue: list = []
        self.flushes = 0

    @property
    def pending(self) -> int:
        return len(self._queue)

    # -- deferral (called from the shadowed methods / front-ends) -----

    def defer_transfer(self, kind: str, dest: int, src: int, nelems: int,
                       stride: int, pe: int, dtype: np.dtype) -> None:
        self._queue.append(_Transfer(kind, dest, src, nelems, stride, pe,
                                     dtype))

    def defer_collective(self, prepared, *, collective: str,
                         root: int | None, op: str | None, dest: int,
                         src: int, nelems: int, stride: int) -> None:
        """Queue a validated, compiled collective call.

        Validation and compilation already happened in ``prepare_*`` —
        a malformed call raises at the call site, exactly like eager
        mode, never at the (distant) flush.
        """
        algorithm = prepared.attrs.get("algorithm", "")
        ctx = self._ctx
        batchable = (
            prepared.schedule is not None
            and ctx.is_symmetric(dest) and ctx.is_symmetric(src)
        )
        self._queue.append(_Request(
            prepared, collective, algorithm, root, op, dest, src,
            nelems, stride, batchable=batchable))

    def defer_opaque(self, label: str, thunk: Callable) -> None:
        self._queue.append(_Opaque(label, thunk))

    # -- flush --------------------------------------------------------

    def flush(self) -> None:
        """Execute and clear the queue (shadows must be disarmed)."""
        queue, self._queue = self._queue, []
        if not queue:
            return
        self.flushes += 1
        ctx = self._ctx
        self._run_transfers(ctx,
                            [it for it in queue
                             if isinstance(it, _Transfer)])
        batch: list = []
        for item in queue:
            if isinstance(item, _Transfer):
                continue
            if isinstance(item, _Opaque):
                self._run_batch(ctx, batch)
                batch = []
                item.thunk()
            elif self._joins(batch, item):
                batch.append(item)
            else:
                self._run_batch(ctx, batch)
                batch = [item] if item.batchable else []
                if not item.batchable:
                    item.prepared.run(ctx)
        self._run_batch(ctx, batch)

    def discard(self) -> None:
        self._queue.clear()

    # -- transfers ----------------------------------------------------

    @staticmethod
    def _coalesce(xfers: list) -> Iterator[_Transfer]:
        """Merge exactly-contiguous same-lane transfers.

        Lanes are ``(kind, peer, dtype, stride)``; within a stride-1
        lane, transfers sorted by ``(dest, src)`` merge while both the
        destination *and* source ranges continue without a gap.
        """
        lanes: dict = {}
        for t in xfers:
            lanes.setdefault(
                (t.kind, t.pe, str(t.dtype), t.stride), []).append(t)
        for (kind, pe, _dt, stride), lane in sorted(
                lanes.items(), key=lambda kv: kv[0][:2] + (kv[0][2],)):
            if stride != 1:
                yield from lane
                continue
            lane.sort(key=lambda t: (t.dest, t.src))
            cur = lane[0]
            for t in lane[1:]:
                size = cur.nelems * cur.dtype.itemsize
                if t.dest == cur.dest + size and t.src == cur.src + size:
                    cur = _Transfer(kind, cur.dest, cur.src,
                                    cur.nelems + t.nelems, 1, pe,
                                    cur.dtype)
                else:
                    yield cur
                    cur = t
            yield cur

    def _run_transfers(self, ctx, xfers: list) -> None:
        for t in self._coalesce(xfers):
            method = ctx.put if t.kind == "put" else ctx.get
            method(t.dest, t.src, t.nelems, t.stride, t.pe, t.dtype)

    # -- collective batching ------------------------------------------

    @staticmethod
    def _joins(batch: list, req: _Request) -> bool:
        """May ``req`` join the accumulating batch?

        Same group, same dtype, at most one reduction operator, and no
        overlap between ``req``'s buffer ranges and the batch's (all
        addresses symmetric, hence rank-uniform — every rank reaches
        the same verdict).
        """
        if not req.batchable:
            return False
        if not batch:
            return True
        head = batch[0]
        if req.prepared.members != head.prepared.members:
            return False
        if req.prepared.dtype != head.prepared.dtype:
            return False
        ops = {r.op for r in batch if r.op is not None}
        if req.op is not None:
            ops.add(req.op)
        if len(ops) > 1:
            return False
        w_lo, w_hi = req.dest, req.dest + req.span
        r_lo, r_hi = req.src, req.src + req.span
        for other in batch:
            o_w = (other.dest, other.dest + other.span)
            o_r = (other.src, other.src + other.span)
            if _overlap((w_lo, w_hi), o_w) or _overlap((w_lo, w_hi), o_r) \
                    or _overlap((r_lo, r_hi), o_w):
                return False
        return True

    def _run_batch(self, ctx, batch: list) -> None:
        if not batch:
            return
        if len(batch) == 1:
            batch[0].prepared.run(ctx)
            return
        from ..collectives.schedule.fuse import WIDENABLE, compile_widened

        head = batch[0].prepared
        itemsize = head.dtype.itemsize
        # Widen same-key runs (the coalescing table): group requests by
        # (collective, algorithm, root); a group of >= 2 non-empty
        # stride-1 requests becomes one wider collective.
        groups: dict = {}
        for i, req in enumerate(batch):
            key = req.widen_key
            if (req.collective, req.algorithm) in WIDENABLE \
                    and req.stride == 1 and req.nelems > 0:
                groups.setdefault(key, []).append(i)
        widened: dict = {}  # first index -> (schedule, bindings, members)
        consumed: set = set()
        for key, idxs in groups.items():
            if len(idxs) < 2:
                continue
            collective, algorithm, root = key
            reqs = [batch[i] for i in idxs]
            sched = compile_widened(
                collective, algorithm, len(head.members),
                root if root is not None else 0,
                reqs[0].op, itemsize,
                tuple(r.nelems for r in reqs))
            bindings = {}
            for j, r in enumerate(reqs):
                bindings[f"src{j}"] = r.src
                bindings[f"dest{j}"] = r.dest
            widened[idxs[0]] = (sched, bindings, reqs)
            consumed.update(idxs)
        entries: list = []  # (schedule, bindings, reqs)
        for i, req in enumerate(batch):
            if i in widened:
                entries.append(widened[i])
            elif i not in consumed:
                entries.append((req.prepared.schedule,
                                dict(req.prepared.bindings), [req]))
        try:
            self._execute_entries(ctx, entries, batch)
        except FusionError:
            # Structural surprise: run the entries one by one instead.
            for sched, bindings, reqs in entries:
                self._run_entry(ctx, sched, bindings, reqs)

    def _execute_entries(self, ctx, entries: list, batch: list) -> None:
        from ..collectives.schedule.executor import PreparedCollective
        from ..collectives.schedule.fuse import fuse_schedules

        head = batch[0].prepared
        if len(entries) == 1:
            sched, bindings, reqs = entries[0]
            self._run_entry(ctx, sched, bindings, reqs)
            return
        fused = fuse_schedules(tuple(s for s, _b, _r in entries))
        bindings = {}
        for i, (_sched, entry_bindings, _reqs) in enumerate(entries):
            for name, addr in entry_bindings.items():
                bindings[f"r{i}:{name}"] = addr
        self._count_requests(ctx, batch)
        if head.me == head.members[0]:
            ctx.count_collective("superstep:flush")
        PreparedCollective(
            name="superstep", members=head.members, me=head.me,
            dtype=head.dtype,
            attrs=dict(requests=len(batch), entries=len(entries)),
            schedule=fused, bindings=bindings,
        ).run(ctx)

    def _run_entry(self, ctx, sched, bindings, reqs: list) -> None:
        from ..collectives.schedule.executor import PreparedCollective

        if len(reqs) == 1:
            reqs[0].prepared.run(ctx)
            return
        head = reqs[0].prepared
        self._count_requests(ctx, reqs)
        PreparedCollective(
            name=reqs[0].collective, members=head.members, me=head.me,
            dtype=head.dtype,
            attrs=dict(algorithm=sched.algorithm, requests=len(reqs)),
            schedule=sched, bindings=bindings,
        ).run(ctx)

    @staticmethod
    def _count_requests(ctx, reqs: list) -> None:
        """Book each request's eager stats key, as its solo run would."""
        for req in reqs:
            prepared = req.prepared
            if prepared.stats_key is not None \
                    and prepared.me == prepared.stats_rank:
                ctx.count_collective(prepared.stats_key)


def _overlap(a: tuple, b: tuple) -> bool:
    return a[0] < b[1] and b[0] < a[1]


def _arm(ctx, step: Superstep) -> None:
    """Install the deferring shadows over the context instance."""
    ctx._superstep = step

    def put(dest, src, nelems, stride, pe, dtype="long"):
        from .collective_api import resolve_dtype

        step.defer_transfer("put", dest, src, nelems, stride, pe,
                            resolve_dtype(dtype))

    def get(dest, src, nelems, stride, pe, dtype="long"):
        from .collective_api import resolve_dtype

        step.defer_transfer("get", dest, src, nelems, stride, pe,
                            resolve_dtype(dtype))

    def barrier():
        # Mid-step sync: flush eagerly, pass the real barrier, re-arm.
        _disarm(ctx)
        try:
            step.flush()
            ctx.barrier()
        finally:
            _arm(ctx, step)

    ctx.__dict__["put"] = put
    ctx.__dict__["get"] = get
    ctx.__dict__["barrier"] = barrier


def _disarm(ctx) -> None:
    for name in _SHADOWED:
        ctx.__dict__.pop(name, None)
    ctx._superstep = None


@contextmanager
def superstep_context(ctx) -> Iterator[Superstep]:
    """Implementation of ``CollectiveAPI.superstep()``."""
    ctx._require_active()
    if getattr(ctx, "_superstep", None) is not None:
        raise RuntimeStateError(
            "superstep() does not nest — the step horizon is the "
            "outermost sync"
        )
    step = Superstep(ctx)
    _arm(ctx, step)
    try:
        yield step
    except BaseException:
        step.discard()
        raise
    finally:
        _disarm(ctx)
    step.flush()
