"""Barrier synchronisation.

The paper's runtime provides "a simple barrier" (section 3.3) and every
binomial-tree stage of the collectives ends with one (section 4.3).

Semantics: a PE arriving at the barrier suspends until all participants
have arrived; everyone is released at

    max(latest arrival, network quiescence) + ceil(log2 N) * round_cost

— a dissemination barrier over the transport, which also waits for every
in-flight one-sided put to land (the memory-consistency point the
algorithms rely on).

Teams (paper section 7, "integration of collective functionality between
a subset of PEs") are supported by keying concurrent barrier instances on
the participant set: disjoint teams synchronise independently.

Failure detection (fault-injection runs): when a participant has been
crashed by the :mod:`repro.faults` injector, the barrier does not hang.
Once every *live* participant has arrived (or a participant dies while
the rest are waiting), the instance performs a *degraded release*: the
survivors pay the failure detector's timeout on top of the normal cost
and every one of them raises :class:`~repro.errors.PeerFailedError`
carrying the same frozen set of dead members.  That agreement — all
survivors of one instance observe an identical membership verdict — is
what lets the resilient collectives rebuild their trees without
diverging.
"""

from __future__ import annotations

from math import ceil, log2
from typing import TYPE_CHECKING

from ..errors import CollectiveArgumentError, PeerFailedError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import Machine

__all__ = ["BarrierController"]


class _Pending:
    """One in-progress barrier instance."""

    __slots__ = ("key", "arrivals", "degraded")

    def __init__(self, key: tuple[int, ...]):
        self.key = key
        #: rank -> arrival clock, in arrival order.
        self.arrivals: dict[int, float] = {}
        #: Set once on a degraded release: the dead members every
        #: survivor must report (the group-agreement payload).
        self.degraded: frozenset[int] | None = None


class BarrierController:
    """Shared barrier state for one machine."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        #: participants (sorted tuple) -> in-progress instance
        self._pending: dict[tuple[int, ...], _Pending] = {}

    def round_cost_ns(self, participants: tuple[int, ...]) -> float:
        """Cost of one dissemination round among ``participants``."""
        cfg = self.machine.config
        tp = cfg.transport
        nodes = {cfg.node_of(r) for r in participants}
        if len(nodes) <= 1:
            lat = tp.intra_latency_ns
        else:
            lat = tp.latency_ns
        return tp.o_send + tp.kernel_ns + lat + 8 * tp.gap_ns_per_byte

    # -- release helpers ----------------------------------------------------

    def _release(self, inst: _Pending, waker: int | None) -> float:
        """Release ``inst``: compute the exit time, wake the arrived
        waiters and retire the instance.  ``waker`` (if not None) is the
        arrived rank doing the waking — it advances itself.

        On a degraded release (some participants dead) the exit time
        additionally pays the failure detector's timeout and
        ``inst.degraded`` is frozen so every waiter reports the same
        verdict.
        """
        machine = self.machine
        engine = machine.engine
        key = inst.key
        faults = machine.faults
        dead_members = (frozenset(r for r in key if faults.is_dead(r))
                        if faults is not None else frozenset())
        release = max(inst.arrivals.values())
        release = max(release, machine.network.quiescence_time())
        rounds = ceil(log2(len(key)))
        release += rounds * self.round_cost_ns(key)
        if dead_members:
            # Survivors only learn of the death when the detector's
            # timeout on the missing peer expires.
            release += faults.detector_timeout_ns
            inst.degraded = dead_members
        del self._pending[key]
        machine.stats.barriers += 1
        for other in inst.arrivals:
            if other != waker:
                engine.resume(other, at_time=release)
        return release

    def handle_pe_death(self, dead_rank: int) -> None:
        """Called by the fault injector when ``dead_rank`` crashes.

        Any pending barrier the victim participated in may now be
        complete from the survivors' point of view: if every still-live
        participant has already arrived, perform the degraded release so
        the waiters are not stranded.  (Instances still missing live
        arrivals release normally when those PEs arrive.)
        """
        faults = self.machine.faults
        dead = faults.dead_pes if faults is not None else frozenset()
        for key, inst in list(self._pending.items()):
            if dead_rank not in key:
                continue
            live_missing = [r for r in key
                            if r not in inst.arrivals and r not in dead]
            if not live_missing:
                self._release(inst, waker=None)

    # -- the barrier itself -------------------------------------------------

    def barrier(self, rank: int, participants: tuple[int, ...] | None = None) -> None:
        """Synchronise ``rank`` with ``participants`` (default: all PEs).

        Raises :class:`PeerFailedError` on every live participant if any
        member of the set died before the instance released.
        """
        machine = self.machine
        if participants is None:
            key = tuple(range(machine.config.n_pes))
        else:
            key = tuple(sorted(set(participants)))
            if rank not in key:
                raise CollectiveArgumentError(
                    f"PE {rank} called a barrier it does not participate in"
                )
        engine = machine.engine
        traced = engine.trace.enabled
        if traced:
            engine.spans.begin(rank, "op", "barrier",
                               {"participants": len(key)})
        try:
            if len(key) == 1:
                # Degenerate barrier: only the round cost.
                engine.pes[rank].advance(self.round_cost_ns(key))
                machine.stats.barriers += 1
                return
            engine.checkpoint()
            if traced:
                engine.record("barrier", f"arrive ({len(key)} PEs)")
            inst = self._pending.get(key)
            if inst is None:
                inst = self._pending[key] = _Pending(key)
            if rank in inst.arrivals:
                raise SimulationError(
                    f"PE {rank} re-entered barrier {key} before it completed"
                )
            me = engine.pes[rank]
            inst.arrivals[rank] = me.clock
            faults = machine.faults
            dead = faults.dead_pes if faults is not None else frozenset()
            live_missing = [r for r in key
                            if r not in inst.arrivals and r not in dead]
            if live_missing:
                engine.suspend()  # released by the last live arriver
            else:
                # Last live PE to arrive: release everyone.
                release = self._release(inst, waker=rank)
                me.advance_to(release)
            if inst.degraded:
                if traced:
                    engine.record("barrier",
                                  f"degraded: peers {sorted(inst.degraded)} dead")
                raise PeerFailedError(inst.degraded)
        finally:
            if traced:
                engine.spans.end(rank)
