"""Barrier synchronisation.

The paper's runtime provides "a simple barrier" (section 3.3) and every
binomial-tree stage of the collectives ends with one (section 4.3).

Semantics: a PE arriving at the barrier suspends until all participants
have arrived; everyone is released at

    max(latest arrival, network quiescence) + ceil(log2 N) * round_cost

— a dissemination barrier over the transport, which also waits for every
in-flight one-sided put to land (the memory-consistency point the
algorithms rely on).

Teams (paper section 7, "integration of collective functionality between
a subset of PEs") are supported by keying concurrent barrier instances on
the participant set: disjoint teams synchronise independently.
"""

from __future__ import annotations

from math import ceil, log2
from typing import TYPE_CHECKING

from ..errors import CollectiveArgumentError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import Machine

__all__ = ["BarrierController"]


class BarrierController:
    """Shared barrier state for one machine."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        #: participants (sorted tuple) -> {rank: arrival clock}
        self._arrivals: dict[tuple[int, ...], dict[int, float]] = {}

    def round_cost_ns(self, participants: tuple[int, ...]) -> float:
        """Cost of one dissemination round among ``participants``."""
        cfg = self.machine.config
        tp = cfg.transport
        nodes = {cfg.node_of(r) for r in participants}
        if len(nodes) <= 1:
            lat = tp.intra_latency_ns
        else:
            lat = tp.latency_ns
        return tp.o_send + tp.kernel_ns + lat + 8 * tp.gap_ns_per_byte

    def barrier(self, rank: int, participants: tuple[int, ...] | None = None) -> None:
        """Synchronise ``rank`` with ``participants`` (default: all PEs)."""
        machine = self.machine
        if participants is None:
            key = tuple(range(machine.config.n_pes))
        else:
            key = tuple(sorted(set(participants)))
            if rank not in key:
                raise CollectiveArgumentError(
                    f"PE {rank} called a barrier it does not participate in"
                )
        engine = machine.engine
        traced = engine.trace.enabled
        if traced:
            engine.spans.begin(rank, "op", "barrier",
                               {"participants": len(key)})
        try:
            if len(key) == 1:
                # Degenerate barrier: only the round cost.
                engine.pes[rank].advance(self.round_cost_ns(key))
                machine.stats.barriers += 1
                return
            engine.checkpoint()
            if traced:
                engine.record("barrier", f"arrive ({len(key)} PEs)")
            arrivals = self._arrivals.setdefault(key, {})
            if rank in arrivals:
                raise SimulationError(
                    f"PE {rank} re-entered barrier {key} before it completed"
                )
            me = engine.pes[rank]
            arrivals[rank] = me.clock
            if len(arrivals) < len(key):
                engine.suspend()
                return  # released by the last arriver
            # Last to arrive: compute the release time and wake everyone.
            release = max(arrivals.values())
            release = max(release, machine.network.quiescence_time())
            rounds = ceil(log2(len(key)))
            release += rounds * self.round_cost_ns(key)
            del self._arrivals[key]
            machine.stats.barriers += 1
            for other in key:
                if other != rank:
                    engine.resume(other, at_time=release)
            me.advance_to(release)
        finally:
            if traced:
                engine.spans.end(rank)
