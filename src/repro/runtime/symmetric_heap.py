"""Symmetric-heap allocation (Figure 2 of the paper).

The SHMEM-style memory model gives every PE a private segment and a
shared segment; allocations in the shared segment are *collective* —
every PE executes the same ``xbrtime_malloc`` call and receives the same
offset from the beginning of its shared segment, keeping the shared
segments of all PEs fully symmetric.

Two pieces:

* :class:`FreeListAllocator` — a first-fit free-list allocator with
  coalescing, also used for each PE's private segment.
* :class:`SymmetricHeap` — wraps one allocator with a *collective call
  log*: the first PE to reach the N-th allocation call performs it; the
  remaining PEs replay the logged result (and the arguments are checked,
  which catches divergent, non-collective usage).
"""

from __future__ import annotations

from ..errors import AllocationError

__all__ = ["FreeListAllocator", "SymmetricHeap", "ScratchStack"]


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)


class FreeListAllocator:
    """First-fit free-list allocator over ``[base, base + size)``.

    Blocks are coalesced on free.  Alignment padding is absorbed into the
    allocated block so ``free`` needs only the address ``alloc`` returned.
    """

    def __init__(self, base: int, size: int):
        if size <= 0:
            raise AllocationError("allocator size must be positive")
        self.base = base
        self.size = size
        #: Sorted list of (start, length) free runs.
        self._free: list[tuple[int, int]] = [(base, size)]
        #: addr returned by alloc -> (block_start, block_length)
        self._allocated: dict[int, tuple[int, int]] = {}

    @property
    def bytes_free(self) -> int:
        return sum(length for _, length in self._free)

    @property
    def bytes_allocated(self) -> int:
        return self.size - self.bytes_free

    @property
    def n_allocations(self) -> int:
        return len(self._allocated)

    def alloc(self, nbytes: int, align: int = 16) -> int:
        """Allocate ``nbytes`` with the given alignment; returns address."""
        if nbytes <= 0:
            raise AllocationError(f"allocation size must be positive, got {nbytes}")
        if align <= 0 or align & (align - 1):
            raise AllocationError(f"alignment must be a power of two, got {align}")
        for i, (start, length) in enumerate(self._free):
            addr = _align_up(start, align)
            pad = addr - start
            need = pad + nbytes
            if need <= length:
                # Keep any prefix pad as free space only if it is large
                # enough to be useful; otherwise absorb it into the block.
                if pad >= 16:
                    self._free[i] = (start, pad)
                    block_start = addr
                    remaining = length - need
                    if remaining > 0:
                        self._free.insert(i + 1, (addr + nbytes, remaining))
                    self._allocated[addr] = (block_start, nbytes)
                else:
                    remaining = length - need
                    if remaining > 0:
                        self._free[i] = (start + need, remaining)
                    else:
                        del self._free[i]
                    self._allocated[addr] = (start, need)
                return addr
        raise AllocationError(
            f"out of memory: need {nbytes} B (align {align}), "
            f"{self.bytes_free} B free but fragmented or insufficient"
        )

    def free(self, addr: int) -> None:
        """Release a block previously returned by :meth:`alloc`."""
        try:
            start, length = self._allocated.pop(addr)
        except KeyError:
            raise AllocationError(
                f"free of unallocated address {addr:#x}"
            ) from None
        # Insert in sorted position and coalesce with neighbours.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < start:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (start, length))
        self._coalesce(lo)

    def _coalesce(self, i: int) -> None:
        # Merge with the next block, then with the previous one.
        if i + 1 < len(self._free):
            s, ln = self._free[i]
            s2, ln2 = self._free[i + 1]
            if s + ln == s2:
                self._free[i] = (s, ln + ln2)
                del self._free[i + 1]
        if i > 0:
            s0, ln0 = self._free[i - 1]
            s, ln = self._free[i]
            if s0 + ln0 == s:
                self._free[i - 1] = (s0, ln0 + ln)
                del self._free[i]

    def owns(self, addr: int) -> bool:
        return addr in self._allocated

    def size_of(self, addr: int) -> int:
        try:
            return self._allocated[addr][1]
        except KeyError:
            raise AllocationError(f"{addr:#x} is not allocated") from None


class SymmetricHeap:
    """The shared segment's collective allocator.

    All PEs share one :class:`FreeListAllocator`; the per-call log makes
    ``malloc``/``free`` idempotent across the PEs of a collective call so
    each PE observes the same address (the "same offset from the
    beginning of the shared segment" guarantee of section 3.3).
    """

    def __init__(self, base: int, size: int, n_pes: int):
        self.base = base
        self.size = size
        self.n_pes = n_pes
        self._alloc = FreeListAllocator(base, size)
        #: (op, args, result) per collective call index.
        self._log: list[tuple[str, tuple, int | None]] = []

    def collective_malloc(self, call_index: int, nbytes: int, align: int = 16) -> int:
        """The ``call_index``-th heap call of one PE, as a malloc."""
        return self._collective(call_index, "malloc", (nbytes, align))

    def collective_free(self, call_index: int, addr: int) -> None:
        self._collective(call_index, "free", (addr,))

    def _collective(self, idx: int, op: str, args: tuple) -> int | None:
        if idx < len(self._log):
            logged_op, logged_args, result = self._log[idx]
            if (logged_op, logged_args) != (op, args):
                raise AllocationError(
                    f"divergent collective heap call #{idx}: this PE issued "
                    f"{op}{args} but another PE issued {logged_op}{logged_args} "
                    "(xbrtime_malloc/free must be called collectively)"
                )
            return result
        if idx != len(self._log):
            raise AllocationError(
                f"heap call #{idx} arrived before call #{len(self._log)}"
            )
        if op == "malloc":
            result: int | None = self._alloc.alloc(*args)
        else:
            self._alloc.free(*args)
            result = None
        self._log.append((op, args, result))
        return result

    @property
    def bytes_free(self) -> int:
        return self._alloc.bytes_free

    @property
    def bytes_allocated(self) -> int:
        return self._alloc.bytes_allocated


class ScratchStack:
    """Per-PE symmetric scratch area (the SHMEM ``pWrk``/``pSync`` idea).

    Collectives need scratch buffers that partners can address remotely,
    i.e. at the same address on every *participant* — but team
    collectives cannot use the collective heap, which requires all PEs.
    Instead every PE carries this bump stack at an identical base
    address: participants of one collective push identical sizes in the
    same order, so corresponding allocations land at identical
    addresses even when disjoint teams run concurrently.

    Frees must be LIFO (enforced).
    """

    def __init__(self, base: int, size: int):
        if size <= 0:
            raise AllocationError("scratch size must be positive")
        self.base = base
        self.size = size
        self._top = base
        self._stack: list[tuple[int, int]] = []  # (addr, padded size)

    @property
    def bytes_used(self) -> int:
        return self._top - self.base

    @property
    def depth(self) -> int:
        return len(self._stack)

    def alloc(self, nbytes: int, align: int = 16) -> int:
        if nbytes <= 0:
            raise AllocationError(
                f"scratch allocation must be positive, got {nbytes}"
            )
        addr = _align_up(self._top, align)
        end = addr + nbytes
        if end > self.base + self.size:
            raise AllocationError(
                f"collective scratch exhausted: need {nbytes} B, "
                f"{self.base + self.size - self._top} B left "
                "(raise MachineConfig.collective_scratch_bytes)"
            )
        self._stack.append((addr, end - self._top))
        self._top = end
        return addr

    def free(self, addr: int) -> None:
        if not self._stack:
            raise AllocationError("scratch free with empty stack")
        top_addr, padded = self._stack[-1]
        if addr != top_addr:
            raise AllocationError(
                f"scratch frees must be LIFO: freeing {addr:#x} but top of "
                f"stack is {top_addr:#x}"
            )
        self._stack.pop()
        self._top -= padded
