"""ISA-fidelity transfer path: run the generated xBGAS loops for real.

In ``fidelity="isa"`` the runtime does what the paper's C library does —
it translates each get/put into an xBGAS assembly loop (unrolled above
the configured threshold, section 3.3) and *executes* it on the PE's
functional core.  Remote elements each cost one network operation, which
is the true per-element behaviour of remote load/store instructions;
the default ``model`` fidelity instead aggregates a transfer into one
bulk message.  ``benchmarks/bench_isa.py`` quantifies the difference.

Calling convention of the generated loops::

    a0 = source address        e10 = source object ID (0 = local)
    a1 = destination address   e11 = destination object ID (0 = local)
    a2 = element count
    a3 = stride in bytes

The same program text serves put and get: only the object IDs differ.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import SimulationError
from ..isa.assembler import assemble
from ..isa.cpu import Cpu

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import Machine

__all__ = ["IsaTransferPath"]

_MNEMONIC = {1: ("elb", "esb"), 2: ("elh", "esh"), 4: ("elw", "esw"),
             8: ("eld", "esd")}


def _copy_body(elem_bytes: int) -> str:
    """The per-element load/store pair(s) for one element width."""
    if elem_bytes == 16:
        # long double: two 64-bit halves per element.
        return ("    eld t0, 0(a0)\n    esd t0, 0(a1)\n"
                "    eld t0, 8(a0)\n    esd t0, 8(a1)\n")
    ld, st = _MNEMONIC[elem_bytes]
    return f"    {ld} t0, 0(a0)\n    {st} t0, 0(a1)\n"


def _gen_program(elem_bytes: int, unroll: int) -> str:
    """Generate the strided copy loop (optionally unrolled)."""
    body = _copy_body(elem_bytes)
    bump = "    add a0, a0, a3\n    add a1, a1, a3\n"
    if unroll <= 1:
        return (
            "    beqz a2, done\n"
            "loop:\n"
            + body + bump +
            "    addi a2, a2, -1\n"
            "    bnez a2, loop\n"
            "done:\n"
            "    halt\n"
        )
    # Unrolled main loop plus a scalar remainder loop.
    block = (body + bump) * unroll
    return (
        f"    andi t2, a2, {unroll - 1}\n"
        "    sub t3, a2, t2\n"
        "    beqz t3, rem\n"
        "main:\n"
        + block +
        f"    addi t3, t3, -{unroll}\n"
        "    bnez t3, main\n"
        "rem:\n"
        "    beqz t2, done\n"
        "rloop:\n"
        + body + bump +
        "    addi t2, t2, -1\n"
        "    bnez t2, rloop\n"
        "done:\n"
        "    halt\n"
    )


class _RemotePort:
    """Per-PE network/remote-memory port for the functional core."""

    def __init__(self, machine: "Machine", rank: int):
        self.machine = machine
        self.rank = rank
        #: Absolute simulated time when the current program started.
        self.t_base = 0.0
        self.cpu: Cpu | None = None

    def _now(self) -> float:
        assert self.cpu is not None
        return self.t_base + self.cpu.ns_elapsed

    def remote_load(self, target_pe: int, addr: int, nbytes: int,
                    signed: bool) -> tuple[int, float]:
        m = self.machine
        m.stats.remote_gets += 1
        t_now = self._now()
        rcost = m.hierarchy_of(target_pe).access(addr, nbytes, False,
                                                 use_tlb=False)
        # Per-instruction remote accesses have no software retry layer;
        # message-fault injection applies only to the model-fidelity
        # transfer engine.
        res = m.network.fetch(t_now, self.rank, target_pe, nbytes,
                              faultable=False)
        value = m.memories[target_pe].load(addr, nbytes, signed)
        return value, (res.t_complete - t_now) + rcost

    def remote_store(self, target_pe: int, addr: int, nbytes: int,
                     value: int) -> float:
        m = self.machine
        m.stats.remote_puts += 1
        t_now = self._now()
        res = m.network.send(t_now, self.rank, target_pe, nbytes,
                             faultable=False)
        wcost = m.hierarchy_of(target_pe).access(addr, nbytes, True,
                                                 use_tlb=False)
        m.network.note_delivery(res.t_delivered + wcost)
        m.memories[target_pe].store(addr, nbytes, value)
        return res.t_source_free - t_now

    def remote_amo(self, target_pe: int, addr: int, op: str,
                   value: int) -> tuple[int, float]:
        from ..isa.cpu import amo_apply

        m = self.machine
        t_now = self._now()
        wcost = m.hierarchy_of(target_pe).access(addr, 8, True, use_tlb=False)
        res = m.network.fetch(t_now, self.rank, target_pe, 8,
                              faultable=False)
        mem = m.memories[target_pe]
        old = mem.load(addr, 8)
        mem.store(addr, 8, amo_apply(op, old, value))
        return old, (res.t_complete - t_now) + wcost


class IsaTransferPath:
    """Owns the per-PE cores and the generated-program cache."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        cfg = machine.config
        self.ports = [_RemotePort(machine, r) for r in range(cfg.n_pes)]
        self.cpus = []
        for r in range(cfg.n_pes):
            pipe = None
            if cfg.pipeline:
                from ..isa.pipeline import PipelineModel

                pipe = PipelineModel(cycle_ns=cfg.cycle_ns)
            cpu = Cpu(
                pe=r,
                memory=machine.memories[r],
                memsys=machine.hierarchy_of(r),
                olb=machine.olbs[r],
                remote_port=self.ports[r],
                cycle_ns=cfg.cycle_ns,
                pipeline=pipe,
            )
            self.ports[r].cpu = cpu
            self.cpus.append(cpu)
        #: (elem_bytes, unrolled) -> code address; same on every PE.
        self._programs: dict[tuple[int, bool], int] = {}
        self._code_ptr = 0

    def _install(self, key: tuple, prog) -> int:
        """Write an assembled program into every PE's code region."""
        addr = self._code_ptr
        nbytes = 4 * len(prog.words)
        from .context import CODE_REGION_BYTES

        if addr + nbytes > CODE_REGION_BYTES:
            raise SimulationError("code region exhausted")
        self._code_ptr += (nbytes + 15) & ~15
        for cpu in self.cpus:
            pc = addr
            for w in prog.words:
                cpu.memory.store(pc, 4, w)
                pc += 4
        self._programs[key] = addr
        return addr

    def _program_addr(self, elem_bytes: int, unrolled: bool) -> int:
        key = (elem_bytes, unrolled)
        addr = self._programs.get(key)
        if addr is not None:
            return addr
        unroll = self.machine.config.unroll_factor if unrolled else 1
        return self._install(key, assemble(_gen_program(elem_bytes, unroll)))

    def amo(self, rank: int, addr: int, value: int, target: int,
            op: str) -> int:
        """Execute one ``eamoOP.d`` on PE ``rank``'s core; returns the
        old memory value."""
        key = (("amo", op), False)
        code_addr = self._programs.get(key)
        if code_addr is None:
            prog = assemble(f"    eamo{op}.d a2, a0, a1\n    halt\n")
            code_addr = self._install(key, prog)
        cpu = self.cpus[rank]
        pe = self.machine.engine.pes[rank]
        obj = 0 if target == rank else self.machine.olbs[rank].object_id_for(target)
        cpu.regs.write_x(10, addr)
        cpu.regs.write_x(11, value)
        cpu.regs.write_e(10, obj)
        cpu.pc = code_addr
        cpu.halted = None
        cpu.ns_elapsed = 0.0
        self.ports[rank].t_base = pe.clock
        reason = cpu.run(max_instructions=8)
        if reason is not reason.EBREAK:
            raise SimulationError(
                f"PE {rank}: generated AMO did not halt ({reason})"
            )
        pe.advance(cpu.ns_elapsed)
        self.machine.stats.instructions_executed += 2
        return cpu.regs.read_x(12)

    def transfer(self, rank: int, dest: int, src: int, nelems: int,
                 stride: int, target: int, elem_bytes: int, *,
                 is_put: bool) -> None:
        """Execute a strided copy loop on PE ``rank``'s core."""
        cfg = self.machine.config
        unrolled = nelems > cfg.unroll_threshold
        addr = self._program_addr(elem_bytes, unrolled)
        cpu = self.cpus[rank]
        port = self.ports[rank]
        pe = self.machine.engine.pes[rank]
        obj = 0 if target == rank else self.machine.olbs[rank].object_id_for(target)
        regs = cpu.regs
        regs.write_x(10, src)
        regs.write_x(11, dest)
        regs.write_x(12, nelems)
        regs.write_x(13, stride * elem_bytes)
        regs.write_e(10, 0 if is_put else obj)
        regs.write_e(11, obj if is_put else 0)
        cpu.pc = addr
        cpu.halted = None
        cpu.ns_elapsed = 0.0
        retired_before = cpu.instructions_retired
        port.t_base = pe.clock
        # Generous budget: ~16 instructions per element plus slack.
        reason = cpu.run(max_instructions=16 * max(nelems, 1) + 64)
        if reason is not reason.EBREAK:
            raise SimulationError(
                f"PE {rank}: generated transfer loop did not halt ({reason})"
            )
        pe.advance(cpu.ns_elapsed)
        self.machine.stats.instructions_executed += (
            cpu.instructions_retired - retired_before
        )
