"""The backend-independent slice of the PE context API.

:class:`CollectiveAPI` carries every context method that is pure
protocol — collective front-ends, resilient wrappers and the user span —
expressed entirely in terms of the PE-context surface documented in
:mod:`repro.backends.base`.  Both execution backends' contexts mix it
in: the simulator's :class:`~repro.runtime.context.XBRTime` and the
multiprocessing backend's :class:`~repro.backends.mp.MPContext`.  That
is what makes every compiled schedule run unmodified on either backend.

Subclasses provide: ``rank``, ``spans``, ``_require_active()``,
``barrier_team``, the one-sided transfer methods, memory management and
``compute``/``charge_*`` cost charging.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

import numpy as np

from ..errors import RuntimeStateError
from ..types import typeinfo

__all__ = ["CollectiveAPI", "resolve_dtype"]


def resolve_dtype(t: str | np.dtype | type) -> np.dtype:
    """Accept a Table 1 TYPENAME, a numpy dtype or a Python/numpy type."""
    if isinstance(t, str):
        return typeinfo(t).dtype
    return np.dtype(t)


class CollectiveAPI:
    """Mixin: the collective call surface of a PE context."""

    #: Active :class:`~repro.runtime.superstep.Superstep`, or ``None``
    #: (eager mode).  Set per-instance by ``superstep()``.
    _superstep = None

    # -- supersteps ------------------------------------------------------------

    def superstep(self):
        """Defer this PE's puts/gets/collectives until the step's end.

        ``with ctx.superstep() as step:`` buffers the body's one-sided
        transfers and collective calls; the flush at the ``with`` exit
        (or at an explicit ``ctx.barrier()`` inside the body) coalesces
        contiguous transfers and batches compatible collectives into
        one fused schedule.  Byte-identical to eager execution for
        race-free bodies; see :mod:`repro.runtime.superstep`.
        Supersteps do not nest.
        """
        from .superstep import superstep_context

        return superstep_context(self)

    def _defer_opaque(self, label: str, thunk) -> bool:
        """Queue ``thunk`` on the active superstep; ``False`` if eager."""
        if self._superstep is None:
            return False
        self._superstep.defer_opaque(label, thunk)
        return True

    # -- tracing ---------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Wrap a region of PE code in a named trace span.

        A no-op when tracing is disabled (always, on wall-clock
        backends); with ``Machine(trace=True)`` the span appears in the
        Chrome-trace export as a ``user`` category interval on this PE's
        track, nesting around whatever puts/gets/collectives the region
        performs.
        """
        spans = self.spans
        if not spans.enabled:
            yield
            return
        spans.begin(self.rank, "user", name, attrs or None)
        try:
            yield
        finally:
            spans.end(self.rank)

    # -- collectives (binomial tree, section 4) ------------------------------------------

    def broadcast(self, dest: int, src: int, nelems: int, stride: int,
                  root: int, dtype: str | np.dtype = "long",
                  algorithm: str = "binomial") -> None:
        """``xbrtime_TYPE_broadcast`` (Algorithm 1)."""
        self._require_active()
        from ..collectives import broadcast as _b

        dt = resolve_dtype(dtype)
        if self._superstep is not None:
            prepared = _b.prepare_broadcast(self, dest, src, nelems,
                                            stride, root, dt,
                                            algorithm=algorithm)
            self._superstep.defer_collective(
                prepared, collective="broadcast", root=root, op=None,
                dest=dest, src=src, nelems=nelems, stride=stride)
            return
        _b.broadcast(self, dest, src, nelems, stride, root, dt,
                     algorithm=algorithm)

    def reduce(self, dest: int, src: int, nelems: int, stride: int,
               root: int, op: str = "sum", dtype: str | np.dtype = "long",
               algorithm: str = "binomial") -> None:
        """``xbrtime_TYPE_reduce_OP`` (Algorithm 2)."""
        self._require_active()
        from ..collectives import reduce as _r

        dt = resolve_dtype(dtype)
        if self._superstep is not None:
            prepared = _r.prepare_reduce(self, dest, src, nelems, stride,
                                         root, op, dt,
                                         algorithm=algorithm)
            self._superstep.defer_collective(
                prepared, collective="reduce", root=root, op=op,
                dest=dest, src=src, nelems=nelems, stride=stride)
            return
        _r.reduce(self, dest, src, nelems, stride, root, op, dt,
                  algorithm=algorithm)

    def scatter(self, dest: int, src: int, pe_msgs: Sequence[int],
                pe_disp: Sequence[int], nelems: int, root: int,
                dtype: str | np.dtype = "long") -> None:
        """``xbrtime_TYPE_scatter`` (Algorithm 3)."""
        self._require_active()
        from ..collectives import scatter as _s

        dt = resolve_dtype(dtype)
        run = lambda: _s.scatter(self, dest, src, pe_msgs, pe_disp,
                                 nelems, root, dt)
        if not self._defer_opaque("scatter", run):
            run()

    def gather(self, dest: int, src: int, pe_msgs: Sequence[int],
               pe_disp: Sequence[int], nelems: int, root: int,
               dtype: str | np.dtype = "long") -> None:
        """``xbrtime_TYPE_gather`` (Algorithm 4)."""
        self._require_active()
        from ..collectives import gather as _g

        dt = resolve_dtype(dtype)
        run = lambda: _g.gather(self, dest, src, pe_msgs, pe_disp,
                                nelems, root, dt)
        if not self._defer_opaque("gather", run):
            run()

    # -- extended collectives (paper section 7 future work) --------------------------------

    def reduce_all(self, dest: int, src: int, nelems: int, stride: int,
                   op: str = "sum", dtype: str | np.dtype = "long") -> None:
        """Deprecated alias of :meth:`allreduce`.

        .. deprecated::
           The reduce+broadcast composition this historically ran is
           strictly dominated by ``allreduce(algorithm="doubling")``
           (half the stages, same bytes).  Call :meth:`allreduce`.
        """
        warnings.warn(
            "reduce_all() is deprecated; call allreduce() instead",
            DeprecationWarning, stacklevel=2,
        )
        self.allreduce(dest, src, nelems, stride, op, dtype,
                       algorithm="doubling")

    def allreduce(self, dest: int, src: int, nelems: int, stride: int,
                  op: str = "sum", dtype: str | np.dtype = "long",
                  algorithm: str = "doubling",
                  segments: int | None = None) -> None:
        """One-sided reduction-to-all: ``"doubling"`` (latency-optimal,
        half the stages of :meth:`reduce_all`'s composition),
        ``"rabenseifner"`` (bandwidth-optimal reduce-scatter+allgather,
        the paper's reference [17]), ``"ring"`` (bandwidth-optimal for
        any PE count), ``"dual-pipelined"`` (doubly pipelined dual-root
        trees — ``segments`` chunks in flight, the large-payload winner
        off power-of-two) or ``"auto"``."""
        self._require_active()
        from ..collectives import allreduce as _ar

        dt = resolve_dtype(dtype)
        if self._superstep is not None:
            prepared = _ar.prepare_allreduce(self, dest, src, nelems,
                                             stride, op, dt,
                                             algorithm=algorithm,
                                             segments=segments)
            self._superstep.defer_collective(
                prepared, collective="allreduce", root=None, op=op,
                dest=dest, src=src, nelems=nelems, stride=stride)
            return
        _ar.allreduce(self, dest, src, nelems, stride, op, dt,
                      algorithm=algorithm, segments=segments)

    def reduce_scatter(self, dest: int, src: int, pe_msgs: Sequence[int],
                       pe_disp: Sequence[int], nelems: int,
                       op: str = "sum", dtype: str | np.dtype = "long",
                       algorithm: str = "auto",
                       segments: int = 1) -> None:
        """Reduce-scatter: PE ``r`` ends with the reduction of its
        ``pe_msgs[r]``-element block (at ``pe_disp[r]``) in ``dest``.

        ``algorithm`` is ``"ring"`` (N-1 one-block stages), ``"pat"``
        (⌈log₂N⌉-round parallel aggregated trees, optionally pipelined
        over ``segments`` chunks per block) or ``"auto"``.  Neither
        ``dest`` nor ``src`` needs to be symmetric.
        """
        self._require_active()
        from ..collectives.reduce_scatter import reduce_scatter as _rs

        dt = resolve_dtype(dtype)
        run = lambda: _rs(self, dest, src, pe_msgs, pe_disp, nelems, op,
                          dt, algorithm=algorithm, segments=segments)
        if not self._defer_opaque("reduce_scatter", run):
            run()

    def scan(self, dest: int, src: int, nelems: int, stride: int,
             op: str = "sum", dtype: str | np.dtype = "long",
             inclusive: bool = True) -> None:
        """Parallel prefix scan (Hillis-Steele, one-sided)."""
        self._require_active()
        from ..collectives.scan import scan as _scan

        dt = resolve_dtype(dtype)
        run = lambda: _scan(self, dest, src, nelems, stride, op, dt,
                            inclusive=inclusive)
        if not self._defer_opaque("scan", run):
            run()

    def allgather(self, dest: int, src: int, pe_msgs: Sequence[int],
                  pe_disp: Sequence[int], nelems: int,
                  dtype: str | np.dtype = "long",
                  algorithm: str = "tree",
                  segments: int = 1) -> None:
        """Gather-to-all (OpenSHMEM ``collect`` semantics).

        ``algorithm`` is ``"tree"`` (gather+broadcast composition),
        ``"dissemination"`` (⌈log₂N⌉-stage doubling exchange), ``"pat"``
        (dest-direct parallel aggregated trees) or ``"auto"``.
        """
        self._require_active()
        from ..collectives import extra

        dt = resolve_dtype(dtype)
        run = lambda: extra.allgather(self, dest, src, pe_msgs, pe_disp,
                                      nelems, dt, algorithm=algorithm,
                                      segments=segments)
        if not self._defer_opaque("allgather", run):
            run()

    def alltoall(self, dest: int, src: int, nelems_per_pe: int,
                 dtype: str | np.dtype = "long") -> None:
        """Personalised all-to-all exchange."""
        self._require_active()
        from ..collectives import extra

        dt = resolve_dtype(dtype)
        run = lambda: extra.alltoall(self, dest, src, nelems_per_pe, dt)
        if not self._defer_opaque("alltoall", run):
            run()

    # -- resilient collectives (fault-injection runs) ----------------------------------

    def _forbid_superstep(self, what: str) -> None:
        # Resilient collectives return survivor masks the body usually
        # branches on; deferring them would hand the body a result that
        # does not exist yet.
        if self._superstep is not None:
            raise RuntimeStateError(
                f"{what} cannot be deferred inside a superstep — its "
                "result is consumed immediately"
            )

    def resilient_broadcast(self, dest: int, src: int, nelems: int,
                            stride: int, root: int,
                            dtype: str | np.dtype = "long", *,
                            max_restarts: int = 8):
        """Broadcast that survives PE crashes by re-rooting the binomial
        tree over the survivors; returns a
        :class:`~repro.faults.resilient.ResilientResult`."""
        self._require_active()
        self._forbid_superstep("resilient_broadcast")
        from ..faults.resilient import resilient_broadcast as _rb

        return _rb(self, dest, src, nelems, stride, root,
                   resolve_dtype(dtype), max_restarts=max_restarts)

    def resilient_reduce(self, dest: int, src: int, nelems: int,
                         stride: int, root: int, op: str = "sum",
                         dtype: str | np.dtype = "long", *,
                         max_restarts: int = 8):
        """Eventually consistent reduction: folds the survivors' values
        and reports the contribution mask."""
        self._require_active()
        self._forbid_superstep("resilient_reduce")
        from ..faults.resilient import resilient_reduce as _rr

        return _rr(self, dest, src, nelems, stride, root, op,
                   resolve_dtype(dtype), max_restarts=max_restarts)

    def resilient_allreduce(self, dest: int, src: int, nelems: int,
                            stride: int, op: str = "sum",
                            dtype: str | np.dtype = "long", *,
                            max_restarts: int = 8):
        """Eventually consistent allreduce over the survivors."""
        self._require_active()
        self._forbid_superstep("resilient_allreduce")
        from ..faults.resilient import resilient_allreduce as _ra

        return _ra(self, dest, src, nelems, stride, op,
                   resolve_dtype(dtype), max_restarts=max_restarts)
