"""The backend-independent slice of the PE context API.

:class:`CollectiveAPI` carries every context method that is pure
protocol — collective front-ends, resilient wrappers and the user span —
expressed entirely in terms of the PE-context surface documented in
:mod:`repro.backends.base`.  Both execution backends' contexts mix it
in: the simulator's :class:`~repro.runtime.context.XBRTime` and the
multiprocessing backend's :class:`~repro.backends.mp.MPContext`.  That
is what makes every compiled schedule run unmodified on either backend.

Subclasses provide: ``rank``, ``spans``, ``_require_active()``,
``barrier_team``, the one-sided transfer methods, memory management and
``compute``/``charge_*`` cost charging.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Sequence

import numpy as np

from ..types import typeinfo

__all__ = ["CollectiveAPI", "resolve_dtype"]


def resolve_dtype(t: str | np.dtype | type) -> np.dtype:
    """Accept a Table 1 TYPENAME, a numpy dtype or a Python/numpy type."""
    if isinstance(t, str):
        return typeinfo(t).dtype
    return np.dtype(t)


class CollectiveAPI:
    """Mixin: the collective call surface of a PE context."""

    # -- tracing ---------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Wrap a region of PE code in a named trace span.

        A no-op when tracing is disabled (always, on wall-clock
        backends); with ``Machine(trace=True)`` the span appears in the
        Chrome-trace export as a ``user`` category interval on this PE's
        track, nesting around whatever puts/gets/collectives the region
        performs.
        """
        spans = self.spans
        if not spans.enabled:
            yield
            return
        spans.begin(self.rank, "user", name, attrs or None)
        try:
            yield
        finally:
            spans.end(self.rank)

    # -- collectives (binomial tree, section 4) ------------------------------------------

    def broadcast(self, dest: int, src: int, nelems: int, stride: int,
                  root: int, dtype: str | np.dtype = "long",
                  algorithm: str = "binomial") -> None:
        """``xbrtime_TYPE_broadcast`` (Algorithm 1)."""
        self._require_active()
        from ..collectives import broadcast as _b

        _b.broadcast(self, dest, src, nelems, stride, root,
                     resolve_dtype(dtype), algorithm=algorithm)

    def reduce(self, dest: int, src: int, nelems: int, stride: int,
               root: int, op: str = "sum", dtype: str | np.dtype = "long",
               algorithm: str = "binomial") -> None:
        """``xbrtime_TYPE_reduce_OP`` (Algorithm 2)."""
        self._require_active()
        from ..collectives import reduce as _r

        _r.reduce(self, dest, src, nelems, stride, root, op,
                  resolve_dtype(dtype), algorithm=algorithm)

    def scatter(self, dest: int, src: int, pe_msgs: Sequence[int],
                pe_disp: Sequence[int], nelems: int, root: int,
                dtype: str | np.dtype = "long") -> None:
        """``xbrtime_TYPE_scatter`` (Algorithm 3)."""
        self._require_active()
        from ..collectives import scatter as _s

        _s.scatter(self, dest, src, pe_msgs, pe_disp, nelems, root,
                   resolve_dtype(dtype))

    def gather(self, dest: int, src: int, pe_msgs: Sequence[int],
               pe_disp: Sequence[int], nelems: int, root: int,
               dtype: str | np.dtype = "long") -> None:
        """``xbrtime_TYPE_gather`` (Algorithm 4)."""
        self._require_active()
        from ..collectives import gather as _g

        _g.gather(self, dest, src, pe_msgs, pe_disp, nelems, root,
                  resolve_dtype(dtype))

    # -- extended collectives (paper section 7 future work) --------------------------------

    def reduce_all(self, dest: int, src: int, nelems: int, stride: int,
                   op: str = "sum", dtype: str | np.dtype = "long") -> None:
        """Reduce-to-all: every PE receives the reduction result."""
        self._require_active()
        from ..collectives import extra

        extra.reduce_all(self, dest, src, nelems, stride, op,
                         resolve_dtype(dtype))

    def allreduce(self, dest: int, src: int, nelems: int, stride: int,
                  op: str = "sum", dtype: str | np.dtype = "long",
                  algorithm: str = "doubling",
                  segments: int | None = None) -> None:
        """One-sided reduction-to-all: ``"doubling"`` (latency-optimal,
        half the stages of :meth:`reduce_all`'s composition),
        ``"rabenseifner"`` (bandwidth-optimal reduce-scatter+allgather,
        the paper's reference [17]), ``"ring"`` (bandwidth-optimal for
        any PE count), ``"dual-pipelined"`` (doubly pipelined dual-root
        trees — ``segments`` chunks in flight, the large-payload winner
        off power-of-two) or ``"auto"``."""
        self._require_active()
        from ..collectives.allreduce import allreduce as _ar

        _ar(self, dest, src, nelems, stride, op, resolve_dtype(dtype),
            algorithm=algorithm, segments=segments)

    def reduce_scatter(self, dest: int, src: int, pe_msgs: Sequence[int],
                       pe_disp: Sequence[int], nelems: int,
                       op: str = "sum", dtype: str | np.dtype = "long",
                       algorithm: str = "auto",
                       segments: int = 1) -> None:
        """Reduce-scatter: PE ``r`` ends with the reduction of its
        ``pe_msgs[r]``-element block (at ``pe_disp[r]``) in ``dest``.

        ``algorithm`` is ``"ring"`` (N-1 one-block stages), ``"pat"``
        (⌈log₂N⌉-round parallel aggregated trees, optionally pipelined
        over ``segments`` chunks per block) or ``"auto"``.  Neither
        ``dest`` nor ``src`` needs to be symmetric.
        """
        self._require_active()
        from ..collectives.reduce_scatter import reduce_scatter as _rs

        _rs(self, dest, src, pe_msgs, pe_disp, nelems, op,
            resolve_dtype(dtype), algorithm=algorithm, segments=segments)

    def scan(self, dest: int, src: int, nelems: int, stride: int,
             op: str = "sum", dtype: str | np.dtype = "long",
             inclusive: bool = True) -> None:
        """Parallel prefix scan (Hillis-Steele, one-sided)."""
        self._require_active()
        from ..collectives.scan import scan as _scan

        _scan(self, dest, src, nelems, stride, op, resolve_dtype(dtype),
              inclusive=inclusive)

    def allgather(self, dest: int, src: int, pe_msgs: Sequence[int],
                  pe_disp: Sequence[int], nelems: int,
                  dtype: str | np.dtype = "long",
                  algorithm: str = "tree",
                  segments: int = 1) -> None:
        """Gather-to-all (OpenSHMEM ``collect`` semantics).

        ``algorithm`` is ``"tree"`` (gather+broadcast composition),
        ``"dissemination"`` (⌈log₂N⌉-stage doubling exchange), ``"pat"``
        (dest-direct parallel aggregated trees) or ``"auto"``.
        """
        self._require_active()
        from ..collectives import extra

        extra.allgather(self, dest, src, pe_msgs, pe_disp, nelems,
                        resolve_dtype(dtype), algorithm=algorithm,
                        segments=segments)

    def alltoall(self, dest: int, src: int, nelems_per_pe: int,
                 dtype: str | np.dtype = "long") -> None:
        """Personalised all-to-all exchange."""
        self._require_active()
        from ..collectives import extra

        extra.alltoall(self, dest, src, nelems_per_pe, resolve_dtype(dtype))

    # -- resilient collectives (fault-injection runs) ----------------------------------

    def resilient_broadcast(self, dest: int, src: int, nelems: int,
                            stride: int, root: int,
                            dtype: str | np.dtype = "long", *,
                            max_restarts: int = 8):
        """Broadcast that survives PE crashes by re-rooting the binomial
        tree over the survivors; returns a
        :class:`~repro.faults.resilient.ResilientResult`."""
        self._require_active()
        from ..faults.resilient import resilient_broadcast as _rb

        return _rb(self, dest, src, nelems, stride, root,
                   resolve_dtype(dtype), max_restarts=max_restarts)

    def resilient_reduce(self, dest: int, src: int, nelems: int,
                         stride: int, root: int, op: str = "sum",
                         dtype: str | np.dtype = "long", *,
                         max_restarts: int = 8):
        """Eventually consistent reduction: folds the survivors' values
        and reports the contribution mask."""
        self._require_active()
        from ..faults.resilient import resilient_reduce as _rr

        return _rr(self, dest, src, nelems, stride, root, op,
                   resolve_dtype(dtype), max_restarts=max_restarts)

    def resilient_allreduce(self, dest: int, src: int, nelems: int,
                            stride: int, op: str = "sum",
                            dtype: str | np.dtype = "long", *,
                            max_restarts: int = 8):
        """Eventually consistent allreduce over the survivors."""
        self._require_active()
        from ..faults.resilient import resilient_allreduce as _ra

        return _ra(self, dest, src, nelems, stride, op,
                   resolve_dtype(dtype), max_restarts=max_restarts)
