"""The simulated machine and the per-PE ``xbrtime`` context.

:class:`Machine` owns everything shared: the PDES engine, per-PE
memories and memory hierarchies, the network, the symmetric heap, the
OLBs and (in ``isa`` fidelity) the functional cores.

:class:`XBRTime` is the handle a PE program receives — the Python face
of the paper's C runtime API:

==============================  =========================================
paper (C)                       this reproduction
==============================  =========================================
``xbrtime_init()``              ``ctx.init()``
``xbrtime_close()``             ``ctx.close()``
``xbrtime_mype()``              ``ctx.my_pe()``
``xbrtime_num_pes()``           ``ctx.num_pes()``
``xbrtime_malloc(sz)``          ``ctx.malloc(sz)``
``xbrtime_free(p)``             ``ctx.free(p)``
``xbrtime_barrier()``           ``ctx.barrier()``
``xbrtime_TYPE_put(...)``       ``ctx.TYPE_put(...)`` / ``ctx.put(...)``
``xbrtime_TYPE_get(...)``       ``ctx.TYPE_get(...)`` / ``ctx.get(...)``
``xbrtime_TYPE_broadcast(...)`` ``ctx.TYPE_broadcast(...)`` / ``ctx.broadcast(...)``
``xbrtime_TYPE_reduce_OP(...)`` ``ctx.TYPE_reduce_OP(...)`` / ``ctx.reduce(...)``
``xbrtime_TYPE_scatter(...)``   ``ctx.TYPE_scatter(...)`` / ``ctx.scatter(...)``
``xbrtime_TYPE_gather(...)``    ``ctx.TYPE_gather(...)`` / ``ctx.gather(...)``
==============================  =========================================

Addresses are plain integers into the PE's flat memory; ``ctx.view``
wraps a region as a numpy array for local computation.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from ..errors import (
    AddressError,
    PeerFailedError,
    RuntimeStateError,
    SimulationError,
)
from ..isa.memory import Memory
from ..isa.olb import ObjectLookasideBuffer
from ..machine.mailbox import MailboxRouter
from ..machine.memsys import MemoryHierarchy
from ..machine.network import Network
from ..machine.node import Node
from ..params import MachineConfig
from ..sim.engine import Engine, PEProcess
from ..types import typeinfo
from .barrier import BarrierController
from .symmetric_heap import FreeListAllocator, ScratchStack, SymmetricHeap
from .transfer import TransferEngine, TransferHandle

__all__ = ["Machine", "XBRTime", "CODE_REGION_BYTES"]

#: Low memory reserved for generated code in ``isa`` fidelity.
CODE_REGION_BYTES = 64 * 1024


# Backwards-compatible re-export: resolve_dtype predates collective_api.
from .collective_api import CollectiveAPI, resolve_dtype  # noqa: E402,F401


class Machine:
    """One simulated xBGAS machine (the whole PGAS job)."""

    def __init__(self, config: MachineConfig | None = None, *,
                 trace: bool = False, faults=None, retry=None,
                 fast_paths: bool = True, transport: str = "onesided"):
        """``faults`` (a :class:`~repro.faults.plan.FaultPlan`) arms the
        fault injector; ``retry`` (a
        :class:`~repro.faults.plan.RetryConfig`) arms ack/retry on
        remote put/get.  Both default to off — a machine without them
        behaves exactly as before the subsystem existed.

        ``transport`` selects how compiled collective schedules move
        data: ``"onesided"`` (default) executes remote Put/Get steps
        directly; ``"mailbox"`` lowers every schedule onto the
        two-sided mailbox engine (matched send/recv pairs through the
        bounded per-PE queues) before execution.  The explicit
        ``ctx.put``/``ctx.get`` calls and the mailbox ``ctx.msg_*``
        calls are available on either setting — the knob only governs
        schedule lowering.

        ``fast_paths=False`` selects the reference implementations of the
        scheduler (scheduler-thread bounce) and of bulk memory costing
        (per-line loop).  Simulated results are identical either way —
        the flag exists for the equivalence tests and as the "before"
        arm of the wall-clock perf harness (``repro.perf``)."""
        if transport not in ("onesided", "mailbox"):
            raise ValueError(
                f"unknown schedule transport {transport!r}; expected "
                "'onesided' or 'mailbox'"
            )
        self.transport_name = transport
        self.config = config if config is not None else MachineConfig()
        cfg = self.config
        self.fast_paths = fast_paths
        self.engine = Engine(cfg.n_pes, trace=trace, direct_handoff=fast_paths)
        self.stats = self.engine.stats
        self.memories = [Memory(cfg.memory_bytes_per_pe) for _ in range(cfg.n_pes)]
        self.nodes = [Node(i, cfg) for i in range(cfg.n_nodes)]
        self._hier: dict[int, MemoryHierarchy] = {}
        for node in self.nodes:
            self._hier.update(node.hierarchies)
        if not fast_paths:
            for hier in self._hier.values():
                hier.fast_path = False
        #: The all-PEs group tuple, built once; ``resolve_group`` returns
        #: it for every world collective instead of rebuilding the range.
        self.world_group = tuple(range(cfg.n_pes))
        self.network = Network(cfg, self.stats)
        # Shared-segment layout (identical on every PE, Figure 2):
        # [heap_base, heap_base + scratch) = collective scratch stacks,
        # [heap_base + scratch, end)       = the collective symmetric heap.
        heap_base = cfg.memory_bytes_per_pe - cfg.symmetric_heap_bytes
        scratch = cfg.collective_scratch_bytes
        self.scratch_stacks = [
            ScratchStack(heap_base, scratch) for _ in range(cfg.n_pes)
        ]
        self.heap = SymmetricHeap(
            heap_base + scratch, cfg.symmetric_heap_bytes - scratch, cfg.n_pes
        )
        self._shared_base = heap_base
        self.private_allocators = [
            FreeListAllocator(CODE_REGION_BYTES, heap_base - CODE_REGION_BYTES)
            for _ in range(cfg.n_pes)
        ]
        self.olbs = [ObjectLookasideBuffer(pe) for pe in range(cfg.n_pes)]
        for olb in self.olbs:
            olb.install_default(cfg.n_pes)
        self.barriers = BarrierController(self)
        self.transfers = [TransferEngine(self, r) for r in range(cfg.n_pes)]
        self.mailbox = MailboxRouter(self)
        self._consumed = False
        self._isa_path = None
        if cfg.fidelity == "isa":
            from .isa_path import IsaTransferPath

            self._isa_path = IsaTransferPath(self)
        #: Armed fault injector (None = clean machine, zero overhead).
        self.faults = None
        self.retry = retry
        if faults is not None:
            from ..faults.injector import FaultInjector

            self.faults = FaultInjector(self, faults)
            self.network.injector = self.faults

    # -- shared-hardware accessors -------------------------------------------

    @property
    def heap_base(self) -> int:
        """Start of the shared segment (scratch + collective heap)."""
        return self._shared_base

    def hierarchy_of(self, pe: int) -> MemoryHierarchy:
        return self._hier[pe]

    def isa_transfer(self, rank: int, dest: int, src: int, nelems: int,
                     stride: int, target: int, elem_bytes: int, *,
                     is_put: bool) -> None:
        """Route a transfer through the functional-core path."""
        assert self._isa_path is not None, "machine not in isa fidelity"
        self._isa_path.transfer(rank, dest, src, nelems, stride, target,
                                elem_bytes, is_put=is_put)

    def isa_amo(self, rank: int, addr: int, value: int, target: int,
                op: str) -> int:
        """Route an AMO through the functional-core path."""
        assert self._isa_path is not None, "machine not in isa fidelity"
        return self._isa_path.amo(rank, addr, value, target, op)

    @property
    def elapsed_ns(self) -> float:
        """Simulated makespan (host-dilated, like ``ctx.time_ns``)."""
        return self.engine.elapsed_ns * self.config.time_dilation

    @property
    def failed_pes(self) -> frozenset[int]:
        """World ranks crashed by fault injection (empty on a clean run)."""
        return self.faults.dead_pes if self.faults is not None else frozenset()

    def describe(self) -> str:
        """A Spike-style banner describing the simulated platform."""
        cfg = self.config
        mem = cfg.mem
        lines = [
            f"xBGAS machine: {cfg.n_pes} PEs on {cfg.n_nodes} node(s) "
            f"({cfg.cores_per_node} cores/node"
            + (", explicit placement" if cfg.pe_node_map else "") + ")",
            f"  core: RV64I+xBGAS @ {cfg.clock_ghz:g} GHz, fidelity="
            f"{cfg.fidelity}"
            + (", pipeline model on" if cfg.pipeline else ""),
            f"  caches: L1 {mem.l1.size_bytes >> 10} KiB/{mem.l1.ways}-way, "
            f"L2 {mem.l2.size_bytes >> 20} MiB/{mem.l2.ways}-way, "
            f"TLB {mem.tlb.entries} entries",
            f"  memory: {cfg.memory_bytes_per_pe >> 20} MiB/PE "
            f"(symmetric heap {cfg.symmetric_heap_bytes >> 20} MiB, "
            f"scratch {cfg.collective_scratch_bytes >> 20} MiB)",
            f"  transport: {cfg.transport.name} "
            f"(o={cfg.transport.o_send:g} ns, L={cfg.transport.latency_ns:g} "
            f"ns), topology={cfg.topology}",
            f"  host: {cfg.host_cores} cores, dilation x"
            f"{cfg.time_dilation:.2f}",
        ]
        return "\n".join(lines)

    # -- running programs ------------------------------------------------------

    def run(self, fn: Callable[..., Any],
            args_per_pe: Sequence[tuple] | None = None) -> list[Any]:
        """Run ``fn(ctx, *extra)`` on every PE; returns per-rank results.

        A machine is one-shot: memory, heap logs, caches and clocks all
        carry state from a run, so starting a second simulation on the
        same machine would silently replay stale state.  Build a fresh
        :class:`Machine` per simulation.
        """
        if self._consumed:
            raise RuntimeStateError(
                "this Machine already ran a simulation; build a fresh "
                "Machine(config) per run (heap logs, caches and clocks "
                "are stateful)"
            )
        self._consumed = True

        def wrapper(pe: PEProcess, *extra: Any) -> Any:
            ctx = XBRTime(self, pe)
            pe.context = ctx
            return fn(ctx, *extra)

        results = self.engine.run(wrapper, args_per_pe)
        self._fold_memory_stats()
        if self.faults is not None and self.faults.dead_pes:
            from ..faults.plan import CRASHED

            dead = self.faults.dead_pes
            results = [CRASHED if r in dead else res
                       for r, res in enumerate(results)]
        return results

    # -- observability ---------------------------------------------------------

    def collective_metrics(self):
        """Per-collective metrics from the recorded span tree.

        Requires the machine to have been built with ``trace=True``;
        returns a list of :class:`~repro.sim.metrics.CollectiveMetrics`
        (empty when tracing was off).
        """
        from ..sim.metrics import collective_metrics

        return collective_metrics(self.engine.trace)

    def chrome_trace(self) -> dict:
        """The recorded trace as a Chrome-trace (Perfetto) document."""
        from ..sim.chrome_trace import chrome_trace

        return chrome_trace(self.engine.trace,
                            time_dilation=self.config.time_dilation)

    def write_chrome_trace(self, path_or_file) -> dict:
        """Dump the Chrome-trace JSON to ``path_or_file``; returns the doc.

        Open the result in ``chrome://tracing`` or https://ui.perfetto.dev.
        """
        from ..sim.chrome_trace import write_chrome_trace

        return write_chrome_trace(path_or_file, self.engine.trace,
                                  time_dilation=self.config.time_dilation)

    def _fold_memory_stats(self) -> None:
        st = self.stats
        st.l1_hits = st.l1_misses = 0
        st.l2_hits = st.l2_misses = 0
        st.tlb_hits = st.tlb_misses = 0
        for hier in self._hier.values():
            l1h, l1m, l2h, l2m, th, tm = hier.stat_tuple()
            st.l1_hits += l1h
            st.l1_misses += l1m
            st.l2_hits += l2h
            st.l2_misses += l2m
            st.tlb_hits += th
            st.tlb_misses += tm


class XBRTime(CollectiveAPI):
    """Per-PE runtime context (the xbrtime API surface).

    Typed wrappers (``ctx.int_put``, ``ctx.double_broadcast``,
    ``ctx.long_reduce_sum``, ...) are installed by
    :mod:`repro.runtime.typed` at import time.
    """

    def __init__(self, machine: Machine, pe: PEProcess):
        self.machine = machine
        self.pe = pe
        self.rank = pe.rank
        self._active = False
        self._closed = False
        self._heap_calls = 0
        self._transfer = machine.transfers[self.rank]
        self._private = machine.private_allocators[self.rank]
        self._memory = machine.memories[self.rank]

    # -- lifecycle -------------------------------------------------------------

    def init(self) -> None:
        """``xbrtime_init``: bring the runtime up; synchronises all PEs."""
        if self._active:
            raise RuntimeStateError(f"PE {self.rank}: init() called twice")
        if self._closed:
            raise RuntimeStateError(f"PE {self.rank}: init() after close()")
        self._active = True
        # OLB fill + bookkeeping cost, then the init barrier.
        self.pe.advance(200.0)
        self.machine.barriers.barrier(self.rank)

    def close(self) -> None:
        """``xbrtime_close``: tear the runtime down; synchronises all PEs."""
        self._require_active()
        try:
            self.machine.barriers.barrier(self.rank)
        except PeerFailedError:
            pass  # dead peers cannot join teardown; survivors still close
        self._active = False
        self._closed = True

    def _require_active(self) -> None:
        if not self._active:
            raise RuntimeStateError(
                f"PE {self.rank}: runtime used outside init()/close()"
            )
        faults = self.machine.faults
        if faults is not None:
            # Every runtime call is a fault checkpoint: due stalls fire
            # here, and a scheduled crash kills this PE here.
            faults.check_pe(self.rank, self.pe.clock)

    # -- backend protocol accessors ---------------------------------------------
    #
    # The collectives layer (schedule executor, front-ends, resilient
    # wrappers) reaches shared state only through these names, so any
    # context implementing them — this simulated one or
    # :class:`repro.backends.mp.MPContext` — can run every compiled
    # schedule unmodified.  See ``docs/API.md`` ("Backends").

    #: Which execution backend this context belongs to.
    backend_name = "sim"

    @property
    def config(self) -> MachineConfig:
        """The machine configuration (memory layout, topology, costs)."""
        return self.machine.config

    @property
    def world_group(self) -> tuple[int, ...]:
        """The all-PEs group tuple (built once per machine)."""
        return self.machine.world_group

    @property
    def spans(self):
        """The span recorder (a disabled recorder when tracing is off)."""
        return self.machine.engine.spans

    def count_collective(self, stats_key: str) -> None:
        """Count one collective call under ``stats_key``."""
        self.machine.stats.collective_calls[stats_key] += 1

    def executing_rank(self) -> int | None:
        """The rank whose code is executing on this OS thread right now.

        ``None`` when called from outside PE code (driver / tests).  On
        the simulator all PE contexts live in one process, so this is
        how shared objects (non-blocking handles) detect being driven by
        the wrong PE; on the multiprocessing backend each process *is*
        one PE and the answer is constant.
        """
        try:
            return self.machine.engine.current.rank
        except SimulationError:
            return None

    # -- identity ---------------------------------------------------------------

    def my_pe(self) -> int:
        """``xbrtime_mype``."""
        self._require_active()
        return self.rank

    def num_pes(self) -> int:
        """``xbrtime_num_pes``."""
        self._require_active()
        return self.machine.config.n_pes

    def failed_pes(self) -> frozenset[int]:
        """Ranks this PE has *observed* dead so far (fault injection).

        For group-membership decisions inside resilient collectives use
        the :class:`~repro.errors.PeerFailedError` payload instead —
        different PEs may observe a crash at different times, but all
        survivors of one barrier instance receive the same payload.
        """
        return self.machine.failed_pes

    def live_pes(self) -> tuple[int, ...]:
        """World ranks not (yet) crashed, in rank order."""
        dead = self.machine.failed_pes
        return tuple(r for r in range(self.machine.config.n_pes)
                     if r not in dead)

    @property
    def time_ns(self) -> float:
        """This PE's simulated wall-clock time.

        Internal event times are undilated; the reported clock applies
        the host-oversubscription dilation
        (:attr:`MachineConfig.time_dilation`) so measured throughput
        reflects the paper's oversubscribed 12-core simulation host.
        """
        return self.pe.clock * self.machine.config.time_dilation

    # -- memory management ---------------------------------------------------------

    def malloc(self, nbytes: int, align: int = 16) -> int:
        """Collective symmetric allocation: every PE receives the same
        address (same offset in the shared segment, Figure 2)."""
        self._require_active()
        idx = self._heap_calls
        self._heap_calls += 1
        self.pe.advance(50.0)
        return self.machine.heap.collective_malloc(idx, nbytes, align)

    def free(self, addr: int) -> None:
        """Collective symmetric free."""
        self._require_active()
        idx = self._heap_calls
        self._heap_calls += 1
        self.pe.advance(30.0)
        self.machine.heap.collective_free(idx, addr)

    def scratch_alloc(self, nbytes: int, align: int = 16) -> int:
        """Symmetric *scratch* allocation for collective work buffers.

        Unlike :meth:`malloc` this needs no participation from other
        PEs: every PE's scratch stack starts at the same base, so the
        participants of one collective (even a team subset) obtain the
        same address by pushing the same sizes in the same order.
        Frees are LIFO.
        """
        self._require_active()
        return self.machine.scratch_stacks[self.rank].alloc(nbytes, align)

    def scratch_free(self, addr: int) -> None:
        self._require_active()
        self.machine.scratch_stacks[self.rank].free(addr)

    def private_malloc(self, nbytes: int, align: int = 16) -> int:
        """Allocate in this PE's *private* segment (not remotely visible)."""
        self._require_active()
        return self._private.alloc(nbytes, align)

    def private_free(self, addr: int) -> None:
        self._require_active()
        self._private.free(addr)

    def is_symmetric(self, addr: int) -> bool:
        """Whether ``addr`` lies in the shared (symmetric) segment."""
        return addr >= self.machine.heap_base

    def view(self, addr: int, dtype: str | np.dtype, count: int,
             stride: int = 1) -> np.ndarray:
        """A numpy view of local memory (aliases the PE's memory)."""
        return self._memory.view(addr, resolve_dtype(dtype), count, stride)

    def view_on(self, pe: int, addr: int, dtype: str | np.dtype, count: int,
                stride: int = 1) -> np.ndarray:
        """A view of *another* PE's memory — for tests and verification
        phases only; simulated programs should use get/put."""
        return self.machine.memories[pe].view(
            addr, resolve_dtype(dtype), count, stride
        )

    # -- time charging (benchmark compute phases) -------------------------------------

    def compute(self, ns: float) -> None:
        """Charge ``ns`` of local computation to this PE."""
        self.pe.advance(ns)

    def charge_access(self, addr: int, nbytes: int = 8, write: bool = False) -> float:
        """Charge one memory access through the cache/TLB hierarchy."""
        ns = self.machine.hierarchy_of(self.rank).access(addr, nbytes, write)
        self.pe.advance(ns)
        return ns

    def charge_stream(self, addr: int, nbytes: int, write: bool = False) -> float:
        """Charge a sequential sweep over ``nbytes`` of memory."""
        ns = self.machine.hierarchy_of(self.rank).access_range(addr, nbytes, write)
        self.pe.advance(ns)
        return ns

    # -- synchronisation -------------------------------------------------------------

    def barrier(self) -> None:
        """``xbrtime_barrier``: synchronise all PEs and drain the network."""
        self._require_active()
        self.machine.barriers.barrier(self.rank)

    def barrier_team(self, members: Sequence[int]) -> None:
        """Barrier over a subset of PEs (teams, paper section 7)."""
        self._require_active()
        self.machine.barriers.barrier(self.rank, tuple(members))

    # -- one-sided communication --------------------------------------------------------

    def put(self, dest: int, src: int, nelems: int, stride: int, pe: int,
            dtype: str | np.dtype = "long") -> None:
        """``xbrtime_TYPE_put``: write ``nelems`` elements (``stride``
        apart at both ends) from local ``src`` to ``dest`` on ``pe``."""
        self._require_active()
        self._transfer.put(dest, src, nelems, stride, pe, resolve_dtype(dtype))

    def get(self, dest: int, src: int, nelems: int, stride: int, pe: int,
            dtype: str | np.dtype = "long") -> None:
        """``xbrtime_TYPE_get``: read ``nelems`` elements from ``src`` on
        ``pe`` into local ``dest``."""
        self._require_active()
        self._transfer.get(dest, src, nelems, stride, pe, resolve_dtype(dtype))

    def put_nb(self, dest: int, src: int, nelems: int, stride: int, pe: int,
               dtype: str | np.dtype = "long") -> TransferHandle:
        """Non-blocking put; complete with :meth:`wait` or :meth:`quiet`."""
        self._require_active()
        return self._transfer.put_nb(dest, src, nelems, stride, pe,
                                     resolve_dtype(dtype))

    def get_nb(self, dest: int, src: int, nelems: int, stride: int, pe: int,
               dtype: str | np.dtype = "long") -> TransferHandle:
        """Non-blocking get; data is valid after :meth:`wait`."""
        self._require_active()
        return self._transfer.get_nb(dest, src, nelems, stride, pe,
                                     resolve_dtype(dtype))

    def amo(self, addr: int, value: int, pe: int, op: str = "add",
            dtype: str | np.dtype = "uint64") -> int:
        """Remote atomic fetch-and-op (xBGAS ``eamoOP.d``): atomically
        replace the 64-bit word at ``addr`` on ``pe`` with
        ``old OP value`` and return ``old``.

        Ops: add, xor, and, or, swap, min, max.  Unlike the
        get-modify-put idiom, concurrent AMOs on one cell never lose
        updates.
        """
        self._require_active()
        return self._transfer.amo(addr, value, pe, op, resolve_dtype(dtype))

    def wait(self, handle: TransferHandle) -> None:
        """Complete one non-blocking transfer."""
        self._require_active()
        self._transfer.wait(handle)

    def quiet(self) -> None:
        """Complete all outstanding non-blocking transfers of this PE."""
        self._require_active()
        self._transfer.quiet()

    # -- two-sided mailbox messaging -----------------------------------------------------

    @property
    def schedule_transport(self) -> str:
        """How compiled schedules execute: ``"onesided"`` or ``"mailbox"``."""
        return self.machine.transport_name

    def msg_send(self, src: int, nelems: int, stride: int, pe: int,
                 tag: int = 0, dtype: str | np.dtype = "long") -> None:
        """Send ``nelems`` strided elements at local ``src`` to ``pe``.

        Eager/buffered: returns once the message is committed to the
        target's bounded receive queue (blocking only on backpressure).
        ``nelems == 0`` sends a payload-free control message.
        """
        self._require_active()
        dt = resolve_dtype(dtype)
        transfer = self._transfer
        transfer._check_args(nelems, stride, pe)
        nbytes = nelems * dt.itemsize
        machine = self.machine
        engine = machine.engine
        engine.checkpoint()
        traced = engine.trace.enabled
        if traced:
            engine.record("send", f"{nbytes}B -> PE{pe} tag={tag}")
            engine.spans.begin(self.rank, "op", "send", {
                "bytes": nbytes, "nelems": nelems, "stride": stride,
                "target": pe, "remote": pe != self.rank, "tag": tag,
            })
        try:
            payload = None
            if nelems:
                self.pe.advance(transfer.loop_overhead_ns(nelems))
                self.pe.advance(transfer._local_cost(
                    src, nelems, dt.itemsize, stride, write=False))
                payload = self._memory.view(src, dt, nelems, stride).copy()
            machine.mailbox.send(self.rank, pe, payload, nbytes, tag)
        finally:
            if traced:
                engine.spans.end(self.rank)

    def msg_recv(self, dest: int, nelems: int, stride: int, pe: int,
                 tag: int = 0, dtype: str | np.dtype = "long") -> None:
        """Receive the next message from ``pe`` into local ``dest``.

        Blocks (in simulated time) until the (``pe``, self) pair's FIFO
        delivers; verifies ``tag`` and the payload size against
        ``nelems``, then scatters the payload.  ``nelems == 0`` consumes
        a payload-free control message without touching ``dest``.
        """
        self._require_active()
        dt = resolve_dtype(dtype)
        transfer = self._transfer
        transfer._check_args(nelems, stride, pe)
        nbytes = nelems * dt.itemsize
        machine = self.machine
        engine = machine.engine
        engine.checkpoint()
        traced = engine.trace.enabled
        if traced:
            engine.record("recv", f"{nbytes}B <- PE{pe} tag={tag}")
            engine.spans.begin(self.rank, "op", "recv", {
                "bytes": nbytes, "nelems": nelems, "stride": stride,
                "target": pe, "remote": pe != self.rank, "tag": tag,
            })
        try:
            msg = machine.mailbox.recv(self.rank, pe, tag)
            if msg.nbytes != nbytes:
                from ..errors import MailboxProtocolError

                raise MailboxProtocolError(
                    f"PE {self.rank}: recv from PE {pe} expected "
                    f"{nbytes}B but the message carries {msg.nbytes}B"
                )
            if nelems:
                self.pe.advance(transfer.loop_overhead_ns(nelems))
                self.pe.advance(transfer._local_cost(
                    dest, nelems, dt.itemsize, stride, write=True))
                dview = self._memory.view(dest, dt, nelems, stride)
                dview[:] = msg.data
                if msg.fault is not None:
                    machine.faults.corrupt_payload(dview, msg.fault)
        finally:
            if traced:
                engine.spans.end(self.rank)

    def msg_try_recv(self, dest: int, nelems: int, stride: int,
                     pe: int | None = None,
                     dtype: str | np.dtype = "long"
                     ) -> tuple[int, int] | None:
        """Non-blocking receive: consume the oldest *visible* message.

        Returns ``(source, tag)`` after scattering the payload into
        ``dest``, or ``None`` when no delivered message (optionally from
        ``pe``) is queued.  The payload must carry exactly ``nelems``
        elements — mailbox protocols are fixed-format by design.
        """
        self._require_active()
        dt = resolve_dtype(dtype)
        transfer = self._transfer
        transfer._check_args(nelems, stride, pe if pe is not None else 0)
        machine = self.machine
        machine.engine.checkpoint()
        msg = machine.mailbox.try_recv(self.rank, pe)
        if msg is None:
            return None
        nbytes = nelems * dt.itemsize
        if msg.nbytes != nbytes:
            from ..errors import MailboxProtocolError

            raise MailboxProtocolError(
                f"PE {self.rank}: try_recv expected {nbytes}B but the "
                f"message from PE {msg.src} carries {msg.nbytes}B"
            )
        if nelems:
            self.pe.advance(transfer.loop_overhead_ns(nelems))
            self.pe.advance(transfer._local_cost(
                dest, nelems, dt.itemsize, stride, write=True))
            dview = self._memory.view(dest, dt, nelems, stride)
            dview[:] = msg.data
            if msg.fault is not None:
                machine.faults.corrupt_payload(dview, msg.fault)
        return msg.src, msg.tag

    def msg_probe(self, pe: int | None = None) -> bool:
        """Whether a delivered message (optionally from ``pe``) awaits."""
        self._require_active()
        return self.machine.mailbox.probe(self.rank, pe)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"XBRTime(pe={self.rank}/{self.machine.config.n_pes}, "
            f"t={self.pe.clock:.0f} ns)"
        )


# Install the per-TYPENAME call surface (Table 1).
from . import typed as _typed  # noqa: E402  (import cycle: needs XBRTime)

_typed.install_typed_api(XBRTime)
