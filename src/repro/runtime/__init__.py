"""The xbrtime runtime: a SHMEM-style PGAS environment over xBGAS.

Mirrors the paper's runtime library (section 3.3): initialization and
teardown, symmetric shared-memory allocation (every allocation lands at
the same offset of the shared segment on every PE — Figure 2), PE
identity queries, a barrier, and typed one-sided blocking/non-blocking
strided ``get``/``put`` calls for the 24 type names of Table 1.

Entry point::

    from repro.runtime import Machine

    def main(ctx):
        ctx.init()
        n, me = ctx.num_pes(), ctx.my_pe()
        buf = ctx.malloc(8 * n)
        ...
        ctx.close()

    machine = Machine(MachineConfig(n_pes=8))
    machine.run(main)
"""

from .symmetric_heap import FreeListAllocator, SymmetricHeap
from .context import Machine, XBRTime
from .transfer import TransferEngine, TransferHandle
from .barrier import BarrierController

__all__ = [
    "FreeListAllocator",
    "SymmetricHeap",
    "Machine",
    "XBRTime",
    "TransferEngine",
    "TransferHandle",
    "BarrierController",
]
