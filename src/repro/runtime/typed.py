"""The explicit per-type call surface of the xBGAS API (Table 1).

The paper deliberately exposes one call per element type —
``xbrtime_int_put``, ``xbrtime_double_broadcast``,
``xbrtime_ulong_reduce_max``, ... — arguing explicit naming is more
intuitive than OpenSHMEM's size-suffixed calls (section 4.7).  This
module generates the equivalent Python methods on :class:`XBRTime`:

* ``ctx.<TYPENAME>_put / _get / _put_nb / _get_nb``
* ``ctx.<TYPENAME>_broadcast``
* ``ctx.<TYPENAME>_reduce_<OP>`` for OP in sum/prod/min/max (+ and/or/
  xor for non-floating-point types, per section 4.4)
* ``ctx.<TYPENAME>_scatter / _gather``

:data:`TYPED_METHOD_NAMES` lists every generated name so tests can
assert the full surface exists.
"""

from __future__ import annotations

from typing import Callable

from ..types import TYPE_TABLE, TypeInfo

__all__ = ["install_typed_api", "TYPED_METHOD_NAMES"]

#: Reduction operators available for every type.
_ALWAYS_OPS = ("sum", "prod", "min", "max")
#: Reduction operators restricted to non-floating-point types.
_BITWISE_OPS = ("and", "or", "xor")
#: Remote-atomic operators (64-bit integer types only, ``eamoOP.d``).
_AMO_OPS = ("add", "xor", "and", "or", "swap", "min", "max")

TYPED_METHOD_NAMES: list[str] = []


def _make_p2p(t: TypeInfo, base: str) -> Callable:
    dtype = t.dtype

    def method(self, dest, src, nelems, stride, pe):
        return getattr(self, base)(dest, src, nelems, stride, pe, dtype)

    method.__name__ = f"{t.typename}_{base}"
    method.__qualname__ = f"XBRTime.{method.__name__}"
    method.__doc__ = (
        f"``xbrtime_{t.typename}_{base}``: {base} of ``{t.ctype}`` elements."
    )
    return method


def _make_broadcast(t: TypeInfo) -> Callable:
    dtype = t.dtype

    def method(self, dest, src, nelems, stride, root):
        return self.broadcast(dest, src, nelems, stride, root, dtype)

    method.__name__ = f"{t.typename}_broadcast"
    method.__qualname__ = f"XBRTime.{method.__name__}"
    method.__doc__ = (
        f"``xbrtime_{t.typename}_broadcast``: binomial-tree broadcast of "
        f"``{t.ctype}`` elements (Algorithm 1)."
    )
    return method


def _make_reduce(t: TypeInfo, op: str) -> Callable:
    dtype = t.dtype

    def method(self, dest, src, nelems, stride, root):
        return self.reduce(dest, src, nelems, stride, root, op, dtype)

    method.__name__ = f"{t.typename}_reduce_{op}"
    method.__qualname__ = f"XBRTime.{method.__name__}"
    method.__doc__ = (
        f"``xbrtime_{t.typename}_reduce_{op}``: binomial-tree {op} "
        f"reduction of ``{t.ctype}`` elements (Algorithm 2)."
    )
    return method


def _make_vector(t: TypeInfo, base: str) -> Callable:
    dtype = t.dtype

    def method(self, dest, src, pe_msgs, pe_disp, nelems, root):
        return getattr(self, base)(dest, src, pe_msgs, pe_disp, nelems,
                                   root, dtype)

    method.__name__ = f"{t.typename}_{base}"
    method.__qualname__ = f"XBRTime.{method.__name__}"
    method.__doc__ = (
        f"``xbrtime_{t.typename}_{base}``: binomial-tree {base} of "
        f"``{t.ctype}`` elements (Algorithms 3-4)."
    )
    return method


def _make_amo(t: TypeInfo, op: str) -> Callable:
    dtype = t.dtype

    def method(self, addr, value, pe):
        return self.amo(addr, value, pe, op, dtype)

    method.__name__ = f"{t.typename}_atomic_{op}"
    method.__qualname__ = f"XBRTime.{method.__name__}"
    method.__doc__ = (
        f"Remote atomic {op} of a ``{t.ctype}`` (xBGAS ``eamo{op}.d``)."
    )
    return method


def install_typed_api(cls: type) -> None:
    """Attach every per-TYPENAME method to ``cls`` (idempotent)."""
    if getattr(cls, "_typed_api_installed", False):
        return
    for t in TYPE_TABLE:
        methods: list[Callable] = [
            _make_p2p(t, "put"),
            _make_p2p(t, "get"),
            _make_p2p(t, "put_nb"),
            _make_p2p(t, "get_nb"),
            _make_broadcast(t),
            _make_vector(t, "scatter"),
            _make_vector(t, "gather"),
        ]
        ops = _ALWAYS_OPS if t.is_float else _ALWAYS_OPS + _BITWISE_OPS
        for op in ops:
            methods.append(_make_reduce(t, op))
        if not t.is_float and t.nbytes == 8:
            for op in _AMO_OPS:
                methods.append(_make_amo(t, op))
        for m in methods:
            # Table 1 aliases distinct TYPENAMEs to the same C type
            # (e.g. ulong and ulonglong) — each still gets its own call.
            setattr(cls, m.__name__, m)
            if m.__name__ not in TYPED_METHOD_NAMES:
                TYPED_METHOD_NAMES.append(m.__name__)
    cls._typed_api_installed = True
