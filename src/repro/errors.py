"""Exception hierarchy for the xBGAS reproduction.

Every error raised by this package derives from :class:`XbgasError` so
callers can catch library failures without masking programming errors in
their own code.
"""

from __future__ import annotations

__all__ = [
    "XbgasError",
    "RuntimeStateError",
    "AllocationError",
    "AddressError",
    "TypeNameError",
    "ReductionOpError",
    "CollectiveArgumentError",
    "FusionError",
    "IsaError",
    "DecodeError",
    "AssemblerError",
    "OlbMissError",
    "SimulationError",
    "DeadlockError",
    "NetworkError",
    "FaultPlanError",
    "PECrashedError",
    "PeerFailedError",
    "TransferTimeoutError",
    "MailboxProtocolError",
    "MailboxBackpressureError",
    "BackendError",
    "WorkerFailedError",
    "BackendTimeoutError",
    "WorkerAbortedError",
    "ServeError",
    "QueueFullError",
    "AdmissionTimeoutError",
]


class XbgasError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class RuntimeStateError(XbgasError):
    """The xbrtime runtime was used before ``init`` or after ``close``."""


class AllocationError(XbgasError):
    """A symmetric-heap allocation could not be satisfied."""


class AddressError(XbgasError):
    """An address is outside the PE's memory, misaligned, or otherwise bad."""


class TypeNameError(XbgasError, KeyError):
    """An unknown xBGAS TYPENAME (Table 1) was requested."""


class ReductionOpError(XbgasError):
    """A reduction operator is unknown or invalid for the element type.

    Bitwise AND/OR/XOR reductions are only defined for non-floating-point
    types (paper section 4.4).
    """


class CollectiveArgumentError(XbgasError, ValueError):
    """Invalid arguments to a collective call (bad root, counts, strides...)."""


class FusionError(XbgasError):
    """Schedules cannot be fused into one superstep.

    Raised by :func:`repro.collectives.schedule.fuse.fuse_schedules`
    when the batch is incompatible (mixed itemsize, more than one
    reduction operator, rank-divergent phase structure).  The superstep
    flush catches it and falls back to sequential execution, so it is a
    performance event, never a correctness one.
    """


class IsaError(XbgasError):
    """Base class for ISA-simulator failures."""


class DecodeError(IsaError):
    """A 32-bit word does not decode to a known instruction."""


class AssemblerError(IsaError):
    """Assembly source could not be assembled."""


class OlbMissError(IsaError):
    """An object ID has no Object Look-aside Buffer mapping on this PE."""


class SimulationError(XbgasError):
    """The discrete-event engine reached an inconsistent state."""


class DeadlockError(SimulationError):
    """No PE can make progress (e.g. mismatched barrier participation)."""


class NetworkError(XbgasError):
    """The network model was asked to route an impossible message."""


class FaultPlanError(XbgasError, ValueError):
    """A fault plan is malformed (unknown kind, bad probability, ...)."""


class PECrashedError(XbgasError):
    """Raised *on the victim PE* when an injected crash fault fires.

    The engine treats a PE that died of this as crashed rather than
    buggy: surviving PEs' results stay valid and ``Machine.run`` does
    not re-raise it.
    """


class PeerFailedError(XbgasError):
    """A barrier's failure detector released survivors in degraded mode.

    Raised on every *surviving* participant of a barrier whose member
    set includes crashed PEs.  ``dead`` holds the crashed world ranks of
    that barrier instance — identical on every survivor released by the
    same instance, which is what lets the resilient collectives agree on
    the rebuilt group without extra communication.
    """

    def __init__(self, dead: frozenset[int], message: str | None = None):
        self.dead = frozenset(dead)
        super().__init__(
            message if message is not None
            else f"barrier peers crashed: {sorted(self.dead)}"
        )


class TransferTimeoutError(NetworkError):
    """A reliable put/get exhausted its retries without an ack."""


class MailboxProtocolError(NetworkError):
    """Sender and receiver disagree on the mailbox message protocol.

    Raised when the FIFO head of a (source, destination) pair carries a
    different tag or payload size than the posted receive expects — the
    runtime signature of a mis-lowered send/recv schedule.
    """


class MailboxBackpressureError(NetworkError):
    """A mailbox send exhausted its backpressure retries.

    The target's receive queue stayed full for
    :attr:`~repro.params.MailboxParams.max_retries` consecutive backoff
    periods — the receiver is not draining (crashed, deadlocked, or the
    queue depth is too shallow for the schedule's fan-in)."""


class BackendError(XbgasError):
    """An execution backend (:mod:`repro.backends`) failed."""


class WorkerFailedError(BackendError):
    """A PE worker process raised (or died) during a backend run.

    ``failures`` maps world rank to the worker's formatted traceback
    text — the parent process cannot re-raise the original object, so
    the text is the diagnostic payload.
    """

    def __init__(self, failures: dict[int, str]):
        self.failures = dict(failures)
        ranks = sorted(self.failures)
        first = self.failures[ranks[0]].strip().splitlines()
        summary = first[-1] if first else "unknown error"
        super().__init__(
            f"PE worker(s) {ranks} failed; PE {ranks[0]}: {summary}"
        )


class BackendTimeoutError(BackendError):
    """A backend run exceeded its watchdog timeout (likely a deadlock)."""


class WorkerAbortedError(BackendError):
    """Raised *inside* a PE worker whose run was aborted because a peer
    failed — the shared-memory barrier and spin-waits poll the abort
    flag so no worker is left spinning on a dead peer."""


class ServeError(XbgasError):
    """The serving layer (:mod:`repro.serve`) rejected or lost a job."""


class QueueFullError(ServeError):
    """Backpressure: the pool's admission queue is at its depth limit.

    Raised synchronously from ``ServePool.submit`` — the caller must
    retry later (or shed the request); nothing was enqueued.
    """


class AdmissionTimeoutError(ServeError):
    """Bounded-wait admission expired: the job sat queued for longer
    than the pool's ``max_wait_s`` without enough free PEs, and was
    rejected instead of being left to wait unboundedly."""
