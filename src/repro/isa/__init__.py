"""Functional RISC-V RV64I + xBGAS instruction-set simulator.

This package stands in for the paper's Spike-based infrastructure: an
RV64I-subset core extended with the xBGAS instructions (section 3.2):

* 32 extended registers ``e0..e31`` alongside ``x0..x31`` (Figure 1);
* Base Integer Load/Store instructions (``eld``, ``esd``, ...) that pair
  each base register with its naturally-corresponding extended register
  to form a 128-bit effective address;
* Raw Integer Load/Store instructions (``erld``, ``ersd``, ...) with an
  explicitly named extended register and no immediate;
* Address Management instructions (``eaddi``, ``eaddie``, ``eaddix``);
* the per-PE Object Look-aside Buffer translating object IDs to PEs,
  with extended value 0 meaning "local".
"""

from .registers import RegisterFile, X_NAMES, E_NAMES, parse_register
from .memory import Memory
from .olb import ObjectLookasideBuffer
from .encoding import (
    Instruction,
    decode,
    encode,
    spec_of,
    INSTRUCTION_SPECS,
)
from .assembler import assemble, AssemblerError
from .disasm import disassemble, disassemble_program
from .cpu import Cpu, HaltReason, amo_apply
from .pipeline import PipelineModel, PipelineParams

__all__ = [
    "RegisterFile",
    "X_NAMES",
    "E_NAMES",
    "parse_register",
    "Memory",
    "ObjectLookasideBuffer",
    "Instruction",
    "decode",
    "encode",
    "spec_of",
    "INSTRUCTION_SPECS",
    "assemble",
    "AssemblerError",
    "disassemble",
    "disassemble_program",
    "Cpu",
    "HaltReason",
    "amo_apply",
    "PipelineModel",
    "PipelineParams",
]
