"""A small two-pass assembler for the RV64I + xBGAS subset.

Accepts the syntax the xBGAS runtime's generated code uses::

    # comments run to end of line
    copy_loop:
        eld   t0, 0(a1)        # extended load (paper section 3.2)
        esd   t0, 0(a2)
        erld  t1, a1, e10      # raw-type: explicit extended register
        eaddie e10, a0, 0      # EXT[e10] = a0 + 0
        addi  a1, a1, 8
        bne   a3, zero, copy_loop
        halt

Supported pseudo-instructions: ``nop``, ``mv``, ``li`` (32-bit range,
expands to ``lui``+``addi`` when needed), ``j``, ``ret``, ``halt``
(→ ``ebreak``), ``beqz``/``bnez``.  Directives: ``.dword``, ``.word``.

:func:`assemble` returns the program as a list of 32-bit words plus the
label table; labels may be used as branch/jump targets.
"""

from __future__ import annotations

import re

from ..errors import AssemblerError, DecodeError
from .encoding import Instruction, encode, spec_of
from .registers import parse_register

__all__ = ["assemble", "AssemblerError", "Program"]

_LABEL_RE = re.compile(r"^[A-Za-z_.][\w.]*$")
_MEMOP_RE = re.compile(r"^(-?\w+)\((\w+)\)$")


class Program:
    """Assembled machine code: words plus the label → offset table."""

    def __init__(self, words: list[int], labels: dict[str, int]):
        self.words = words
        self.labels = labels

    def __len__(self) -> int:
        return len(self.words)

    def bytes_le(self) -> bytes:
        out = bytearray()
        for w in self.words:
            out += w.to_bytes(4, "little")
        return bytes(out)


def _parse_imm(tok: str, labels: dict[str, int] | None, pc: int | None) -> int:
    tok = tok.strip()
    try:
        return int(tok, 0)
    except ValueError:
        pass
    if labels is not None and tok in labels:
        if pc is None:
            return labels[tok]
        return labels[tok] - pc
    raise AssemblerError(f"bad immediate or unknown label {tok!r}")


def _xreg(tok: str) -> int:
    kind, idx = parse_register(tok)
    if kind != "x":
        raise AssemblerError(f"expected a base register, got {tok!r}")
    return idx


def _ereg(tok: str) -> int:
    kind, idx = parse_register(tok)
    if kind != "e":
        raise AssemblerError(f"expected an extended register, got {tok!r}")
    return idx


def _split_line(line: str) -> tuple[str | None, str | None]:
    """Strip comments; split an optional leading label from the statement."""
    line = line.split("#", 1)[0].strip()
    if not line:
        return None, None
    label = None
    if ":" in line:
        maybe, rest = line.split(":", 1)
        maybe = maybe.strip()
        if _LABEL_RE.match(maybe):
            label = maybe
            line = rest.strip()
    return label, line or None


def _expand_pseudo(mnem: str, ops: list[str]) -> list[tuple[str, list[str]]]:
    """Rewrite pseudo-instructions into real ones (may expand to 2)."""
    if mnem == "nop":
        return [("addi", ["x0", "x0", "0"])]
    if mnem == "mv":
        return [("addi", [ops[0], ops[1], "0"])]
    if mnem == "j":
        return [("jal", ["x0", ops[0]])]
    if mnem == "ret":
        return [("jalr", ["x0", "0(ra)"])]
    if mnem == "halt":
        return [("ebreak", [])]
    if mnem == "beqz":
        return [("beq", [ops[0], "x0", ops[1]])]
    if mnem == "bnez":
        return [("bne", [ops[0], "x0", ops[1]])]
    if mnem == "li":
        val = int(ops[1], 0)
        if -2048 <= val <= 2047:
            return [("addi", [ops[0], "x0", str(val)])]
        if -(1 << 31) <= val < (1 << 31):
            hi = ((val + 0x800) >> 12) & 0xFFFFF
            lo = ((val & 0xFFF) ^ 0x800) - 0x800  # low 12 bits, signed
            # addiw (not addi): for values near 2^31 the lui result is
            # sign-extended negative and only a 32-bit add that then
            # sign-extends reproduces the intended constant.
            return [("lui", [ops[0], str(hi << 12)]),
                    ("addiw", [ops[0], ops[0], str(lo)])]
        raise AssemblerError(f"li immediate {val} exceeds 32-bit range")
    return [(mnem, ops)]


def _statement_size(mnem: str, ops: list[str]) -> int:
    """Bytes the statement will occupy (pass 1)."""
    if mnem == ".dword":
        return 8 * len(ops)
    if mnem == ".word":
        return 4 * len(ops)
    return 4 * len(_expand_pseudo(mnem, ops))


def _tokenize(stmt: str) -> tuple[str, list[str]]:
    parts = stmt.split(None, 1)
    mnem = parts[0].lower()
    ops = [o.strip() for o in parts[1].split(",")] if len(parts) > 1 else []
    return mnem, ops


def _build(mnem: str, ops: list[str], labels: dict[str, int], pc: int) -> Instruction:
    spec = spec_of(mnem)
    g = spec.group

    def need(n: int) -> None:
        if len(ops) != n:
            raise AssemblerError(
                f"{mnem} expects {n} operands, got {len(ops)}: {ops}"
            )

    if mnem in ("ecall", "ebreak"):
        need(0)
        return Instruction(spec)
    if mnem == "fence":
        return Instruction(spec)
    if spec.fmt == "U":
        need(2)
        return Instruction(spec, rd=_xreg(ops[0]),
                           imm=_parse_imm(ops[1], labels, None))
    if spec.fmt == "J":
        need(2)
        return Instruction(spec, rd=_xreg(ops[0]),
                           imm=_parse_imm(ops[1], labels, pc))
    if spec.fmt == "B":
        need(3)
        return Instruction(spec, rs1=_xreg(ops[0]), rs2=_xreg(ops[1]),
                           imm=_parse_imm(ops[2], labels, pc))
    if g in ("load", "eload") or mnem == "jalr":
        need(2)
        m = _MEMOP_RE.match(ops[1].replace(" ", ""))
        if m:
            imm, rs1 = _parse_imm(m.group(1), labels, None), _xreg(m.group(2))
        else:  # "jalr rd, rs1, imm" three-operand form
            raise AssemblerError(f"{mnem}: expected imm(rs1), got {ops[1]!r}")
        return Instruction(spec, rd=_xreg(ops[0]), rs1=rs1, imm=imm)
    if g in ("store", "estore"):
        need(2)
        m = _MEMOP_RE.match(ops[1].replace(" ", ""))
        if not m:
            raise AssemblerError(f"{mnem}: expected imm(rs1), got {ops[1]!r}")
        return Instruction(spec, rs2=_xreg(ops[0]),
                           rs1=_xreg(m.group(2)),
                           imm=_parse_imm(m.group(1), labels, None))
    if g == "erload":
        # erld rd, rs1, ext2 — address = EXT[ext2] : x[rs1]
        need(3)
        return Instruction(spec, rd=_xreg(ops[0]), rs1=_xreg(ops[1]),
                           rs2=_ereg(ops[2]))
    if g == "erstore":
        # ersd rs1, rs2, ext3 — store x[rs1] at EXT[ext3] : x[rs2]
        need(3)
        return Instruction(spec, rs1=_xreg(ops[0]), rs2=_xreg(ops[1]),
                           rd=_ereg(ops[2]))
    if g == "eaddr":
        need(3)
        imm = _parse_imm(ops[2], labels, None)
        if mnem == "eaddi":       # rd = EXT[rs1] + imm
            return Instruction(spec, rd=_xreg(ops[0]), rs1=_ereg(ops[1]), imm=imm)
        if mnem == "eaddie":      # EXT[rd] = x[rs1] + imm
            return Instruction(spec, rd=_ereg(ops[0]), rs1=_xreg(ops[1]), imm=imm)
        # eaddix: EXT[rd] = EXT[rs1] + imm
        return Instruction(spec, rd=_ereg(ops[0]), rs1=_ereg(ops[1]), imm=imm)
    if spec.fmt in ("I", "Ish"):
        need(3)
        return Instruction(spec, rd=_xreg(ops[0]), rs1=_xreg(ops[1]),
                           imm=_parse_imm(ops[2], labels, None))
    if spec.fmt == "R":
        need(3)
        return Instruction(spec, rd=_xreg(ops[0]), rs1=_xreg(ops[1]),
                           rs2=_xreg(ops[2]))
    raise AssemblerError(f"cannot assemble {mnem}")  # pragma: no cover


def assemble(source: str, base: int = 0) -> Program:
    """Assemble ``source`` into a :class:`Program` at address ``base``."""
    # Pass 1: label addresses.
    labels: dict[str, int] = {}
    statements: list[tuple[int, str, list[str], int]] = []  # (addr, mnem, ops, line_no)
    addr = base
    for line_no, raw in enumerate(source.splitlines(), start=1):
        label, stmt = _split_line(raw)
        if label is not None:
            if label in labels:
                raise AssemblerError(f"line {line_no}: duplicate label {label!r}")
            labels[label] = addr
        if stmt is None:
            continue
        mnem, ops = _tokenize(stmt)
        try:
            size = _statement_size(mnem, ops)
        except AssemblerError as exc:
            raise AssemblerError(f"line {line_no}: {exc}") from None
        statements.append((addr, mnem, ops, line_no))
        addr += size

    # Pass 2: encode.
    words: list[int] = []
    for addr, mnem, ops, line_no in statements:
        try:
            if mnem == ".dword":
                for tok in ops:
                    v = _parse_imm(tok, labels, None) & ((1 << 64) - 1)
                    words.append(v & 0xFFFFFFFF)
                    words.append(v >> 32)
                continue
            if mnem == ".word":
                for tok in ops:
                    words.append(_parse_imm(tok, labels, None) & 0xFFFFFFFF)
                continue
            pc = addr
            for real_mnem, real_ops in _expand_pseudo(mnem, ops):
                instr = _build(real_mnem, real_ops, labels, pc)
                words.append(encode(instr))
                pc += 4
        except (AssemblerError, DecodeError) as exc:
            raise AssemblerError(f"line {line_no}: {exc}") from None
    return Program(words, labels)
