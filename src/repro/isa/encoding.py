"""Instruction encodings: RV64I subset (+M) and the xBGAS extension.

The base instructions use the standard RISC-V formats (R/I/S/B/U/J) and
opcodes from the RV64I user-level specification.  The xBGAS extension
occupies the RISC-V *custom* opcode space; the paper defers exact
encodings to the xbgas-archspec, so this reproduction assigns them as
follows (documented here as the single source of truth):

========================  =======  ======================================
group                     opcode   format
========================  =======  ======================================
extended loads (eld...)    0x77    I-type; ext register implied by rs1
extended stores (esd...)   0x7B    S-type; ext register implied by rs1
raw loads (erld...)        0x0B    R-type; rs2 field names the ext reg
raw stores (ersd...)       0x0B    R-type (funct7 bit 5 set); rd field
                                   names the ext reg, rs1=data, rs2=addr
address management         0x2B    I-type (eaddi/eaddie/eaddix selected
                                   by funct3)
remote atomics (eamo...)   0x5B    R-type; funct3 0b011, funct7 names
                                   the fetch-and-op
messaging (e...*.m)        0x5B    R-type; funct3 0b100/101/110 select
                                   send/recv/probe
========================  =======  ======================================

Immediates are the standard sign-extended RISC-V forms; raw-type xBGAS
instructions carry no immediate (paper section 3.2: "Due to the reduced
availability of encoding space, no immediate addressing is allowed for
Raw-Type instructions").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DecodeError

__all__ = [
    "InstrSpec",
    "Instruction",
    "INSTRUCTION_SPECS",
    "spec_of",
    "encode",
    "decode",
]


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one mnemonic."""

    name: str
    fmt: str  # one of R, I, S, B, U, J, Ish (shift-immediate)
    opcode: int
    funct3: int | None = None
    funct7: int | None = None
    #: Instruction class used for cycle costing and execution dispatch.
    group: str = "alu"


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    spec: InstrSpec
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    @property
    def name(self) -> str:
        return self.spec.name


def _spec_list() -> list[InstrSpec]:
    s: list[InstrSpec] = []

    def add(name: str, fmt: str, opcode: int, f3: int | None = None,
            f7: int | None = None, group: str = "alu") -> None:
        s.append(InstrSpec(name, fmt, opcode, f3, f7, group))

    # ---- RV64I ----
    add("lui", "U", 0x37)
    add("auipc", "U", 0x17)
    add("jal", "J", 0x6F, group="jump")
    add("jalr", "I", 0x67, 0b000, group="jump")
    for name, f3 in (("beq", 0b000), ("bne", 0b001), ("blt", 0b100),
                     ("bge", 0b101), ("bltu", 0b110), ("bgeu", 0b111)):
        add(name, "B", 0x63, f3, group="branch")
    for name, f3 in (("lb", 0b000), ("lh", 0b001), ("lw", 0b010),
                     ("ld", 0b011), ("lbu", 0b100), ("lhu", 0b101),
                     ("lwu", 0b110)):
        add(name, "I", 0x03, f3, group="load")
    for name, f3 in (("sb", 0b000), ("sh", 0b001), ("sw", 0b010),
                     ("sd", 0b011)):
        add(name, "S", 0x23, f3, group="store")
    for name, f3 in (("addi", 0b000), ("slti", 0b010), ("sltiu", 0b011),
                     ("xori", 0b100), ("ori", 0b110), ("andi", 0b111)):
        add(name, "I", 0x13, f3)
    add("slli", "Ish", 0x13, 0b001, 0b0000000)
    add("srli", "Ish", 0x13, 0b101, 0b0000000)
    add("srai", "Ish", 0x13, 0b101, 0b0100000)
    add("addiw", "I", 0x1B, 0b000)
    add("slliw", "Ish", 0x1B, 0b001, 0b0000000)
    add("srliw", "Ish", 0x1B, 0b101, 0b0000000)
    add("sraiw", "Ish", 0x1B, 0b101, 0b0100000)
    for name, f3, f7 in (("add", 0b000, 0b0000000), ("sub", 0b000, 0b0100000),
                         ("sll", 0b001, 0b0000000), ("slt", 0b010, 0b0000000),
                         ("sltu", 0b011, 0b0000000), ("xor", 0b100, 0b0000000),
                         ("srl", 0b101, 0b0000000), ("sra", 0b101, 0b0100000),
                         ("or", 0b110, 0b0000000), ("and", 0b111, 0b0000000)):
        add(name, "R", 0x33, f3, f7)
    for name, f3, f7 in (("addw", 0b000, 0b0000000), ("subw", 0b000, 0b0100000),
                         ("sllw", 0b001, 0b0000000), ("srlw", 0b101, 0b0000000),
                         ("sraw", 0b101, 0b0100000)):
        add(name, "R", 0x3B, f3, f7)
    # M extension (the 64-bit ops the runtime's generated code needs).
    for name, f3 in (("mul", 0b000), ("mulh", 0b001), ("mulhu", 0b011),
                     ("div", 0b100), ("divu", 0b101), ("rem", 0b110),
                     ("remu", 0b111)):
        add(name, "R", 0x33, f3, 0b0000001, group="muldiv")
    add("mulw", "R", 0x3B, 0b000, 0b0000001, group="muldiv")
    add("divw", "R", 0x3B, 0b100, 0b0000001, group="muldiv")
    add("remw", "R", 0x3B, 0b110, 0b0000001, group="muldiv")
    add("fence", "I", 0x0F, 0b000, group="system")
    add("ecall", "I", 0x73, 0b000, group="system")
    # ebreak shares opcode/funct3 with ecall; imm distinguishes (1).
    add("ebreak", "I", 0x73, 0b001, group="system")

    # ---- xBGAS: extended (base-type) loads & stores ----
    for name, f3 in (("elb", 0b000), ("elh", 0b001), ("elw", 0b010),
                     ("eld", 0b011), ("elbu", 0b100), ("elhu", 0b101),
                     ("elwu", 0b110)):
        add(name, "I", 0x77, f3, group="eload")
    for name, f3 in (("esb", 0b000), ("esh", 0b001), ("esw", 0b010),
                     ("esd", 0b011)):
        add(name, "S", 0x7B, f3, group="estore")

    # ---- xBGAS: raw-type loads & stores (no immediate) ----
    for name, f3 in (("erlb", 0b000), ("erlh", 0b001), ("erlw", 0b010),
                     ("erld", 0b011), ("erlbu", 0b100), ("erlhu", 0b101),
                     ("erlwu", 0b110)):
        add(name, "R", 0x0B, f3, 0b0000000, group="erload")
    for name, f3 in (("ersb", 0b000), ("ersh", 0b001), ("ersw", 0b010),
                     ("ersd", 0b011)):
        add(name, "R", 0x0B, f3, 0b0100000, group="erstore")

    # ---- xBGAS: address management ----
    add("eaddi", "I", 0x2B, 0b000, group="eaddr")   # rd  = EXT[rs1] + imm
    add("eaddie", "I", 0x2B, 0b001, group="eaddr")  # EXT[rd] = rs1 + imm
    add("eaddix", "I", 0x2B, 0b010, group="eaddr")  # EXT[rd] = EXT[rs1] + imm

    # ---- xBGAS: remote atomics (eamo*.d) ----
    # One-sided fetch-and-op on a remote 64-bit word: rd = old value of
    # MEM[EXT[rs1] : x[rs1]], which becomes (old OP x[rs2]).  Base-type
    # addressing (the extended register paired with rs1).  Encoded in
    # the remaining custom space (opcode 0x5B, funct7 selects the op).
    for name, f7 in (("eamoswap.d", 0b0000100), ("eamoadd.d", 0b0000000),
                     ("eamoxor.d", 0b0010000), ("eamoand.d", 0b0110000),
                     ("eamoor.d", 0b0100000), ("eamomin.d", 0b1000000),
                     ("eamomax.d", 0b1010000)):
        add(name, "R", 0x5B, 0b011, f7, group="eamo")

    # ---- xBGAS: two-sided messaging (mailbox engine) ----
    # The Xctcmsg-style core-to-core surface over opcode 0x5B's free
    # funct3 slots.  esend.m enqueues MEM[x[rs1]] (x[rs2] bytes) into
    # the mailbox of the PE named by the extended register paired with
    # rs1; ercv.m blocks for the pair-FIFO head from that PE into
    # MEM[x[rs1]] (rd = received byte count); eprobe.m sets rd to the
    # visible-message count without blocking.
    add("esend.m", "R", 0x5B, 0b100, 0b0000000, group="emsg")
    add("ercv.m", "R", 0x5B, 0b101, 0b0000000, group="emsg")
    add("eprobe.m", "R", 0x5B, 0b110, 0b0000000, group="emsg")
    return s


INSTRUCTION_SPECS: tuple[InstrSpec, ...] = tuple(_spec_list())

_BY_NAME: dict[str, InstrSpec] = {s.name: s for s in INSTRUCTION_SPECS}

# Decode tables keyed by (opcode, funct3[, funct7]).
_DECODE_I: dict[tuple[int, int], InstrSpec] = {}
_DECODE_R: dict[tuple[int, int, int], InstrSpec] = {}
_DECODE_SIMPLE: dict[int, InstrSpec] = {}
for _s in INSTRUCTION_SPECS:
    if _s.fmt in ("U", "J"):
        _DECODE_SIMPLE[_s.opcode] = _s
    elif _s.fmt in ("R", "Ish"):
        _DECODE_R[(_s.opcode, _s.funct3 or 0, _s.funct7 or 0)] = _s
    else:  # I, S, B
        key = (_s.opcode, _s.funct3 or 0)
        if _s.name == "ebreak":
            continue  # resolved from the immediate during decode
        _DECODE_I[key] = _s


def spec_of(name: str) -> InstrSpec:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise DecodeError(f"unknown mnemonic {name!r}") from None


def _fit_signed(value: int, bits: int, what: str) -> int:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise DecodeError(f"{what} {value} does not fit in {bits} signed bits")
    return value & ((1 << bits) - 1)


def encode(instr: Instruction) -> int:
    """Encode an :class:`Instruction` into its 32-bit word."""
    s = instr.spec
    op, rd, rs1, rs2 = s.opcode, instr.rd, instr.rs1, instr.rs2
    f3 = s.funct3 or 0
    f7 = s.funct7 or 0
    for reg, nm in ((rd, "rd"), (rs1, "rs1"), (rs2, "rs2")):
        if not 0 <= reg < 32:
            raise DecodeError(f"{nm}={reg} out of range for {s.name}")
    if s.fmt == "R":
        return op | rd << 7 | f3 << 12 | rs1 << 15 | rs2 << 20 | f7 << 25
    if s.fmt == "Ish":
        sh = instr.imm
        if not 0 <= sh < 64:
            raise DecodeError(f"shift amount {sh} out of range")
        return op | rd << 7 | f3 << 12 | rs1 << 15 | sh << 20 | (f7 >> 1) << 26
    if s.fmt == "I":
        imm = 1 if s.name == "ebreak" else instr.imm
        u = _fit_signed(imm, 12, f"{s.name} immediate")
        return op | rd << 7 | f3 << 12 | rs1 << 15 | u << 20
    if s.fmt == "S":
        u = _fit_signed(instr.imm, 12, f"{s.name} immediate")
        lo, hi = u & 0x1F, u >> 5
        return op | lo << 7 | f3 << 12 | rs1 << 15 | rs2 << 20 | hi << 25
    if s.fmt == "B":
        u = _fit_signed(instr.imm, 13, f"{s.name} offset")
        if u & 1:
            raise DecodeError(f"{s.name} offset must be even")
        b11 = (u >> 11) & 1
        b4_1 = (u >> 1) & 0xF
        b10_5 = (u >> 5) & 0x3F
        b12 = (u >> 12) & 1
        return (op | b11 << 7 | b4_1 << 8 | f3 << 12 | rs1 << 15
                | rs2 << 20 | b10_5 << 25 | b12 << 31)
    if s.fmt == "U":
        imm = instr.imm
        if not -(1 << 31) <= imm < (1 << 32):
            raise DecodeError(f"{s.name} immediate out of range")
        return op | rd << 7 | (imm & 0xFFFFF000)
    if s.fmt == "J":
        u = _fit_signed(instr.imm, 21, f"{s.name} offset")
        if u & 1:
            raise DecodeError(f"{s.name} offset must be even")
        b19_12 = (u >> 12) & 0xFF
        b11 = (u >> 11) & 1
        b10_1 = (u >> 1) & 0x3FF
        b20 = (u >> 20) & 1
        return (op | rd << 7 | b19_12 << 12 | b11 << 20 | b10_1 << 21
                | b20 << 31)
    raise DecodeError(f"unhandled format {s.fmt}")  # pragma: no cover


def _sext(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def decode(word: int) -> Instruction:
    """Decode a 32-bit word; raises :class:`DecodeError` if unknown."""
    if not 0 <= word < (1 << 32):
        raise DecodeError(f"word {word:#x} is not 32-bit")
    op = word & 0x7F
    rd = (word >> 7) & 0x1F
    f3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    f7 = (word >> 25) & 0x7F

    spec = _DECODE_SIMPLE.get(op)
    if spec is not None:
        if spec.fmt == "U":
            return Instruction(spec, rd=rd, imm=_sext(word & 0xFFFFF000, 32))
        # J
        imm = (((word >> 31) & 1) << 20 | ((word >> 12) & 0xFF) << 12
               | ((word >> 20) & 1) << 11 | ((word >> 21) & 0x3FF) << 1)
        return Instruction(spec, rd=rd, imm=_sext(imm, 21))

    spec = _DECODE_R.get((op, f3, f7))
    if spec is not None:
        if spec.fmt == "Ish":
            return Instruction(spec, rd=rd, rs1=rs1, imm=(word >> 20) & 0x3F)
        return Instruction(spec, rd=rd, rs1=rs1, rs2=rs2)
    if op in (0x13, 0x1B) and f3 in (0b001, 0b101):
        # Shift immediates: funct7's low bit overlaps the 6-bit shamt.
        spec = _DECODE_R.get((op, f3, f7 & 0b1111110))
        if spec is not None:
            return Instruction(spec, rd=rd, rs1=rs1, imm=(word >> 20) & 0x3F)

    spec = _DECODE_I.get((op, f3))
    if spec is not None:
        if spec.fmt == "I":
            imm = _sext(word >> 20, 12)
            if spec.name == "ecall" and imm == 1:
                return Instruction(_BY_NAME["ebreak"], imm=1)
            return Instruction(spec, rd=rd, rs1=rs1, imm=imm)
        if spec.fmt == "S":
            imm = _sext((f7 << 5) | rd, 12)
            return Instruction(spec, rs1=rs1, rs2=rs2, imm=imm)
        if spec.fmt == "B":
            imm = (((word >> 31) & 1) << 12 | ((word >> 7) & 1) << 11
                   | ((word >> 25) & 0x3F) << 5 | ((word >> 8) & 0xF) << 1)
            return Instruction(spec, rs1=rs1, rs2=rs2, imm=_sext(imm, 13))
    # ebreak: opcode 0x73, funct3 0, imm 1 — handled above via ecall path;
    # funct3 001 encoding is never emitted but accept it for robustness.
    if op == 0x73 and f3 == 0b001:
        return Instruction(_BY_NAME["ebreak"], imm=1)
    raise DecodeError(
        f"cannot decode word {word:#010x} (opcode={op:#x}, funct3={f3:#x}, "
        f"funct7={f7:#x})"
    )
