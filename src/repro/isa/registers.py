"""Register files: the RV64I base registers and the xBGAS extended set.

Figure 1 of the paper: 32 standard 64-bit base registers ``x0..x31``
(``x0`` hardwired to zero) plus 32 xBGAS extended registers ``e0..e31``.
An extended register holds the object ID half of a 128-bit extended
address; the base register holds the 64-bit local address.
"""

from __future__ import annotations

from ..errors import IsaError

__all__ = ["RegisterFile", "X_NAMES", "E_NAMES", "ABI_NAMES", "parse_register"]

MASK64 = (1 << 64) - 1

X_NAMES = tuple(f"x{i}" for i in range(32))
E_NAMES = tuple(f"e{i}" for i in range(32))

#: Standard RISC-V ABI mnemonics for the base registers.
ABI_NAMES = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7,
    "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13,
    "a4": 14, "a5": 15, "a6": 16, "a7": 17,
    "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22,
    "s7": 23, "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}


def parse_register(name: str) -> tuple[str, int]:
    """Parse a register mnemonic into ``("x"|"e", index)``.

    Accepts ``x0..x31``, ABI names (``a0``, ``sp``, ...) and the xBGAS
    extended registers ``e0..e31``.
    """
    n = name.strip().lower()
    if n in ABI_NAMES:
        return "x", ABI_NAMES[n]
    if len(n) >= 2 and n[0] in ("x", "e") and n[1:].isdigit():
        idx = int(n[1:])
        if 0 <= idx < 32:
            return n[0], idx
    raise IsaError(f"unknown register {name!r}")


def _to_u64(value: int) -> int:
    return value & MASK64


def _to_s64(value: int) -> int:
    value &= MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


class RegisterFile:
    """The combined x/e register file of one xBGAS hart."""

    __slots__ = ("_x", "_e")

    def __init__(self) -> None:
        self._x = [0] * 32
        self._e = [0] * 32

    # -- base registers ----------------------------------------------------

    def read_x(self, idx: int) -> int:
        """Unsigned 64-bit value of ``x[idx]`` (``x0`` reads as 0)."""
        return self._x[idx]

    def read_x_signed(self, idx: int) -> int:
        return _to_s64(self._x[idx])

    def write_x(self, idx: int, value: int) -> None:
        """Write ``x[idx]``; writes to ``x0`` are discarded."""
        if idx != 0:
            self._x[idx] = _to_u64(value)

    # -- extended registers ---------------------------------------------------

    def read_e(self, idx: int) -> int:
        """Unsigned 64-bit object ID held in ``e[idx]``."""
        return self._e[idx]

    def write_e(self, idx: int, value: int) -> None:
        self._e[idx] = _to_u64(value)

    # -- convenience -------------------------------------------------------------

    def extended_address(self, base_idx: int, ext_idx: int, offset: int = 0) -> tuple[int, int]:
        """The 128-bit extended address ``(object_id, local_addr)`` formed
        from ``e[ext_idx]`` and ``x[base_idx] + offset``."""
        return self._e[ext_idx], _to_u64(self._x[base_idx] + offset)

    def snapshot(self) -> dict[str, int]:
        """All non-zero registers, for debugging and tests."""
        out: dict[str, int] = {}
        for i, v in enumerate(self._x):
            if v:
                out[f"x{i}"] = v
        for i, v in enumerate(self._e):
            if v:
                out[f"e{i}"] = v
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegisterFile({self.snapshot()})"
