"""Per-PE byte-addressable memory, numpy-backed.

Functional state only — access *timing* is the job of
:class:`repro.machine.memsys.MemoryHierarchy`.  Little-endian, like
RISC-V.  Besides scalar load/store the class exposes zero-copy numpy
views (optionally strided) that the runtime's bulk-transfer engine and
user programs use for vectorised work.
"""

from __future__ import annotations

import numpy as np

from ..errors import AddressError

__all__ = ["Memory"]

MASK64 = (1 << 64) - 1


class Memory:
    """A flat little-endian memory of ``size`` bytes."""

    def __init__(self, size: int):
        if size <= 0:
            raise AddressError("memory size must be positive")
        self.size = size
        self.buf = np.zeros(size, dtype=np.uint8)

    # -- bounds ---------------------------------------------------------------

    def check(self, addr: int, nbytes: int) -> None:
        """Raise :class:`AddressError` unless [addr, addr+nbytes) is valid."""
        if addr < 0 or nbytes < 0 or addr + nbytes > self.size:
            raise AddressError(
                f"access [{addr:#x}, {addr + nbytes:#x}) outside memory "
                f"of {self.size:#x} bytes"
            )

    # -- scalar load/store ------------------------------------------------------

    def load(self, addr: int, nbytes: int, signed: bool = False) -> int:
        """Load an integer of 1/2/4/8 bytes (little-endian)."""
        if nbytes not in (1, 2, 4, 8):
            raise AddressError(f"unsupported scalar width {nbytes}")
        self.check(addr, nbytes)
        raw = self.buf[addr : addr + nbytes].tobytes()
        return int.from_bytes(raw, "little", signed=signed)

    def store(self, addr: int, nbytes: int, value: int) -> None:
        """Store the low ``nbytes`` bytes of ``value`` (little-endian)."""
        if nbytes not in (1, 2, 4, 8):
            raise AddressError(f"unsupported scalar width {nbytes}")
        self.check(addr, nbytes)
        value &= (1 << (8 * nbytes)) - 1
        self.buf[addr : addr + nbytes] = np.frombuffer(
            value.to_bytes(nbytes, "little"), dtype=np.uint8
        )

    # -- bulk access ------------------------------------------------------------

    def read_bytes(self, addr: int, nbytes: int) -> np.ndarray:
        """A read-only *view* of ``nbytes`` bytes at ``addr``."""
        self.check(addr, nbytes)
        v = self.buf[addr : addr + nbytes]
        v.flags.writeable = False
        return v

    def write_bytes(self, addr: int, data: np.ndarray | bytes) -> None:
        arr = np.frombuffer(data, dtype=np.uint8) if isinstance(data, bytes) else np.asarray(data, dtype=np.uint8)
        self.check(addr, arr.size)
        self.buf[addr : addr + arr.size] = arr

    def view(
        self,
        addr: int,
        dtype: np.dtype | str,
        count: int,
        stride: int = 1,
    ) -> np.ndarray:
        """A writable numpy view of ``count`` elements of ``dtype`` at
        ``addr``, ``stride`` elements apart (stride 1 = dense).

        The view aliases memory: writes through it are stores.
        """
        dt = np.dtype(dtype)
        if count < 0:
            raise AddressError("count must be non-negative")
        if stride < 1:
            raise AddressError(f"stride must be >= 1, got {stride}")
        if count == 0:
            return np.empty(0, dtype=dt)
        span = ((count - 1) * stride + 1) * dt.itemsize
        self.check(addr, span)
        dense = self.buf[addr : addr + span].view(dt)
        return dense[:: stride]

    def fill(self, addr: int, nbytes: int, byte: int = 0) -> None:
        self.check(addr, nbytes)
        self.buf[addr : addr + nbytes] = byte

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Memory({self.size:#x} bytes)"
