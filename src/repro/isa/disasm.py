"""Disassembler: 32-bit words back to assembler-accepted text.

Round-trips with :mod:`repro.isa.assembler`: for any encodable
instruction, ``assemble(disassemble(word))`` reproduces the word (the
test suite property-checks this over the whole spec table).  Used by
the debugging helpers and the ``xbgas_assembly`` example to show what
the runtime's generated transfer loops look like.
"""

from __future__ import annotations

from .encoding import Instruction, decode

__all__ = ["disassemble", "disassemble_program", "format_instruction"]


def format_instruction(instr: Instruction) -> str:
    """Render one decoded instruction in assembler syntax."""
    s = instr.spec
    name, g, fmt = s.name, s.group, s.fmt
    rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
    if name in ("ecall", "ebreak", "fence"):
        return name
    if fmt == "U":
        return f"{name} x{rd}, {imm}"
    if fmt == "J":
        return f"{name} x{rd}, {imm}"
    if fmt == "B":
        return f"{name} x{rs1}, x{rs2}, {imm}"
    if g in ("load", "eload") or name == "jalr":
        return f"{name} x{rd}, {imm}(x{rs1})"
    if g in ("store", "estore"):
        return f"{name} x{rs2}, {imm}(x{rs1})"
    if g == "erload":
        return f"{name} x{rd}, x{rs1}, e{rs2}"
    if g == "erstore":
        return f"{name} x{rs1}, x{rs2}, e{rd}"
    if g == "eamo":
        return f"{name} x{rd}, x{rs1}, x{rs2}"
    if g == "eaddr":
        if name == "eaddi":
            return f"{name} x{rd}, e{rs1}, {imm}"
        if name == "eaddie":
            return f"{name} e{rd}, x{rs1}, {imm}"
        return f"{name} e{rd}, e{rs1}, {imm}"
    if fmt in ("I", "Ish"):
        return f"{name} x{rd}, x{rs1}, {imm}"
    return f"{name} x{rd}, x{rs1}, x{rs2}"  # R


def disassemble(word: int) -> str:
    """Disassemble one 32-bit word."""
    return format_instruction(decode(word))


def disassemble_program(words: list[int], base: int = 0) -> str:
    """Disassemble a word list with addresses, one instruction per line."""
    lines = []
    for i, w in enumerate(words):
        try:
            text = disassemble(w)
        except Exception:
            text = f".word {w:#010x}"
        lines.append(f"{base + 4 * i:#06x}:  {w:08x}  {text}")
    return "\n".join(lines)
