"""The Object Look-aside Buffer (OLB).

Paper, section 3.2: every processing element carries an OLB mapping each
unique object ID to a remote physical resource.  When a remote
instruction executes, the upper 64 bits of the extended address (the
extended register) select the object; object ID 0 means "the local PE"
and bypasses the OLB entirely.

This reproduction follows the xbrtime convention: object ID ``k`` (k>0)
maps to processing element ``k - 1``, a mapping installed by the runtime
at ``xbrtime_init`` — but arbitrary remappings are supported for the
location-aware experiments (paper section 7).
"""

from __future__ import annotations

from ..errors import OlbMissError

__all__ = ["ObjectLookasideBuffer"]

#: Object ID reserved for "the local processing element".
LOCAL_OBJECT_ID = 0


class ObjectLookasideBuffer:
    """Object-ID → PE translation table with hit/miss accounting."""

    def __init__(self, owner_pe: int, lookup_ns: float = 2.0):
        self.owner_pe = owner_pe
        self.lookup_ns = lookup_ns
        self._map: dict[int, int] = {}
        self.lookups = 0
        self.misses = 0

    def install(self, object_id: int, pe: int) -> None:
        """Map ``object_id`` to processing element ``pe``."""
        if object_id == LOCAL_OBJECT_ID:
            raise OlbMissError("object ID 0 is reserved for the local PE")
        if object_id < 0 or pe < 0:
            raise OlbMissError("object IDs and PEs must be non-negative")
        self._map[object_id] = pe

    def install_default(self, n_pes: int) -> None:
        """The runtime's standard mapping: object ID k → PE k-1."""
        for k in range(1, n_pes + 1):
            self._map[k] = k - 1

    def is_local(self, object_id: int) -> bool:
        return object_id == LOCAL_OBJECT_ID

    def translate(self, object_id: int) -> int:
        """Resolve ``object_id`` to a PE; raises :class:`OlbMissError`."""
        self.lookups += 1
        try:
            return self._map[object_id]
        except KeyError:
            self.misses += 1
            raise OlbMissError(
                f"PE {self.owner_pe}: no OLB mapping for object ID "
                f"{object_id:#x}"
            ) from None

    def object_id_for(self, pe: int) -> int:
        """The object ID a program should place in an extended register to
        address ``pe`` (0 when ``pe`` is the OLB's owner)."""
        if pe == self.owner_pe:
            return LOCAL_OBJECT_ID
        for oid, target in self._map.items():
            if target == pe:
                return oid
        raise OlbMissError(f"PE {self.owner_pe}: no object ID maps to PE {pe}")

    def __len__(self) -> int:
        return len(self._map)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OLB(pe={self.owner_pe}, entries={len(self._map)})"
