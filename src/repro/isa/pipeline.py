"""Optional pipeline timing model (paper section 7).

The paper's future work couples Spike with the Structural Simulation
Toolkit via STAKE "to provide a cycle-accurate infrastructure".  This
module is that direction at the level a functional simulator can carry:
a classic in-order five-stage model layered on the per-instruction base
costs, adding

* **load-use hazards** — one stall cycle when an instruction consumes
  the destination of the immediately preceding load (local or remote);
* **taken-branch flushes** — a configurable refill penalty beyond the
  base taken-branch cost;
* **instruction fetch** through a modelled L1I cache (the paper's 16 KB
  8-way geometry by default) with misses filled from L2/DRAM timing.

Enable with ``Cpu(..., pipeline=PipelineModel(...))`` or machine-wide
with ``MachineConfig(pipeline=True)`` in ``isa`` fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.cache import Cache, CacheLevelResult
from ..params import CacheParams
from .encoding import Instruction

__all__ = ["PipelineParams", "PipelineModel"]

#: Instruction groups whose result arrives late (memory stage).
_LOAD_GROUPS = {"load", "eload", "erload", "eamo"}


@dataclass(frozen=True)
class PipelineParams:
    """Tunables of the pipeline model."""

    load_use_stall_cycles: int = 1
    branch_flush_cycles: int = 2
    icache: CacheParams = field(
        default_factory=lambda: CacheParams(size_bytes=16 * 1024, ways=8,
                                            hit_ns=0.0)
    )
    #: Fill cost of an I-cache miss (an L2 hit in the paper's hierarchy).
    icache_miss_ns: float = 10.0


def _reads(instr: Instruction) -> tuple[int, ...]:
    """Base registers an instruction reads (x0 never hazards)."""
    fmt = instr.spec.fmt
    group = instr.spec.group
    if group in ("eaddr",):
        # eaddie reads x[rs1]; the others read extended registers only.
        return (instr.rs1,) if instr.name == "eaddie" else ()
    if fmt in ("R",):
        if group == "erstore":
            return (instr.rs1, instr.rs2)
        return (instr.rs1, instr.rs2)
    if fmt in ("I", "Ish"):
        return (instr.rs1,)
    if fmt in ("S", "B"):
        return (instr.rs1, instr.rs2)
    return ()


def _writes(instr: Instruction) -> int | None:
    """The base register an instruction writes, if any."""
    group = instr.spec.group
    if group in ("store", "estore", "erstore", "branch", "system"):
        return None
    if group == "eaddr" and instr.name != "eaddi":
        return None  # eaddie/eaddix write extended registers
    rd = instr.rd
    return rd if rd != 0 else None


class PipelineModel:
    """Per-hart pipeline state; returns extra ns per executed instruction."""

    def __init__(self, params: PipelineParams | None = None,
                 cycle_ns: float = 1.0):
        self.params = params if params is not None else PipelineParams()
        self.cycle_ns = cycle_ns
        self.icache = Cache(self.params.icache)
        self._last_load_rd: int | None = None
        self.stalls = 0
        self.flushes = 0
        self.icache_misses = 0

    def fetch_ns(self, pc: int) -> float:
        """Cost of fetching the instruction at ``pc``."""
        line = self.icache.line_of(pc)
        if self.icache.access(line, False) is CacheLevelResult.MISS:
            self.icache_misses += 1
            return self.params.icache_miss_ns
        return 0.0

    def issue_ns(self, instr: Instruction, branch_taken: bool) -> float:
        """Hazard/flush cost of issuing ``instr`` after the previous one."""
        ns = 0.0
        if (self._last_load_rd is not None
                and self._last_load_rd in _reads(instr)):
            self.stalls += 1
            ns += self.params.load_use_stall_cycles * self.cycle_ns
        if branch_taken:
            self.flushes += 1
            ns += self.params.branch_flush_cycles * self.cycle_ns
        self._last_load_rd = (
            _writes(instr) if instr.spec.group in _LOAD_GROUPS else None
        )
        return ns

    def reset(self) -> None:
        self._last_load_rd = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PipelineModel(stalls={self.stalls}, flushes={self.flushes},"
                f" icache_misses={self.icache_misses})")
