"""The functional xBGAS hart: fetch, decode, execute, with cycle costing.

One :class:`Cpu` models one RISC-V core extended with xBGAS (the role a
Spike instance plays in the paper's infrastructure).  Functional state is
the register file, the PC and a :class:`~repro.isa.memory.Memory`;
timing comes from a per-instruction base cost plus the
:class:`~repro.machine.memsys.MemoryHierarchy` for local memory traffic
and a pluggable remote-access port for xBGAS traffic.

Remote semantics (paper section 3.2): an extended load/store reads the
object ID from the relevant extended register; 0 means local, anything
else is translated by the :class:`~repro.isa.olb.ObjectLookasideBuffer`
and the access is performed on the remote PE's memory through the
``remote_port``.
"""

from __future__ import annotations

import enum
from typing import Protocol

from ..errors import IsaError
from ..machine.memsys import MemoryHierarchy
from .encoding import Instruction, decode
from .memory import Memory
from .olb import ObjectLookasideBuffer

__all__ = ["Cpu", "HaltReason", "RemotePort", "amo_apply"]

MASK64 = (1 << 64) - 1


def _s64(v: int) -> int:
    v &= MASK64
    return v - (1 << 64) if v >= (1 << 63) else v


def _u64(v: int) -> int:
    return v & MASK64


class RemotePort(Protocol):
    """How a core reaches other PEs' memories (implemented by the runtime)."""

    def remote_load(self, target_pe: int, addr: int, nbytes: int, signed: bool) -> tuple[int, float]:
        """Return ``(value, ns)``."""
        ...

    def remote_store(self, target_pe: int, addr: int, nbytes: int, value: int) -> float:
        """Return the ns charged to the issuing core."""
        ...

    def remote_amo(self, target_pe: int, addr: int, op: str, value: int) -> tuple[int, float]:
        """One-sided 64-bit fetch-and-op; return ``(old_value, ns)``."""
        ...


def amo_apply(op: str, old: int, value: int) -> int:
    """The new memory value of a 64-bit AMO (RISC-V A-extension rules)."""
    if op == "swap":
        return value & MASK64
    if op == "add":
        return (old + value) & MASK64
    if op == "xor":
        return old ^ value
    if op == "and":
        return old & value
    if op == "or":
        return old | value
    if op == "min":
        return old if _s64(old) <= _s64(value) else value
    if op == "max":
        return old if _s64(old) >= _s64(value) else value
    raise IsaError(f"unknown AMO op {op!r}")


class HaltReason(enum.Enum):
    EBREAK = "ebreak"
    ECALL = "ecall"
    MAX_INSTRUCTIONS = "max-instructions"


#: Base cycles per instruction group (a simple in-order pipeline model).
GROUP_CYCLES = {
    "alu": 1,
    "muldiv": 3,
    "branch": 1,
    "jump": 2,
    "load": 1,
    "store": 1,
    "eload": 1,
    "estore": 1,
    "erload": 1,
    "erstore": 1,
    "eaddr": 1,
    "eamo": 2,
    "system": 1,
}
TAKEN_BRANCH_EXTRA = 1

_WIDTH = {"b": 1, "h": 2, "w": 4, "d": 8}


def _load_width(name: str) -> tuple[int, bool]:
    """(nbytes, signed) for any load mnemonic (lb, elwu, erld, ...)."""
    stem = name.rstrip("u")
    signed = not name.endswith("u")
    return _WIDTH[stem[-1]], signed


class Cpu:
    """One xBGAS hart."""

    def __init__(
        self,
        pe: int,
        memory: Memory,
        memsys: MemoryHierarchy | None = None,
        olb: ObjectLookasideBuffer | None = None,
        remote_port: RemotePort | None = None,
        cycle_ns: float = 1.0,
        pipeline: "object | None" = None,
    ):
        self.pe = pe
        self.memory = memory
        self.memsys = memsys
        self.olb = olb if olb is not None else ObjectLookasideBuffer(pe)
        self.remote_port = remote_port
        self.cycle_ns = cycle_ns
        #: Optional :class:`repro.isa.pipeline.PipelineModel` adding
        #: hazard stalls, branch flushes and I-cache fetch costs.
        self.pipeline = pipeline
        from .registers import RegisterFile

        self.regs = RegisterFile()
        self.pc = 0
        self.halted: HaltReason | None = None
        self.instructions_retired = 0
        self.ns_elapsed = 0.0
        self._decode_cache: dict[int, Instruction] = {}

    # -- program loading ---------------------------------------------------

    def load_program(self, words: list[int], base: int = 0) -> None:
        """Write an assembled program at ``base`` and point the PC at it."""
        addr = base
        for w in words:
            self.memory.store(addr, 4, w)
            addr += 4
        self.pc = base
        self.halted = None

    # -- timing helpers ----------------------------------------------------

    def _mem_ns(self, addr: int, size: int, write: bool) -> float:
        if self.memsys is None:
            return 0.0
        return self.memsys.access(addr, size, write)

    def _charge(self, cycles: int) -> None:
        self.ns_elapsed += cycles * self.cycle_ns

    # -- remote access -------------------------------------------------------

    def _remote_target(self, object_id: int) -> int | None:
        """None for local (object ID 0), else the target PE."""
        if self.olb.is_local(object_id):
            return None
        return self.olb.translate(object_id)

    def _do_eload(self, target: int | None, addr: int, nbytes: int, signed: bool) -> int:
        if target is None:
            self.ns_elapsed += self._mem_ns(addr, nbytes, False)
            return self.memory.load(addr, nbytes, signed)
        if self.remote_port is None:
            raise IsaError(
                f"PE {self.pe}: remote load to PE {target} but no remote port"
            )
        self.ns_elapsed += self.olb.lookup_ns
        value, ns = self.remote_port.remote_load(target, addr, nbytes, signed)
        self.ns_elapsed += ns
        return value

    def _do_estore(self, target: int | None, addr: int, nbytes: int, value: int) -> None:
        if target is None:
            self.ns_elapsed += self._mem_ns(addr, nbytes, True)
            self.memory.store(addr, nbytes, value)
            return
        if self.remote_port is None:
            raise IsaError(
                f"PE {self.pe}: remote store to PE {target} but no remote port"
            )
        self.ns_elapsed += self.olb.lookup_ns
        self.ns_elapsed += self.remote_port.remote_store(target, addr, nbytes, value)

    # -- execution ---------------------------------------------------------------

    def step(self) -> None:
        """Fetch, decode and execute one instruction."""
        if self.halted is not None:
            raise IsaError(f"PE {self.pe}: stepping a halted core")
        pipeline = self.pipeline
        if pipeline is not None:
            self.ns_elapsed += pipeline.fetch_ns(self.pc)
        word = self.memory.load(self.pc, 4)
        instr = self._decode_cache.get(word)
        if instr is None:
            instr = decode(word)
            self._decode_cache[word] = instr
        pc_before = self.pc
        self._execute(instr)
        if pipeline is not None:
            group = instr.spec.group
            redirected = (group == "jump"
                          or (group == "branch"
                              and self.pc != pc_before + 4))
            self.ns_elapsed += pipeline.issue_ns(instr, redirected)
        self.instructions_retired += 1

    def run(self, max_instructions: int = 10_000_000) -> HaltReason:
        """Run until ``ebreak``/``ecall`` or the instruction budget."""
        budget = max_instructions
        while self.halted is None:
            if budget <= 0:
                self.halted = HaltReason.MAX_INSTRUCTIONS
                break
            self.step()
            budget -= 1
        return self.halted

    # -- the interpreter ----------------------------------------------------------

    def _execute(self, instr: Instruction) -> None:  # noqa: C901 - dispatcher
        regs = self.regs
        name = instr.name
        group = instr.spec.group
        self._charge(GROUP_CYCLES[group])
        next_pc = self.pc + 4

        if group == "alu":
            rs1 = regs.read_x(instr.rs1)
            if instr.spec.fmt in ("I", "Ish", "U"):
                if name == "lui":
                    regs.write_x(instr.rd, instr.imm)
                elif name == "auipc":
                    regs.write_x(instr.rd, self.pc + instr.imm)
                else:
                    regs.write_x(instr.rd, self._alu_imm(name, rs1, instr.imm))
            else:
                rs2 = regs.read_x(instr.rs2)
                regs.write_x(instr.rd, self._alu_reg(name, rs1, rs2))
        elif group == "muldiv":
            rs1, rs2 = regs.read_x(instr.rs1), regs.read_x(instr.rs2)
            regs.write_x(instr.rd, self._muldiv(name, rs1, rs2))
        elif group == "branch":
            if self._branch_taken(name, regs.read_x(instr.rs1), regs.read_x(instr.rs2)):
                next_pc = self.pc + instr.imm
                self._charge(TAKEN_BRANCH_EXTRA)
        elif group == "jump":
            if name == "jal":
                regs.write_x(instr.rd, self.pc + 4)
                next_pc = self.pc + instr.imm
            else:  # jalr
                target = _u64(regs.read_x(instr.rs1) + instr.imm) & ~1
                regs.write_x(instr.rd, self.pc + 4)
                next_pc = target
        elif group == "load":
            nbytes, signed = _load_width(name)
            addr = _u64(regs.read_x(instr.rs1) + instr.imm)
            self.ns_elapsed += self._mem_ns(addr, nbytes, False)
            regs.write_x(instr.rd, self.memory.load(addr, nbytes, signed))
        elif group == "store":
            nbytes = _WIDTH[name[-1]]
            addr = _u64(regs.read_x(instr.rs1) + instr.imm)
            self.ns_elapsed += self._mem_ns(addr, nbytes, True)
            self.memory.store(addr, nbytes, regs.read_x(instr.rs2))
        elif group == "eload":
            # Base-type: the extended register *naturally corresponding*
            # to rs1 supplies the object ID (paper section 3.2).
            nbytes, signed = _load_width(name[1:])
            obj, addr = regs.extended_address(instr.rs1, instr.rs1, instr.imm)
            regs.write_x(instr.rd, self._do_eload(self._remote_target(obj), addr, nbytes, signed))
        elif group == "estore":
            nbytes = _WIDTH[name[-1]]
            obj, addr = regs.extended_address(instr.rs1, instr.rs1, instr.imm)
            self._do_estore(self._remote_target(obj), addr, nbytes, regs.read_x(instr.rs2))
        elif group == "erload":
            # Raw-type: erld rd, rs1, ext2 — address EXT[ext2] : x[rs1].
            nbytes, signed = _load_width(name[2:])
            obj = regs.read_e(instr.rs2)
            addr = regs.read_x(instr.rs1)
            regs.write_x(instr.rd, self._do_eload(self._remote_target(obj), addr, nbytes, signed))
        elif group == "erstore":
            # ersd rs1, rs2, ext3 — store x[rs1] at EXT[ext3] : x[rs2].
            nbytes = _WIDTH[name[-1]]
            obj = regs.read_e(instr.rd)
            addr = regs.read_x(instr.rs2)
            self._do_estore(self._remote_target(obj), addr, nbytes, regs.read_x(instr.rs1))
        elif group == "eamo":
            # eamoOP.d rd, rs1, rs2 — fetch-and-op at EXT[rs1] : x[rs1].
            op = name[4:-2]
            obj, addr = regs.extended_address(instr.rs1, instr.rs1, 0)
            value = regs.read_x(instr.rs2)
            target = self._remote_target(obj)
            if target is None:
                self.ns_elapsed += self._mem_ns(addr, 8, True)
                old = self.memory.load(addr, 8)
                self.memory.store(addr, 8, amo_apply(op, old, value))
            else:
                if self.remote_port is None:
                    raise IsaError(
                        f"PE {self.pe}: remote AMO to PE {target} but no "
                        "remote port"
                    )
                self.ns_elapsed += self.olb.lookup_ns
                old, ns = self.remote_port.remote_amo(target, addr, op, value)
                self.ns_elapsed += ns
            regs.write_x(instr.rd, old)
        elif group == "eaddr":
            if name == "eaddi":
                regs.write_x(instr.rd, regs.read_e(instr.rs1) + instr.imm)
            elif name == "eaddie":
                regs.write_e(instr.rd, regs.read_x(instr.rs1) + instr.imm)
            else:  # eaddix
                regs.write_e(instr.rd, regs.read_e(instr.rs1) + instr.imm)
        elif group == "system":
            if name == "ebreak":
                self.halted = HaltReason.EBREAK
            elif name == "ecall":
                self.halted = HaltReason.ECALL
            # fence: no-op in this memory model
        else:  # pragma: no cover - spec table is closed
            raise IsaError(f"unhandled group {group}")
        self.pc = next_pc

    # -- ALU helpers ---------------------------------------------------------

    @staticmethod
    def _alu_imm(name: str, rs1: int, imm: int) -> int:
        if name == "addi":
            return rs1 + imm
        if name == "slti":
            return int(_s64(rs1) < imm)
        if name == "sltiu":
            return int(rs1 < _u64(imm))
        if name == "xori":
            return rs1 ^ _u64(imm)
        if name == "ori":
            return rs1 | _u64(imm)
        if name == "andi":
            return rs1 & _u64(imm)
        if name == "slli":
            return rs1 << imm
        if name == "srli":
            return rs1 >> imm
        if name == "srai":
            return _s64(rs1) >> imm
        if name == "addiw":
            return _sext32(rs1 + imm)
        if name == "slliw":
            return _sext32(rs1 << imm)
        if name == "srliw":
            return _sext32((rs1 & 0xFFFFFFFF) >> imm)
        if name == "sraiw":
            return _sext32(_s32(rs1) >> imm)
        raise IsaError(f"unhandled ALU-imm {name}")  # pragma: no cover

    @staticmethod
    def _alu_reg(name: str, rs1: int, rs2: int) -> int:
        sh = rs2 & 0x3F
        if name == "add":
            return rs1 + rs2
        if name == "sub":
            return rs1 - rs2
        if name == "sll":
            return rs1 << sh
        if name == "slt":
            return int(_s64(rs1) < _s64(rs2))
        if name == "sltu":
            return int(rs1 < rs2)
        if name == "xor":
            return rs1 ^ rs2
        if name == "srl":
            return rs1 >> sh
        if name == "sra":
            return _s64(rs1) >> sh
        if name == "or":
            return rs1 | rs2
        if name == "and":
            return rs1 & rs2
        sh32 = rs2 & 0x1F
        if name == "addw":
            return _sext32(rs1 + rs2)
        if name == "subw":
            return _sext32(rs1 - rs2)
        if name == "sllw":
            return _sext32(rs1 << sh32)
        if name == "srlw":
            return _sext32((rs1 & 0xFFFFFFFF) >> sh32)
        if name == "sraw":
            return _sext32(_s32(rs1) >> sh32)
        raise IsaError(f"unhandled ALU-reg {name}")  # pragma: no cover

    @staticmethod
    def _muldiv(name: str, rs1: int, rs2: int) -> int:
        if name == "mul":
            return rs1 * rs2
        if name == "mulh":
            return (_s64(rs1) * _s64(rs2)) >> 64
        if name == "mulhu":
            return (rs1 * rs2) >> 64
        if name == "div":
            a, b = _s64(rs1), _s64(rs2)
            return _trunc_div(a, b) if b else MASK64
        if name == "divu":
            return rs1 // rs2 if rs2 else MASK64
        if name == "rem":
            a, b = _s64(rs1), _s64(rs2)
            return a - _trunc_div(a, b) * b if b else rs1
        if name == "remu":
            return rs1 % rs2 if rs2 else rs1
        if name == "mulw":
            return _sext32(rs1 * rs2)
        if name == "divw":
            a, b = _s32(rs1), _s32(rs2)
            return _sext32(_trunc_div(a, b)) if b else MASK64
        if name == "remw":
            a, b = _s32(rs1), _s32(rs2)
            if b == 0:
                return _sext32(a)
            return _sext32(a - _trunc_div(a, b) * b)
        raise IsaError(f"unhandled muldiv {name}")  # pragma: no cover

    @staticmethod
    def _branch_taken(name: str, rs1: int, rs2: int) -> bool:
        if name == "beq":
            return rs1 == rs2
        if name == "bne":
            return rs1 != rs2
        if name == "blt":
            return _s64(rs1) < _s64(rs2)
        if name == "bge":
            return _s64(rs1) >= _s64(rs2)
        if name == "bltu":
            return rs1 < rs2
        if name == "bgeu":
            return rs1 >= rs2
        raise IsaError(f"unhandled branch {name}")  # pragma: no cover


def _trunc_div(a: int, b: int) -> int:
    """RISC-V division truncates toward zero (Python ``//`` floors)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _s32(v: int) -> int:
    v &= 0xFFFFFFFF
    return v - (1 << 32) if v >= (1 << 31) else v


def _sext32(v: int) -> int:
    return _u64(_s32(v))
