"""Microbenchmarks: per-collective simulated latency on the paper's
platform (8 PEs, one 12-core node), small and large payloads.

Not a paper figure, but the per-operation numbers the per-experiment
index references when explaining the GUPs/IS composition.
"""

from __future__ import annotations

import numpy as np

from repro.params import MachineConfig
from repro.runtime import Machine


def _machine() -> Machine:
    return Machine(MachineConfig(
        n_pes=8,
        memory_bytes_per_pe=16 * 1024 * 1024,
        symmetric_heap_bytes=8 * 1024 * 1024,
        collective_scratch_bytes=2 * 1024 * 1024,
    ))


def collective_makespan(op: str, nelems: int) -> float:
    def body(ctx):
        ctx.init()
        n = ctx.num_pes()
        msgs = [nelems // n] * n
        disp = [i * (nelems // n) for i in range(n)]
        a = ctx.malloc(8 * nelems)
        b = ctx.malloc(8 * nelems)
        p = ctx.private_malloc(8 * nelems)
        ctx.barrier()
        t0 = ctx.pe.clock
        if op == "broadcast":
            ctx.long_broadcast(a, b, nelems, 1, 0)
        elif op == "reduce":
            ctx.long_reduce_sum(p, a, nelems, 1, 0)
        elif op == "scatter":
            ctx.long_scatter(p, a, msgs, disp, sum(msgs), 0)
        elif op == "gather":
            ctx.long_gather(p, a, msgs, disp, sum(msgs), 0)
        elif op == "allreduce":
            ctx.allreduce(b, a, nelems, 1, "sum", "long")
        elif op == "alltoall":
            ctx.alltoall(b, a, nelems // n, "long")
        ctx.barrier()
        dt = ctx.pe.clock - t0
        ctx.close()
        return dt

    return max(_machine().run(body))


OPS = ("broadcast", "reduce", "scatter", "gather", "allreduce", "alltoall")


def test_collective_latency_table(once, benchmark):
    def sweep():
        return {
            op: {n: collective_makespan(op, n) for n in (8, 1024)}
            for op in OPS
        }

    rows = once(sweep)
    print("\nCollective simulated latency, 8 PEs (ns)")
    print(f"{'op':>12} {'8 elems':>12} {'1024 elems':>12}")
    for op, r in rows.items():
        print(f"{op:>12} {r[8]:>12.0f} {r[1024]:>12.0f}")
        benchmark.extra_info[f"{op}_small_ns"] = round(r[8], 1)
        benchmark.extra_info[f"{op}_large_ns"] = round(r[1024], 1)
    # Composition sanity: allreduce beats reduce + broadcast.
    combo = rows["reduce"][1024] + rows["broadcast"][1024]
    assert rows["allreduce"][1024] <= 1.3 * combo


def test_barrier_scaling(once, benchmark):
    def barrier_cost(n_pes):
        def body(ctx):
            ctx.init()
            ctx.barrier()
            t0 = ctx.pe.clock
            for _ in range(10):
                ctx.barrier()
            dt = (ctx.pe.clock - t0) / 10
            ctx.close()
            return dt

        m = Machine(MachineConfig(
            n_pes=n_pes,
            memory_bytes_per_pe=4 * 1024 * 1024,
            symmetric_heap_bytes=2 * 1024 * 1024,
            collective_scratch_bytes=256 * 1024,
        ))
        return max(m.run(body))

    def sweep():
        return {n: barrier_cost(n) for n in (2, 4, 8)}

    rows = once(sweep)
    print("\nBarrier simulated cost: "
          + ", ".join(f"{n} PEs = {c:.0f} ns" for n, c in rows.items()))
    assert rows[2] < rows[4] < rows[8]
    benchmark.extra_info.update({f"{n}pe_ns": round(c, 1)
                                 for n, c in rows.items()})
