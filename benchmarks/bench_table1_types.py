"""E1 — Table 1: xBGAS matched type names & types.

Regenerates the paper's type table and times the TYPENAME dispatch the
typed API performs on every call.
"""

from __future__ import annotations

from repro.bench.reporting import render_table1
from repro.types import TYPENAMES, typeinfo


def test_table1_regenerated(benchmark):
    text = benchmark(render_table1)
    print("\n" + text)
    lines = [l for l in text.splitlines()[2:] if l.strip()]
    assert len(lines) == 24
    benchmark.extra_info["rows"] = len(lines)


def test_typename_dispatch_cost(benchmark):
    def lookup_all():
        return [typeinfo(t).nbytes for t in TYPENAMES]

    sizes = benchmark(lookup_all)
    assert len(sizes) == 24
