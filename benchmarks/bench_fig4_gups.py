"""E6 — Figure 4: GUPs performance at 1/2/4/8 PEs.

Regenerates the paper's GUPs series (operations per second, total and
per PE, verification enabled) on the simulated section 5.1 platform and
asserts the paper's qualitative shape:

* total MOPS scales near-linearly from 1 to 4 PEs;
* per-PE MOPS at 2 and 4 PEs meets or exceeds the 1-PE baseline,
  peaking at 2 PEs;
* per-PE MOPS drops at 8 PEs.
"""

from __future__ import annotations

from repro.bench.gups import GupsParams
from repro.bench.harness import PE_COUNTS, check_figure4_shape, sweep_gups
from repro.bench.reporting import render_figure

from conftest import gups_updates


def test_figure4_gups(once, benchmark):
    params = GupsParams(updates_per_pe=gups_updates())
    points = once(sweep_gups, PE_COUNTS, params)
    print("\n" + render_figure(points, "Figure 4 — GUPs (reproduced)"))
    violations = check_figure4_shape(points)
    assert not violations, violations
    for p in points:
        benchmark.extra_info[f"mops_total_{p.n_pes}pe"] = round(p.mops_total, 3)
        benchmark.extra_info[f"mops_per_pe_{p.n_pes}pe"] = round(p.mops_per_pe, 3)
        assert p.verified
    benchmark.extra_info["peak_per_pe_at"] = max(
        points, key=lambda p: p.mops_per_pe).n_pes
