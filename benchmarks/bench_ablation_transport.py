"""A2 — Transport ablation (paper section 3.1).

The paper argues xBGAS remote load/store beats RDMA-class libraries,
which in turn beat MPI-class two-sided messaging.  This bench measures
the simulated cost of the same operations under the three transport
presets and asserts the ordering.
"""

from __future__ import annotations

import numpy as np

from repro.params import MachineConfig
from repro.runtime import Machine

TRANSPORTS = ("xbgas", "rdma", "mpi")


def _config(transport: str) -> MachineConfig:
    return MachineConfig(
        n_pes=8,
        cores_per_node=1,
        memory_bytes_per_pe=8 * 1024 * 1024,
        symmetric_heap_bytes=4 * 1024 * 1024,
        collective_scratch_bytes=512 * 1024,
    ).with_transport(transport)


def put_cost(transport: str, nelems: int) -> float:
    """Delivered one-sided write, including quiescence (ns)."""
    def body(ctx):
        ctx.init()
        dest = ctx.malloc(8 * nelems)
        src = ctx.private_malloc(8 * nelems)
        ctx.barrier()
        t0 = ctx.pe.clock
        if ctx.my_pe() == 0:
            ctx.put(dest, src, nelems, 1, 1, "long")
        ctx.barrier()
        dt = ctx.pe.clock - t0
        ctx.close()
        return dt

    return max(Machine(_config(transport)).run(body))


def broadcast_cost(transport: str, nelems: int) -> float:
    def body(ctx):
        ctx.init()
        dest = ctx.malloc(8 * nelems)
        src = ctx.private_malloc(8 * nelems)
        ctx.barrier()
        t0 = ctx.pe.clock
        ctx.long_broadcast(dest, src, nelems, 1, 0)
        ctx.barrier()
        dt = ctx.pe.clock - t0
        ctx.close()
        return dt

    return max(Machine(_config(transport)).run(body))


def test_put_overhead_ordering(once, benchmark):
    def sweep():
        return {size: {t: put_cost(t, size) for t in TRANSPORTS}
                for size in (1, 64, 4096)}

    rows = once(sweep)
    print("\nA2 — delivered 8B-element put (ns) by transport")
    print(f"{'elems':>8} {'xbgas':>12} {'rdma':>12} {'mpi':>12}")
    for size, r in rows.items():
        print(f"{size:>8} {r['xbgas']:>12.0f} {r['rdma']:>12.0f} "
              f"{r['mpi']:>12.0f}")
        # Section 3.1's ordering at every size.
        assert r["xbgas"] < r["rdma"] < r["mpi"]
        benchmark.extra_info[f"xbgas_vs_mpi_{size}"] = round(
            r["mpi"] / r["xbgas"], 2)


def test_collective_overhead_ordering(once, benchmark):
    def sweep():
        return {t: broadcast_cost(t, 256) for t in TRANSPORTS}

    r = once(sweep)
    print("\nA2 — 2 KiB broadcast (ns) by transport: "
          + ", ".join(f"{t}={r[t]:.0f}" for t in TRANSPORTS))
    assert r["xbgas"] < r["rdma"] < r["mpi"]
    benchmark.extra_info["bcast_mpi_over_xbgas"] = round(
        r["mpi"] / r["xbgas"], 2)
