"""A3 — Loop unrolling ablation (paper section 3.3).

The runtime unrolls the generated transfer loop when ``nelems`` exceeds
a threshold.  This bench measures the per-element instruction cost with
and without unrolling on both fidelity paths (analytic model and the
ISA-executed loops).
"""

from __future__ import annotations

import numpy as np

from repro.params import MachineConfig
from repro.runtime import Machine


def _config(**kw) -> MachineConfig:
    base = dict(
        n_pes=2,
        memory_bytes_per_pe=8 * 1024 * 1024,
        symmetric_heap_bytes=4 * 1024 * 1024,
        collective_scratch_bytes=512 * 1024,
    )
    base.update(kw)
    return MachineConfig(**base)


def put_time(nelems: int, **cfg_kw) -> float:
    """Sender-side simulated time of one local-node put."""
    def body(ctx):
        ctx.init()
        dest = ctx.malloc(8 * nelems)
        src = ctx.private_malloc(8 * nelems)
        ctx.barrier()
        t0 = ctx.pe.clock
        if ctx.my_pe() == 0:
            ctx.put(dest, src, nelems, 1, 0, "long")  # local copy path
        dt = ctx.pe.clock - t0
        ctx.barrier()
        ctx.close()
        return dt

    return Machine(_config(**cfg_kw)).run(body)[0]


def test_unrolling_model_path(once, benchmark):
    def sweep():
        n = 4096
        rolled = put_time(n, unroll_threshold=10 ** 9)  # never unroll
        unrolled = put_time(n, unroll_threshold=8, unroll_factor=4)
        return rolled, unrolled

    rolled, unrolled = once(sweep)
    print(f"\nA3 — 4096-element put, model path: rolled={rolled:.0f} ns, "
          f"unrolled={unrolled:.0f} ns ({rolled / unrolled:.2f}x)")
    assert unrolled < rolled
    benchmark.extra_info["model_speedup"] = round(rolled / unrolled, 3)


def test_unrolling_isa_path(once, benchmark):
    """On the ISA path the effect is measured in executed instructions."""
    def sweep():
        out = {}
        for label, thr in (("rolled", 10 ** 9), ("unrolled", 8)):
            m = Machine(_config(fidelity="isa", unroll_threshold=thr))

            def body(ctx):
                ctx.init()
                dest = ctx.malloc(8 * 1024)
                src = ctx.private_malloc(8 * 1024)
                if ctx.my_pe() == 0:
                    ctx.put(dest, src, 1024, 1, 0, "long")
                ctx.barrier()
                ctx.close()

            m.run(body)
            out[label] = m.stats.instructions_executed
        return out

    counts = once(sweep)
    print(f"\nA3 — 1024-element put, ISA path instructions: "
          f"rolled={counts['rolled']}, unrolled={counts['unrolled']}")
    assert counts["unrolled"] < counts["rolled"]
    benchmark.extra_info.update(counts)


def test_unroll_factor_sweep(once, benchmark):
    def sweep():
        return {u: put_time(2048, unroll_factor=u) for u in (2, 4, 8)}

    rows = once(sweep)
    print("\nA3 — unroll factor sweep (2048 elements): "
          + ", ".join(f"U={u}: {t:.0f} ns" for u, t in rows.items()))
    assert rows[8] <= rows[2]
