"""E2 — Table 2: logical → virtual rank mapping (7 PEs, root 4).

Regenerates the paper's example table and times the remapping arithmetic
every collective performs per call.
"""

from __future__ import annotations

from repro.bench.reporting import render_table2
from repro.collectives.virtual_rank import rank_table, virtual_rank

PAPER_ROWS = [(0, 3), (1, 4), (2, 5), (3, 6), (4, 0), (5, 1), (6, 2)]


def test_table2_regenerated(benchmark):
    text = benchmark(render_table2, root=4, n_pes=7)
    print("\n" + text)
    assert rank_table(4, 7) == PAPER_ROWS
    benchmark.extra_info["matches_paper"] = True


def test_virtual_rank_cost(benchmark):
    def remap_sweep():
        total = 0
        for n in (2, 4, 8, 16, 64):
            for root in range(n):
                for lr in range(n):
                    total += virtual_rank(lr, root, n)
        return total

    benchmark(remap_sweep)
