"""E5 — Figure 3: the binomial tree with recursive halving.

Renders the 8-PE broadcast tree the paper draws and times schedule
generation across PE counts (it runs inside every collective call).
"""

from __future__ import annotations

from repro.bench.reporting import render_figure3
from repro.collectives.binomial import n_stages, tree_stages


def test_figure3_regenerated(benchmark):
    text = benchmark(render_figure3, 8)
    print("\n" + text)
    # Figure 3's structure: root 0 reaches 4, then 2 and 6, then odds.
    assert "stage 0: 0->4" in text
    assert "stage 1: 0->2  4->6" in text
    benchmark.extra_info["stages"] = n_stages(8)


def test_schedule_generation_cost(benchmark):
    def generate():
        out = 0
        for n in (2, 4, 8, 16, 32, 64):
            out += sum(len(s) for s in tree_stages(n, "halving"))
            out += sum(len(s) for s in tree_stages(n, "doubling"))
        return out

    total_pairs = benchmark(generate)
    # Every rank except the root appears exactly once per direction.
    assert total_pairs == 2 * sum(n - 1 for n in (2, 4, 8, 16, 32, 64))
