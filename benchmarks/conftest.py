"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation) and records the *simulated* metrics in
``benchmark.extra_info`` — pytest-benchmark's wall-clock numbers measure
the simulator itself, which is also useful, but the paper-comparison
artefact is the printed rows plus extra_info.

Environment knobs:

* ``REPRO_IS_CLASS``  — NAS IS problem class (default ``A-scaled``;
  use ``B-scaled`` for the full Figure 5 run recorded in
  EXPERIMENTS.md, ~4 minutes).
* ``REPRO_GUPS_UPDATES`` — GUPs updates per PE (default 1024).
"""

from __future__ import annotations

import os

import pytest


def is_class() -> str:
    return os.environ.get("REPRO_IS_CLASS", "A-scaled")


def gups_updates() -> int:
    return int(os.environ.get("REPRO_GUPS_UPDATES", "1024"))


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (sweeps are heavy and
    deterministic; repetition adds nothing)."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return run
