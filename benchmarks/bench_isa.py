"""A5 — ISA-path benchmarks.

Compares the two fidelity levels of the transfer engine (analytic model
vs executing the generated xBGAS assembly on the functional core), and
measures the functional simulator's raw interpretation throughput —
the Spike-equivalent metric of the reproduction.
"""

from __future__ import annotations

import numpy as np

from repro.isa import Cpu, Memory, assemble
from repro.params import MachineConfig
from repro.runtime import Machine


def _config(fidelity: str) -> MachineConfig:
    return MachineConfig(
        n_pes=2,
        fidelity=fidelity,
        memory_bytes_per_pe=8 * 1024 * 1024,
        symmetric_heap_bytes=4 * 1024 * 1024,
        collective_scratch_bytes=512 * 1024,
    )


def test_model_vs_isa_agree_functionally(once, benchmark):
    def run(fidelity):
        def body(ctx):
            ctx.init()
            dest = ctx.malloc(8 * 256)
            src = ctx.private_malloc(8 * 256)
            if ctx.my_pe() == 0:
                ctx.view(src, "long", 256)[:] = np.arange(256) * 3
                ctx.put(dest, src, 256, 1, 1, "long")
            ctx.barrier()
            got = int(np.sum(ctx.view(dest, "long", 256)))
            ctx.close()
            return got

        m = Machine(_config(fidelity))
        return m.run(body), m

    def both():
        (model_res, m1), (isa_res, m2) = run("model"), run("isa")
        return model_res, isa_res, m2.stats.instructions_executed

    model_res, isa_res, instrs = once(both)
    assert model_res == isa_res
    print(f"\nA5 — 256-element put: identical payloads on both paths; "
          f"ISA path executed {instrs} instructions")
    benchmark.extra_info["instructions"] = instrs


def test_isa_models_per_element_messages(once, benchmark):
    """The ISA path charges one network operation per element — the
    honest cost of remote load/store; the model path aggregates."""
    def measure(fidelity):
        def body(ctx):
            ctx.init()
            dest = ctx.malloc(8 * 64)
            src = ctx.private_malloc(8 * 64)
            ctx.barrier()
            t0 = ctx.pe.clock
            if ctx.my_pe() == 0:
                ctx.put(dest, src, 64, 1, 1, "long")
            dt = ctx.pe.clock - t0
            ctx.barrier()
            ctx.close()
            return dt

        m = Machine(_config(fidelity))
        dt = m.run(body)[0]
        return dt, m.stats.messages

    def both():
        return measure("model"), measure("isa")

    (model_dt, model_msgs), (isa_dt, isa_msgs) = once(both)
    print(f"\nA5 — 64-element remote put: model {model_dt:.0f} ns / "
          f"{model_msgs} msgs; isa {isa_dt:.0f} ns / {isa_msgs} msgs")
    assert isa_msgs > model_msgs
    benchmark.extra_info["model_messages"] = model_msgs
    benchmark.extra_info["isa_messages"] = isa_msgs


def test_interpreter_throughput(benchmark):
    """Instructions per wall-second of the functional core."""
    src = """
        li a0, 20000
        li a1, 0
    loop:
        add a1, a1, a0
        xor a2, a1, a0
        srli a3, a1, 3
        addi a0, a0, -1
        bnez a0, loop
        halt
    """
    prog = assemble(src)

    def run_program():
        cpu = Cpu(0, Memory(1 << 16))
        cpu.load_program(prog.words)
        cpu.run(max_instructions=10 ** 7)
        return cpu.instructions_retired

    retired = benchmark(run_program)
    # li 20000 expands to lui+addi; then 20000 five-instruction
    # iterations and the halt.
    assert retired == 3 + 20000 * 5 + 1
    benchmark.extra_info["instructions_per_run"] = retired


def test_assembler_throughput(benchmark):
    source = "\n".join(
        f"    addi a{i % 6}, a{(i + 1) % 6}, {i % 100}" for i in range(500)
    ) + "\n    halt\n"

    words = benchmark(lambda: len(assemble(source).words))
    assert words == 501
