"""A6 — Location-aware collectives ablation (paper section 7).

"Location aware communication optimization using the xBGAS OLB" is the
paper's future work; this bench quantifies it.  The flat binomial tree
and the two-level hierarchical tree broadcast the same payload over 8
PEs placed on 4 nodes in two ways:

* **sequential** placement (the paper's assumption, ranks 0-1 on node 0,
  2-3 on node 1, ...): recursive halving is already near-optimal;
* **scattered** (round-robin) placement: almost every flat tree edge
  crosses the node boundary, and the hierarchical tree should win.
"""

from __future__ import annotations

import numpy as np

from repro.params import MachineConfig
from repro.runtime import Machine

N_PES, N_NODES = 8, 4
NELEMS = 512


def _config(placement: str) -> MachineConfig:
    pe_map = None
    if placement == "scattered":
        pe_map = tuple(i % N_NODES for i in range(N_PES))
    return MachineConfig(
        n_pes=N_PES,
        cores_per_node=N_PES // N_NODES,
        pe_node_map=pe_map,
        memory_bytes_per_pe=8 * 1024 * 1024,
        symmetric_heap_bytes=4 * 1024 * 1024,
        collective_scratch_bytes=512 * 1024,
    )


def broadcast_makespan(placement: str, algorithm: str) -> float:
    def body(ctx):
        ctx.init()
        dest = ctx.malloc(8 * NELEMS)
        src = ctx.private_malloc(8 * NELEMS)
        ctx.barrier()
        t0 = ctx.pe.clock
        ctx.broadcast(dest, src, NELEMS, 1, 0, "long", algorithm=algorithm)
        ctx.barrier()
        dt = ctx.pe.clock - t0
        ctx.close()
        return dt

    return max(Machine(_config(placement)).run(body))


def inter_node_messages(placement: str, algorithm: str) -> int:
    cfg = _config(placement)
    m = Machine(cfg)

    def body(ctx):
        ctx.init()
        dest = ctx.malloc(8 * NELEMS)
        src = ctx.private_malloc(8 * NELEMS)
        ctx.barrier()
        ctx.broadcast(dest, src, NELEMS, 1, 0, "long", algorithm=algorithm)
        ctx.close()

    before_msgs = m.stats.messages
    m.run(body)
    # Count payload-sized inter-node traffic via bytes on the wire minus
    # what the barriers contribute (barriers are charged analytically,
    # not as messages, so all counted messages are transfer traffic).
    return m.stats.messages - before_msgs


def test_hierarchical_vs_flat_by_placement(once, benchmark):
    def sweep():
        rows = {}
        for placement in ("sequential", "scattered"):
            rows[placement] = {
                alg: broadcast_makespan(placement, alg)
                for alg in ("binomial", "hierarchical")
            }
        return rows

    rows = once(sweep)
    print("\nA6 — 4 KiB broadcast, 8 PEs on 4 nodes (ns)")
    print(f"{'placement':>12} {'binomial':>12} {'hierarchical':>14}")
    for placement, r in rows.items():
        print(f"{placement:>12} {r['binomial']:>12.0f} "
              f"{r['hierarchical']:>14.0f}")
        benchmark.extra_info[placement] = {
            k: round(v, 1) for k, v in r.items()
        }
    seq, scat = rows["sequential"], rows["scattered"]
    # Sequential ranks: recursive halving is already locality-friendly
    # (the paper's section 4.2 design point) — hierarchical gains little.
    assert seq["hierarchical"] < 1.3 * seq["binomial"]
    # Scattered ranks: the hierarchical tree must win clearly.
    assert scat["hierarchical"] < scat["binomial"]
    # And the flat tree must degrade when placement scatters.
    assert scat["binomial"] > seq["binomial"]


def test_flat_tree_edge_locality(once, benchmark):
    """Count the flat tree's inter-node edges under both placements."""
    from repro.collectives.binomial import tree_stages

    def count(placement):
        cfg = _config(placement)
        pairs = [p for stage in tree_stages(N_PES, "halving") for p in stage]
        return sum(1 for a, b in pairs if cfg.node_of(a) != cfg.node_of(b))

    def both():
        return count("sequential"), count("scattered")

    seq, scat = once(both)
    print(f"\nA6 — flat binomial inter-node edges: sequential {seq}/7, "
          f"scattered {scat}/7")
    assert seq <= N_NODES - 1  # recursive halving's minimum
    assert scat > seq
    benchmark.extra_info["sequential_edges"] = seq
    benchmark.extra_info["scattered_edges"] = scat
