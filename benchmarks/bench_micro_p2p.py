"""Point-to-point microbenchmarks (the OSB micro-suite the paper's
benchmarks come from): put/get latency, put bandwidth and message rate
across the three transport presets.
"""

from __future__ import annotations

from repro.bench.micro import (
    get_latency,
    message_rate,
    put_bandwidth,
    put_latency,
)
from repro.params import MachineConfig

SIZES = (8, 512, 32768, 262144)


def _cfg(transport: str) -> MachineConfig:
    return MachineConfig(
        n_pes=2,
        cores_per_node=1,
        memory_bytes_per_pe=16 * 1024 * 1024,
        symmetric_heap_bytes=8 * 1024 * 1024,
        collective_scratch_bytes=512 * 1024,
    ).with_transport(transport)


def test_put_get_latency_table(once, benchmark):
    def sweep():
        return {
            "put": put_latency(SIZES, iterations=16, config=_cfg("xbgas")),
            "get": get_latency(SIZES, iterations=16, config=_cfg("xbgas")),
        }

    rows = once(sweep)
    print("\nput/get simulated latency (µs), xBGAS transport")
    print(f"{'bytes':>8} {'put':>10} {'get':>10}")
    for p, g in zip(rows["put"], rows["get"]):
        print(f"{p.nbytes:>8} {p.latency_us:>10.3f} {g.latency_us:>10.3f}")
        assert g.latency_us > p.latency_us  # round trip vs one-way
    benchmark.extra_info["put_8B_us"] = round(rows["put"][0].latency_us, 3)
    benchmark.extra_info["get_8B_us"] = round(rows["get"][0].latency_us, 3)


def test_bandwidth_by_transport(once, benchmark):
    def sweep():
        return {
            t: put_bandwidth((262144,), iterations=4, window=8,
                             config=_cfg(t))[0]
            for t in ("xbgas", "rdma", "mpi")
        }

    rows = once(sweep)
    print("\n256 KiB windowed put bandwidth (MB/s): "
          + ", ".join(f"{t}={r.bandwidth_mbps:.0f}" for t, r in rows.items()))
    assert rows["xbgas"].bandwidth_mbps >= rows["mpi"].bandwidth_mbps
    for t, r in rows.items():
        benchmark.extra_info[f"{t}_mbps"] = round(r.bandwidth_mbps, 1)


def test_message_rate_by_transport(once, benchmark):
    def sweep():
        return {t: message_rate(iterations=128, config=_cfg(t))
                for t in ("xbgas", "rdma", "mpi")}

    rows = once(sweep)
    print("\n8 B put message rate (Mops/s): "
          + ", ".join(f"{t}={r.rate_mops:.2f}" for t, r in rows.items()))
    # The message-rate gap is where one-sided user-space injection
    # shines most (section 3.1).
    assert rows["xbgas"].rate_mops > rows["rdma"].rate_mops > rows["mpi"].rate_mops
    for t, r in rows.items():
        benchmark.extra_info[f"{t}_mops"] = round(r.rate_mops, 2)
