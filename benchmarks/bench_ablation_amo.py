"""A7 — Remote-atomics ablation.

GUPs' remote update is a get-modify-put in the OSB port — two network
transactions and a lost-update window.  The xBGAS remote atomic
(``eamoxor.d``, one fetch-and-op transaction) removes both.  This bench
runs GUPs both ways at 8 PEs and reports throughput and verification
errors.
"""

from __future__ import annotations

from repro.bench.gups import GupsParams, run_gups
from repro.params import MachineConfig

from conftest import gups_updates


def _config() -> MachineConfig:
    return MachineConfig(n_pes=8)


def test_gups_amo_vs_get_modify_put(once, benchmark):
    def sweep():
        base = dict(updates_per_pe=gups_updates())
        gmp = run_gups(_config(), GupsParams(**base, use_amo=False))
        amo = run_gups(_config(), GupsParams(**base, use_amo=True))
        return gmp, amo

    gmp, amo = once(sweep)
    print("\nA7 — GUPs remote-update idiom, 8 PEs")
    print(f"  get-modify-put: {gmp.mops_total:8.3f} MOPS total, "
          f"{gmp.errors} verification errors")
    print(f"  eamoxor.d     : {amo.mops_total:8.3f} MOPS total, "
          f"{amo.errors} verification errors "
          f"({amo.mops_total / gmp.mops_total:.2f}x)")
    assert amo.errors == 0
    assert amo.mops_total >= gmp.mops_total
    benchmark.extra_info["gmp_mops"] = round(gmp.mops_total, 3)
    benchmark.extra_info["amo_mops"] = round(amo.mops_total, 3)
    benchmark.extra_info["amo_speedup"] = round(
        amo.mops_total / gmp.mops_total, 3)


def test_amo_op_latency(once, benchmark):
    """Simulated latency of each AMO op (they share the fetch-and-op
    path, so this is mostly a sanity table)."""
    from repro.runtime import Machine

    def measure(op):
        def body(ctx):
            ctx.init()
            cell = ctx.malloc(8)
            ctx.barrier()
            t0 = ctx.pe.clock
            if ctx.my_pe() == 0:
                for _ in range(16):
                    ctx.amo(cell, 1, 1, op, "uint64")
            dt = (ctx.pe.clock - t0) / 16
            ctx.barrier()
            ctx.close()
            return dt

        m = Machine(MachineConfig(
            n_pes=2,
            memory_bytes_per_pe=4 * 1024 * 1024,
            symmetric_heap_bytes=2 * 1024 * 1024,
            collective_scratch_bytes=256 * 1024,
        ))
        return m.run(body)[0]

    def sweep():
        return {op: measure(op)
                for op in ("add", "xor", "and", "or", "swap", "min", "max")}

    rows = once(sweep)
    print("\nA7 — per-op AMO latency (ns): "
          + ", ".join(f"{op}={ns:.0f}" for op, ns in rows.items()))
    values = list(rows.values())
    assert max(values) < 1.2 * min(values)  # one shared path
    benchmark.extra_info.update({k: round(v, 1) for k, v in rows.items()})
