"""A4 — Topology ablation (paper section 4.2).

"The binomial tree requires a minimal degree of connectivity ... will
perform effectively regardless of whether it is utilized on a torus or
hypercube topology."  This bench runs the binomial broadcast over
several topologies of 8 single-core nodes and checks the claim: the
tree works everywhere, with only moderate slowdown on sparse networks.
It also quantifies the recursive-halving layout effect on a two-node
machine with sequential rank assignment.
"""

from __future__ import annotations

import numpy as np

from repro.params import MachineConfig
from repro.runtime import Machine

TOPOLOGIES = ("fully-connected", "hypercube", "torus", "ring")


def broadcast_makespan(topology: str, nelems: int = 1024) -> float:
    cfg = MachineConfig(
        n_pes=8,
        cores_per_node=1,
        topology=topology,
        memory_bytes_per_pe=8 * 1024 * 1024,
        symmetric_heap_bytes=4 * 1024 * 1024,
        collective_scratch_bytes=512 * 1024,
    )

    def body(ctx):
        ctx.init()
        dest = ctx.malloc(8 * nelems)
        src = ctx.private_malloc(8 * nelems)
        ctx.barrier()
        t0 = ctx.pe.clock
        ctx.long_broadcast(dest, src, nelems, 1, 0)
        ctx.barrier()
        dt = ctx.pe.clock - t0
        ctx.close()
        return dt

    return max(Machine(cfg).run(body))


def test_binomial_tree_on_every_topology(once, benchmark):
    def sweep():
        return {t: broadcast_makespan(t) for t in TOPOLOGIES}

    rows = once(sweep)
    print("\nA4 — 8 KiB binomial broadcast by topology (8 nodes)")
    base = rows["fully-connected"]
    for t, ns in rows.items():
        print(f"  {t:>16}: {ns:>10.0f} ns ({ns / base:.2f}x)")
        benchmark.extra_info[t] = round(ns, 1)
    # The tree completes everywhere; sparse topologies pay only a
    # moderate hop-latency factor, not a blow-up.
    assert all(ns < 3 * base for ns in rows.values())
    assert rows["hypercube"] <= rows["ring"]


def test_recursive_halving_prefers_local_partners(once, benchmark):
    """With sequential rank assignment on two 4-core nodes, recursive
    halving keeps the later (cheap) tree stages intra-node and crosses
    the node boundary only log-once — versus a naive tree that pairs
    across nodes at every stage."""
    def measure():
        cfg = MachineConfig(
            n_pes=8,
            cores_per_node=4,
            memory_bytes_per_pe=8 * 1024 * 1024,
            symmetric_heap_bytes=4 * 1024 * 1024,
            collective_scratch_bytes=512 * 1024,
        )

        def body(ctx):
            ctx.init()
            dest = ctx.malloc(8 * 512)
            src = ctx.private_malloc(8 * 512)
            ctx.barrier()
            t0 = ctx.pe.clock
            ctx.long_broadcast(dest, src, 512, 1, 0)
            ctx.barrier()
            dt = ctx.pe.clock - t0
            ctx.close()
            return dt

        m = Machine(cfg)
        makespan = max(m.run(body))
        inter = sum(
            1 for frm, to in _tree_pairs(8)
            if cfg.node_of(frm) != cfg.node_of(to)
        )
        return makespan, inter

    makespan, inter_node_edges = once(measure)
    print(f"\nA4 — two-node broadcast: {makespan:.0f} ns, "
          f"{inter_node_edges}/7 tree edges cross the node boundary")
    # Recursive halving sends exactly one edge across the boundary
    # (virtual 0 -> 4); a random pairing would average ~4.
    assert inter_node_edges == 1
    benchmark.extra_info["inter_node_edges"] = inter_node_edges


def _tree_pairs(n):
    from repro.collectives.binomial import tree_stages

    return [pair for stage in tree_stages(n, "halving") for pair in stage]
