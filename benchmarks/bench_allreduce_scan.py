"""A8 — reduction-to-all and scan (paper section 7's explicit calls).

Compares the one-sided recursive-doubling allreduce against the
reduce+broadcast composition across payload sizes, and measures the
prefix scan's log-depth scaling.
"""

from __future__ import annotations

from repro.params import MachineConfig
from repro.runtime import Machine


def _cfg(n_pes=8):
    return MachineConfig(
        n_pes=n_pes,
        cores_per_node=1,
        memory_bytes_per_pe=16 * 1024 * 1024,
        symmetric_heap_bytes=8 * 1024 * 1024,
        collective_scratch_bytes=2 * 1024 * 1024,
    )


def allreduce_time(which: str, nelems: int, n_pes: int = 8):
    def body(ctx):
        ctx.init()
        src = ctx.malloc(8 * nelems)
        dest = ctx.malloc(8 * nelems)
        ctx.barrier()
        t0 = ctx.pe.clock
        if which == "composed":
            ctx.reduce_all(dest, src, nelems, 1, "sum", "long")
        else:
            ctx.allreduce(dest, src, nelems, 1, "sum", "long",
                          algorithm=which)
        dt = ctx.pe.clock - t0
        ctx.close()
        return dt

    m = Machine(_cfg(n_pes))
    dt = max(m.run(body))
    return dt, m.stats.barriers


def test_allreduce_vs_composition(once, benchmark):
    def sweep():
        rows = {}
        for nelems in (8, 512, 8192, 65536):
            rows[nelems] = {
                "doubling": allreduce_time("doubling", nelems),
                "rabenseifner": allreduce_time("rabenseifner", nelems),
                "composed": allreduce_time("composed", nelems),
            }
        return rows

    rows = once(sweep)
    print("\nA8 — allreduce, 8 nodes (ns / barrier rounds)")
    print(f"{'elems':>8} {'doubling':>18} {'rabenseifner':>18} "
          f"{'reduce+bcast':>18}")
    for nelems, r in rows.items():
        d, rb, c = r["doubling"], r["rabenseifner"], r["composed"]
        print(f"{nelems:>8} {d[0]:>12.0f} ({d[1]:>2}) {rb[0]:>12.0f} "
              f"({rb[1]:>2}) {c[0]:>12.0f} ({c[1]:>2})")
        # Recursive doubling always needs fewer synchronisation rounds.
        assert d[1] < c[1]
        benchmark.extra_info[f"doubling_{nelems}_ns"] = round(d[0], 1)
        benchmark.extra_info[f"rabenseifner_{nelems}_ns"] = round(rb[0], 1)
        benchmark.extra_info[f"composed_{nelems}_ns"] = round(c[0], 1)
    # Rabenseifner wins the bandwidth-bound regime.
    big = max(rows)
    assert rows[big]["rabenseifner"][0] < rows[big]["doubling"][0]


def test_scan_log_depth(once, benchmark):
    def scan_time(n_pes):
        def body(ctx):
            ctx.init()
            src = ctx.malloc(8 * 16)
            dest = ctx.private_malloc(8 * 16)
            ctx.barrier()
            t0 = ctx.pe.clock
            ctx.scan(dest, src, 16, 1, "sum", "long")
            dt = ctx.pe.clock - t0
            ctx.close()
            return dt

        return max(Machine(_cfg(n_pes)).run(body))

    def sweep():
        return {n: scan_time(n) for n in (2, 4, 8, 16)}

    rows = once(sweep)
    print("\nA8 — inclusive sum scan (128 B) by PE count: "
          + ", ".join(f"{n}: {t:.0f} ns" for n, t in rows.items()))
    # The stage count is log N; measured time also carries the shared
    # fabric's serialisation of the per-stage gets (≈N messages), so the
    # bound to assert is sub-quadratic growth, not pure log.
    assert rows[16] < 12 * rows[2]
    benchmark.extra_info.update({f"{n}pe_ns": round(t, 1)
                                 for n, t in rows.items()})
