"""A1 — Algorithm ablation (paper section 4.1).

"There is no universally optimal solution suited to every occasion":
sweeps broadcast payload size across the binomial tree, the pipelined
linear scheme and the ring, on 8 single-core nodes, and regenerates the
crossover data behind :mod:`repro.collectives.tuning`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.params import MachineConfig
from repro.runtime import Machine


def broadcast_makespan(algorithm: str, nelems: int, n_pes: int = 8) -> float:
    """Simulated completion time of one broadcast (ns)."""
    cfg = MachineConfig(
        n_pes=n_pes,
        cores_per_node=1,
        memory_bytes_per_pe=16 * 1024 * 1024,
        symmetric_heap_bytes=8 * 1024 * 1024,
        collective_scratch_bytes=1024 * 1024,
    )

    def body(ctx):
        ctx.init()
        dest = ctx.malloc(8 * nelems)
        src = ctx.private_malloc(8 * nelems)
        ctx.barrier()
        t0 = ctx.pe.clock
        from repro.collectives.broadcast import broadcast

        broadcast(ctx, dest, src, nelems, 1, 0, np.dtype(np.int64),
                  algorithm=algorithm)
        ctx.barrier()
        dt = ctx.pe.clock - t0
        ctx.close()
        return dt

    return max(Machine(cfg).run(body))


SIZES = (8, 128, 2048, 16384, 131072)


def test_broadcast_algorithm_crossover(once, benchmark):
    def sweep():
        rows = {}
        for nelems in SIZES:
            rows[nelems] = {
                alg: broadcast_makespan(alg, nelems)
                for alg in ("binomial", "linear", "ring")
            }
        return rows

    rows = once(sweep)
    print("\nA1 — broadcast latency (ns) by algorithm, 8 nodes")
    print(f"{'elems':>8} {'binomial':>12} {'linear':>12} {'ring':>12}  winner")
    for nelems, r in rows.items():
        winner = min(r, key=r.get)
        print(f"{nelems:>8} {r['binomial']:>12.0f} {r['linear']:>12.0f} "
              f"{r['ring']:>12.0f}  {winner}")
        benchmark.extra_info[f"winner_{nelems}"] = winner
    # The motivating claim: the winner changes with the payload size —
    # pipelined linear small, binomial tree mid, pipelined ring large.
    winners = [min(rows[s], key=rows[s].get) for s in SIZES]
    assert winners[0] == "linear"
    assert "binomial" in winners
    assert winners[-1] == "ring"


def test_selection_layer_picks_measured_winners(once, benchmark):
    """`auto` must never be worse than 1.2x the best algorithm."""
    from repro.collectives.tuning import select_algorithm

    def check():
        worst_ratio = 1.0
        for nelems in (8, 2048, 131072):
            best = min(broadcast_makespan(a, nelems)
                       for a in ("binomial", "linear", "ring"))
            chosen = select_algorithm("broadcast", nelems * 8, 8)
            got = broadcast_makespan(chosen, nelems)
            worst_ratio = max(worst_ratio, got / best)
        return worst_ratio

    worst = once(check)
    benchmark.extra_info["auto_vs_best_worst_ratio"] = round(worst, 3)
    assert worst <= 1.2
