"""A1 — Algorithm ablation (paper section 4.1).

"There is no universally optimal solution suited to every occasion":
sweeps broadcast payload size across the binomial tree, the pipelined
linear scheme and the ring, on 8 single-core nodes, and regenerates the
crossover data behind :mod:`repro.collectives.tuning`.

Since PR 4 the sweep also covers the schedule-compiled allreduce
algorithms (the binomial reduce+broadcast composition vs recursive
doubling vs Rabenseifner vs the segment-rotating ring) and allgather
(gather+broadcast tree vs dissemination), and records which algorithm
:mod:`repro.collectives.tuning` would pick at each point so the
selection thresholds stay measured rather than folklore.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.params import MachineConfig
from repro.runtime import Machine


def _ablation_config(n_pes: int = 8) -> MachineConfig:
    return MachineConfig(
        n_pes=n_pes,
        cores_per_node=1,
        memory_bytes_per_pe=16 * 1024 * 1024,
        symmetric_heap_bytes=8 * 1024 * 1024,
        collective_scratch_bytes=2 * 1024 * 1024,
    )


def broadcast_makespan(algorithm: str, nelems: int, n_pes: int = 8) -> float:
    """Simulated completion time of one broadcast (ns)."""
    cfg = MachineConfig(
        n_pes=n_pes,
        cores_per_node=1,
        memory_bytes_per_pe=16 * 1024 * 1024,
        symmetric_heap_bytes=8 * 1024 * 1024,
        collective_scratch_bytes=1024 * 1024,
    )

    def body(ctx):
        ctx.init()
        dest = ctx.malloc(8 * nelems)
        src = ctx.private_malloc(8 * nelems)
        ctx.barrier()
        t0 = ctx.pe.clock
        from repro.collectives.broadcast import broadcast

        broadcast(ctx, dest, src, nelems, 1, 0, np.dtype(np.int64),
                  algorithm=algorithm)
        ctx.barrier()
        dt = ctx.pe.clock - t0
        ctx.close()
        return dt

    return max(Machine(cfg).run(body))


SIZES = (8, 128, 2048, 16384, 131072)


def test_broadcast_algorithm_crossover(once, benchmark):
    def sweep():
        rows = {}
        for nelems in SIZES:
            rows[nelems] = {
                alg: broadcast_makespan(alg, nelems)
                for alg in ("binomial", "linear", "ring")
            }
        return rows

    rows = once(sweep)
    print("\nA1 — broadcast latency (ns) by algorithm, 8 nodes")
    print(f"{'elems':>8} {'binomial':>12} {'linear':>12} {'ring':>12}  winner")
    for nelems, r in rows.items():
        winner = min(r, key=r.get)
        print(f"{nelems:>8} {r['binomial']:>12.0f} {r['linear']:>12.0f} "
              f"{r['ring']:>12.0f}  {winner}")
        benchmark.extra_info[f"winner_{nelems}"] = winner
    # The motivating claim: the winner changes with the payload size —
    # pipelined linear small, binomial tree mid, pipelined ring large.
    winners = [min(rows[s], key=rows[s].get) for s in SIZES]
    assert winners[0] == "linear"
    assert "binomial" in winners
    assert winners[-1] == "ring"


def test_selection_layer_picks_measured_winners(once, benchmark):
    """`auto` must never be worse than 1.2x the best algorithm."""
    from repro.collectives.tuning import select_algorithm

    def check():
        worst_ratio = 1.0
        for nelems in (8, 2048, 131072):
            best = min(broadcast_makespan(a, nelems)
                       for a in ("binomial", "linear", "ring"))
            chosen = select_algorithm("broadcast", nelems * 8, 8)
            got = broadcast_makespan(chosen, nelems)
            worst_ratio = max(worst_ratio, got / best)
        return worst_ratio

    worst = once(check)
    benchmark.extra_info["auto_vs_best_worst_ratio"] = round(worst, 3)
    assert worst <= 1.2


def allreduce_makespan(algorithm: str, nelems: int, n_pes: int = 8) -> float:
    """Simulated completion time of one allreduce (ns).

    ``algorithm="composition"`` measures the legacy-style binomial
    reduce+broadcast pair; the rest are the compiled allreduce
    schedules.
    """
    def body(ctx):
        ctx.init()
        nbytes = max(8 * nelems, 16)
        dest = ctx.malloc(nbytes)
        src = ctx.malloc(nbytes)
        ctx.barrier()
        t0 = ctx.pe.clock
        if algorithm == "composition":
            from repro.collectives.broadcast import broadcast
            from repro.collectives.reduce import reduce

            reduce(ctx, dest, src, nelems, 1, 0, "sum", np.dtype(np.int64))
            broadcast(ctx, dest, dest, nelems, 1, 0, np.dtype(np.int64))
        else:
            from repro.collectives.allreduce import allreduce

            allreduce(ctx, dest, src, nelems, 1, "sum", np.dtype(np.int64),
                      algorithm=algorithm)
        ctx.barrier()
        dt = ctx.pe.clock - t0
        ctx.close()
        return dt

    return max(Machine(_ablation_config(n_pes)).run(body))


def allgather_makespan(algorithm: str, nelems_per_pe: int,
                       n_pes: int = 8) -> float:
    """Simulated completion time of one fixed-size allgather (ns)."""
    def body(ctx):
        ctx.init()
        dest = ctx.malloc(max(8 * nelems_per_pe * n_pes, 16))
        src = ctx.malloc(max(8 * nelems_per_pe, 16))
        ctx.barrier()
        t0 = ctx.pe.clock
        from repro.collectives.extra import fcollect

        fcollect(ctx, dest, src, nelems_per_pe, np.dtype(np.int64),
                 algorithm=algorithm)
        ctx.barrier()
        dt = ctx.pe.clock - t0
        ctx.close()
        return dt

    return max(Machine(_ablation_config(n_pes)).run(body))


ALLREDUCE_ALGOS = ("composition", "doubling", "rabenseifner", "ring",
                   "dual-pipelined")
ALLREDUCE_SIZES = (8, 512, 4096, 32768)


def test_allreduce_algorithm_crossover(once, benchmark):
    def sweep():
        rows = {}
        for n_pes in (6, 8):
            for nelems in ALLREDUCE_SIZES:
                rows[(n_pes, nelems)] = {
                    alg: allreduce_makespan(alg, nelems, n_pes)
                    for alg in ALLREDUCE_ALGOS
                }
        return rows

    from repro.collectives.tuning import select_algorithm

    rows = once(sweep)
    print("\nA1 — allreduce latency (ns) by algorithm")
    print(f"{'pes':>4} {'elems':>7} " +
          " ".join(f"{a:>13}" for a in ALLREDUCE_ALGOS) +
          "  winner / tuning pick")
    for (n_pes, nelems), r in rows.items():
        winner = min(r, key=r.get)
        pick = select_algorithm("allreduce", nelems * 8, n_pes)
        print(f"{n_pes:>4} {nelems:>7} " +
              " ".join(f"{r[a]:>13.0f}" for a in ALLREDUCE_ALGOS) +
              f"  {winner} / {pick}")
        benchmark.extra_info[f"winner_{n_pes}_{nelems}"] = winner
        benchmark.extra_info[f"tuning_{n_pes}_{nelems}"] = pick
        # tuning's pick only chooses among the compiled algorithms.
        assert r[pick] <= 1.25 * min(r[a] for a in ALLREDUCE_ALGOS
                                     if a != "composition")
    # The motivating claims: latency-bound small payloads favour the
    # log-depth schemes; bandwidth-bound large payloads favour
    # reduce-scatter — Rabenseifner at a power of two, the fold-free
    # ring elsewhere.
    assert min(rows[(8, 8)], key=rows[(8, 8)].get) in ("composition",
                                                       "doubling")
    assert min(rows[(8, 32768)], key=rows[(8, 32768)].get) == "rabenseifner"
    assert min(rows[(6, 32768)], key=rows[(6, 32768)].get) == "ring"


def test_allgather_algorithm_crossover(once, benchmark):
    sizes = (8, 512, 4096)

    def sweep():
        return {
            nelems: {
                alg: allgather_makespan(alg, nelems)
                for alg in ("tree", "dissemination", "pat")
            }
            for nelems in sizes
        }

    from repro.collectives.tuning import select_algorithm

    rows = once(sweep)
    print("\nA1 — allgather latency (ns) by algorithm, 8 nodes")
    print(f"{'elems/pe':>9} {'tree':>12} {'dissemination':>14} {'pat':>12}"
          "  winner / tuning pick")
    for nelems, r in rows.items():
        winner = min(r, key=r.get)
        pick = select_algorithm("allgather", nelems * 8, 8)
        print(f"{nelems:>9} {r['tree']:>12.0f} {r['dissemination']:>14.0f}"
              f" {r['pat']:>12.0f}  {winner} / {pick}")
        benchmark.extra_info[f"winner_{nelems}"] = winner
        benchmark.extra_info[f"tuning_{nelems}"] = pick
        assert r[pick] <= 1.25 * min(r.values())
    # The log-depth schemes beat the tree composition everywhere, and
    # PAT's dest-direct transfers (no rotation scratch, no unrotate
    # epilogue) keep it at or under dissemination at every size.
    for r in rows.values():
        assert min(r, key=r.get) in ("dissemination", "pat")
        assert r["pat"] <= r["dissemination"] * 1.05


LARGE_PE_COUNTS = (64, 256, 1024, 4096)


def test_large_pe_crossover_vec(once, benchmark):
    """The same ablation at 64–4096 PEs, via the vec evaluator.

    The cooperative simulator prices one PE at a time, which caps the
    A1 sweeps at tens of PEs; the closed-form evaluator prices whole
    schedules at once, so the crossover curves extend to the PE counts
    the paper's future-work section asks about.  The committed
    reference copy of the full sweep is ``BENCH_vec.json``
    (``python -m repro.bench.vec_sweep --out BENCH_vec.json``).
    """
    from repro.bench.vec_sweep import sweep_point

    def sweep():
        rows = {}
        for n_pes in LARGE_PE_COUNTS:
            for nelems in (8, 4096):
                rows[(n_pes, nelems)] = {
                    c: sweep_point(c, n_pes, nelems)
                    for c in ("broadcast", "allreduce")
                }
        return rows

    rows = once(sweep)
    print("\nA1-large — winners by (pes, elems), vec evaluator")
    print(f"{'pes':>6} {'elems':>7} {'broadcast':>14} {'allreduce':>14}")
    for (n_pes, nelems), r in rows.items():
        print(f"{n_pes:>6} {nelems:>7} {r['broadcast']['winner']:>14} "
              f"{r['allreduce']['winner']:>14}")
        for c in ("broadcast", "allreduce"):
            benchmark.extra_info[f"winner_{c}_{n_pes}_{nelems}"] = \
                r[c]["winner"]
    # At large PE counts the log-depth schemes win everything except
    # the tiny-payload broadcast, where the root's fire-and-forget
    # pipeline stays competitive up to a few hundred PEs.
    assert rows[(64, 8)]["broadcast"]["winner"] == "linear"
    for n_pes in (1024, 4096):
        assert rows[(n_pes, 4096)]["broadcast"]["winner"] == "binomial"
        assert rows[(n_pes, 4096)]["allreduce"]["winner"] == "rabenseifner"


PIPELINE_PE_COUNTS = (64, 256, 1024, 4096)


def test_pipelined_allreduce_large_payload_vec(once, benchmark):
    """Dual-pipelined vs ring vs Rabenseifner at 64-4096 PEs, 64 KiB+.

    The PR 8 acceptance sweep, in-process: the vec evaluator prices the
    three large-payload allreduce schedules at the PE counts where the
    pipeline depth pays off.  The committed reference copy is
    ``BENCH_pipeline.json`` (``python -m repro.bench.pipeline_sweep
    --out BENCH_pipeline.json``; CI's perf-smoke re-validates it with
    ``--check``).
    """
    from repro.bench.pipeline_sweep import sweep_point

    def sweep():
        return {
            n_pes: sweep_point(n_pes, 8192)  # 64 KiB of int64
            for n_pes in PIPELINE_PE_COUNTS
        }

    rows = once(sweep)
    print("\nA1-pipeline — 64 KiB allreduce, vec evaluator")
    print(f"{'pes':>6} {'segs':>5} {'ring/dual':>10} {'rab/dual':>9}"
          "  winner / tuning pick")
    for n_pes, p in rows.items():
        ratio = (f"{p['ring_over_dual']:>10.2f}"
                 if p["ring_over_dual"] is not None else f"{'—':>10}")
        print(f"{n_pes:>6} {p['segments']:>5} {ratio} "
              f"{p['rabenseifner_over_dual']:>9.2f}"
              f"  {p['winner']} / {p['tuning_pick']}")
        benchmark.extra_info[f"winner_{n_pes}"] = p["winner"]
    # The acceptance bar: >= 1.3x over ring wherever ring is measured
    # (it is Θ(N²) steps, so the sweep caps it at 512 PEs).
    for n_pes in (64, 256):
        assert rows[n_pes]["ring_over_dual"] >= 1.3
    # Past the ring cap the contest is dual vs Rabenseifner, and the
    # pipelined trees stay in the race at every measured count.
    for n_pes in (1024, 4096):
        assert rows[n_pes]["winner"] in ("dual-pipelined", "rabenseifner")
        assert rows[n_pes]["rabenseifner_over_dual"] >= 0.8
