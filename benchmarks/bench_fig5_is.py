"""E7 — Figure 5: NAS Integer Sort performance at 1/2/4/8 PEs.

Regenerates the paper's IS series (Mop/s, total and per PE; partial and
full verification on) and asserts the qualitative shape:

* total Mop/s rises near-linearly for 2 and 4 PEs with consistent
  per-PE throughput;
* per-PE throughput drops ~25 % at 8 PEs, pulling total down.

The paper runs class B; the default here is the scaled class A
(~22 s wall) — set ``REPRO_IS_CLASS=B-scaled`` for the full-size run
recorded in EXPERIMENTS.md (~4 min).
"""

from __future__ import annotations

from repro.bench.harness import PE_COUNTS, check_figure5_shape, sweep_is
from repro.bench.nas_is import IsParams
from repro.bench.reporting import render_figure

from conftest import is_class


def test_figure5_is(once, benchmark):
    params = IsParams(problem_class=is_class())
    points = once(sweep_is, PE_COUNTS, params)
    print("\n" + render_figure(
        points, f"Figure 5 — NAS IS class {params.problem_class} (reproduced)"))
    violations = check_figure5_shape(points)
    assert not violations, violations
    for p in points:
        benchmark.extra_info[f"mops_total_{p.n_pes}pe"] = round(p.mops_total, 3)
        benchmark.extra_info[f"mops_per_pe_{p.n_pes}pe"] = round(p.mops_per_pe, 3)
        assert p.verified
    drop = 1.0 - points[-1].mops_per_pe / points[-2].mops_per_pe
    benchmark.extra_info["per_pe_drop_at_8"] = f"{drop:.0%}"
