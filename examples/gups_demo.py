#!/usr/bin/env python3
"""GUPs (RandomAccess) on the simulated xBGAS machine — Figure 4's
workload at demonstration scale.

Sweeps 1/2/4/8 PEs with HPCC verification enabled and prints the same
series the paper plots: operations per second, total and per PE.

    python examples/gups_demo.py [updates_per_pe]
"""

from __future__ import annotations

import sys

from repro.bench.gups import GupsParams
from repro.bench.harness import PE_COUNTS, check_figure4_shape, sweep_gups
from repro.bench.reporting import render_figure


def main() -> None:
    updates = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    params = GupsParams(updates_per_pe=updates)
    print(f"GUPs: table = 2^{params.log2_table_size} words, "
          f"{updates} updates/PE, verification on\n")
    points = sweep_gups(PE_COUNTS, params)
    print(render_figure(points, "GUPs performance (compare: paper Figure 4)"))
    for p in points:
        res = p.detail
        print(f"  {p.n_pes} PEs: {res.errors} verification errors "
              f"({'PASS' if res.passed else 'FAIL'})")
    violations = check_figure4_shape(points)
    if violations:
        print("\nshape check FAILED:", "; ".join(violations))
    else:
        print("\nshape check: matches the paper's Figure 4 "
              "(near-linear totals, per-PE peak at 2 PEs, 8-PE drop)")


if __name__ == "__main__":
    main()
