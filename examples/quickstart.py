#!/usr/bin/env python3
"""Quickstart: the xbrtime runtime and the four paper collectives.

Runs a 4-PE SPMD program on the simulated xBGAS machine: symmetric
allocation, one-sided put/get, then broadcast, reduction, scatter and
gather (paper sections 3.3-4.6).

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Machine, MachineConfig


def main(ctx):
    ctx.init()
    me, n = ctx.my_pe(), ctx.num_pes()

    # --- symmetric memory (Figure 2) -----------------------------------
    # Every PE gets the same address back: the shared segments stay
    # fully symmetric.
    slots = ctx.malloc(8 * n)
    view = ctx.view(slots, "long", n)
    view[:] = 0

    # --- one-sided put: deposit my rank on my right neighbour ----------
    src = ctx.private_malloc(8)
    ctx.view(src, "long", 1)[0] = me * 11
    ctx.long_put(slots + 8 * me, src, 1, 1, (me + 1) % n)
    ctx.barrier()
    left = (me - 1) % n
    assert view[left] == left * 11

    # --- broadcast (Algorithm 1) ----------------------------------------
    params = ctx.malloc(8 * 2)
    pv = ctx.view(params, "long", 2)
    if me == 0:
        pv[:] = [2026, 7]
    ctx.long_broadcast(params, params, 2, 1, 0)
    assert list(pv) == [2026, 7]

    # --- reduction (Algorithm 2) ------------------------------------------
    contrib = ctx.malloc(8)
    total = ctx.private_malloc(8)
    ctx.view(contrib, "long", 1)[0] = (me + 1) ** 2
    ctx.long_reduce_sum(total, contrib, 1, 1, 0)
    if me == 0:
        got = int(ctx.view(total, "long", 1)[0])
        expect = sum((i + 1) ** 2 for i in range(n))
        print(f"[PE 0] sum of squares over {n} PEs = {got} "
              f"(expected {expect})")
        assert got == expect

    # --- scatter / gather (Algorithms 3-4), distinct counts per PE --------
    msgs = [i + 1 for i in range(n)]
    disp = [sum(msgs[:i]) for i in range(n)]
    nelems = sum(msgs)
    table = ctx.malloc(8 * nelems)
    if me == 0:
        ctx.view(table, "long", nelems)[:] = np.arange(nelems) * 10
    mine = ctx.private_malloc(8 * msgs[-1])
    ctx.long_scatter(mine, table, msgs, disp, nelems, 0)
    piece = np.array(ctx.view(mine, "long", msgs[me]))
    print(f"[PE {me}] scatter received {piece.tolist()}")

    # Double it locally, gather back to PE 0.
    ctx.view(mine, "long", msgs[me])[:] = piece * 2
    back = ctx.private_malloc(8 * nelems)
    ctx.long_gather(back, mine, msgs, disp, nelems, 0)
    if me == 0:
        result = np.array(ctx.view(back, "long", nelems))
        assert np.array_equal(result, np.arange(nelems) * 20)
        print(f"[PE 0] gather assembled {result.tolist()}")

    ctx.close()
    return ctx.time_ns


if __name__ == "__main__":
    machine = Machine(MachineConfig(n_pes=4))
    print(machine.describe() + "\n")
    times = machine.run(main)
    print(f"\nsimulated makespan: {max(times) / 1000:.1f} µs")
    print(f"stats: {machine.stats.puts} puts, {machine.stats.gets} gets, "
          f"{machine.stats.barriers} barriers")
    print("collectives:", dict(machine.stats.collective_calls))
