#!/usr/bin/env python3
"""Allreduce on a faulty fabric: drops, retries, and a mid-run crash.

Walks through the fault subsystem end to end on an 8-PE machine:

1. a seeded :class:`~repro.faults.FaultPlan` drops 20 % of messages and
   kills PE 5 partway through the run;
2. the ack/retry layer (:class:`~repro.faults.RetryConfig`) retransmits
   every dropped payload, so a first allreduce still matches the exact
   8-PE sum;
3. after PE 5 dies, ``ctx.resilient_allreduce`` rebuilds the binomial
   tree over the 7 survivors and returns the partial sum together with
   a contribution mask saying exactly whose data is in it.

Run it (optionally writing a Chrome trace with the fault instants):

    python examples/faulty_allreduce.py [trace.json]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import Machine, MachineConfig
from repro.faults import CRASHED, FaultPlan, RetryConfig, crash, drop

N_PES = 8
NELEMS = 16
VICTIM = 5
#: Late enough that phase 1 (including its retry timeouts) is over
#: before the victim's clock can reach it.
CRASH_AT = 2_000_000.0  # ns of simulated time


def main(ctx):
    ctx.init()
    me = ctx.my_pe()
    src = ctx.malloc(NELEMS * 8)
    dest = ctx.malloc(NELEMS * 8)
    # Every PE contributes rank+1 in each slot, so the full sum is
    # 36 (=1+..+8) per slot and the no-PE-5 sum is 30.
    ctx.view(src, "long", NELEMS)[:] = me + 1

    # Phase 1: everyone is alive; drops are healed by retransmission.
    ctx.allreduce(dest, src, NELEMS, 1, "sum", "long")
    full = int(ctx.view(dest, "long", NELEMS)[0])

    # Phase 2: run past the crash trigger, then reduce again.  PE 5
    # dies at its next runtime call; the survivors' barrier detector
    # trips, they shrink the group and rerun over the rebuilt tree.
    ctx.compute(CRASH_AT + 20_000.0)
    res = ctx.resilient_allreduce(dest, src, NELEMS, 1, "sum", "long")
    partial = int(ctx.view(dest, "long", NELEMS)[0])
    ctx.close()
    return full, partial, res


if __name__ == "__main__":
    plan = FaultPlan(
        seed=0x5EED,
        rules=(drop(probability=0.2), crash(pe=VICTIM, at_ns=CRASH_AT)),
    )
    machine = Machine(MachineConfig(n_pes=N_PES), trace=True,
                      faults=plan, retry=RetryConfig(timeout_ns=2_000.0))
    results = machine.run(main)

    drops = machine.stats.faults_injected["drop"]
    print(f"fault plan seed={plan.seed:#x}: {drops} drops fired, "
          f"{machine.stats.retries} retransmissions")

    assert results[VICTIM] is CRASHED
    print(f"PE {VICTIM} crashed at t={CRASH_AT:.0f} ns; "
          f"machine.failed_pes = {sorted(machine.failed_pes)}")

    full, partial, res = next(r for i, r in enumerate(results)
                              if i != VICTIM)
    expect_full = sum(r + 1 for r in range(N_PES))
    expect_partial = expect_full - (VICTIM + 1)
    print(f"allreduce before the crash: {full} (exact sum, "
          f"drops healed by retry; expected {expect_full})")
    print(f"resilient allreduce after:  {partial} over survivors "
          f"{res.contributors} (expected {expect_partial})")
    print(f"  restarts={res.restarts} dead={res.dead} "
          f"complete={res.complete}")
    assert full == expect_full and partial == expect_partial
    assert res.dead == (VICTIM,) and not res.complete

    # Every surviving PE reports the identical mask — group agreement.
    masks = {r[2].contributors for i, r in enumerate(results)
             if i != VICTIM}
    assert len(masks) == 1
    print("all survivors agree on the contribution mask")

    if len(sys.argv) > 1:
        doc = machine.write_chrome_trace(sys.argv[1])
        faults = [e for e in doc["traceEvents"] if e.get("cat") == "fault"]
        print(f"wrote {sys.argv[1]}: {len(doc['traceEvents'])} events, "
              f"{len(faults)} fault/retry instants")
