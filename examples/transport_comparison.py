#!/usr/bin/env python3
"""The same collective program on three transports (paper section 3.1).

The paper's core argument: xBGAS one-sided remote load/store avoids the
kernel crossings, handshakes and staging copies of message-passing
stacks, and even the per-operation library costs of RDMA.  This script
runs one program — a broadcast + reduction round with some point-to-
point traffic — on the xBGAS, RDMA-like and MPI-like transport presets
and prints the simulated times side by side.

    python examples/transport_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro import Machine, MachineConfig

N_PES = 8
NELEMS = 256
ROUNDS = 5


def workload(ctx):
    ctx.init()
    me, n = ctx.my_pe(), ctx.num_pes()
    data = ctx.malloc(8 * NELEMS)
    acc = ctx.malloc(8 * NELEMS)
    out = ctx.private_malloc(8 * NELEMS)
    ctx.view(data, "long", NELEMS)[:] = me + np.arange(NELEMS)
    ctx.barrier()
    t0 = ctx.time_ns
    for _ in range(ROUNDS):
        # Root refreshes parameters on everyone...
        ctx.long_broadcast(data, data, NELEMS, 1, 0)
        # ...neighbours exchange a block one-sidedly...
        ctx.put(acc, data, NELEMS, 1, (me + 1) % n, "long")
        ctx.barrier()
        # ...and everyone contributes to a reduction.
        ctx.long_reduce_sum(out, acc, NELEMS, 1, 0)
    dt = ctx.time_ns - t0
    ctx.close()
    return dt


def run(transport: str) -> tuple[float, int]:
    cfg = MachineConfig(
        n_pes=N_PES,
        cores_per_node=1,  # a cluster: every message crosses the wire
        memory_bytes_per_pe=8 * 1024 * 1024,
        symmetric_heap_bytes=4 * 1024 * 1024,
        collective_scratch_bytes=512 * 1024,
    ).with_transport(transport)
    machine = Machine(cfg)
    times = machine.run(workload)
    return max(times), machine.stats.messages


def main() -> None:
    print(f"{ROUNDS} rounds of broadcast + neighbour put + reduction, "
          f"{N_PES} single-core nodes, {NELEMS * 8} B payloads\n")
    results = {t: run(t) for t in ("xbgas", "rdma", "mpi")}
    base = results["xbgas"][0]
    print(f"{'transport':>10} {'simulated time':>16} {'messages':>10} "
          f"{'vs xbgas':>10}")
    for t, (ns, msgs) in results.items():
        print(f"{t:>10} {ns / 1000:>13.1f} µs {msgs:>10} "
              f"{ns / base:>9.2f}x")
    assert results["xbgas"][0] < results["rdma"][0] < results["mpi"][0]
    print("\nordering holds: xBGAS < RDMA-like < MPI-like "
          "(paper section 3.1)")


if __name__ == "__main__":
    main()
