#!/usr/bin/env python3
"""Multi-tenant collective serving on one persistent PE pool.

Several tenants submit independent collective jobs to a single
:class:`repro.serve.ServePool`; the scheduler carves each job a
disjoint team of PEs, admission control bounds the queue, and every
tenant is billed for latency and PE-seconds.  One tenant ("evil")
carries a seeded crash — its job fails, everyone else's completes, and
the pool keeps serving: that is the crash-isolation contract.

    python examples/serve_multi_tenant.py [backend] [n_jobs]

``backend`` defaults to ``sim`` so the example runs identically on a
single-core CI runner; pass ``mp`` for true-parallel worker processes
(team-scoped jobs then genuinely overlap).
"""

from __future__ import annotations

import sys

from repro.serve import JobSpec, ServePool

TENANTS = ("alice", "bob", "carol", "dave")
SHAPES = (
    ("allreduce", 2, 256, "long"),
    ("broadcast", 2, 512, "long"),
    ("allgather", 2, 128, "double"),
    ("scan", 2, 256, "double"),
    ("alltoall", 4, 64, "long"),
    ("barrier", 2, 0, "long"),
)


def main() -> None:
    backend = sys.argv[1] if len(sys.argv) > 1 else "sim"
    n_jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 24

    with ServePool(n_pes=4, backend=backend) as pool:
        for i in range(n_jobs):
            coll, n_pes, nelems, dtype = SHAPES[i % len(SHAPES)]
            pool.submit(JobSpec(
                tenant=TENANTS[i % len(TENANTS)], collective=coll,
                n_pes=n_pes, nelems=nelems, dtype=dtype, seed=i,
            ))
        # One tenant's job crashes mid-collective (seeded, group rank 1).
        pool.submit(JobSpec(tenant="evil", collective="allreduce",
                            n_pes=2, nelems=256, seed=99, fault="raise",
                            fault_rank=1))
        results = pool.drain(timeout_s=300.0)

    ok = [r for r in results if r.ok]
    failed = [r for r in results if not r.ok]
    assert [r.tenant for r in failed] == ["evil"], failed
    print(f"{len(ok)} jobs completed across {len(TENANTS)} tenants "
          f"on the {pool.backend_name!r} backend")
    print(f"fault isolated to tenant 'evil': "
          f"{failed[0].error.splitlines()[0][:72]}")

    snap = pool.snapshot()
    for tenant, acct in snap["tenants"].items():
        lat = acct["latency_s"]
        print(f"  {tenant:>5}: {acct['completed']:2d} ok "
              f"{acct['failed']} failed  "
              f"p50 {lat['p50'] * 1e3:7.2f} ms  "
              f"p99 {lat['p99'] * 1e3:7.2f} ms  "
              f"{acct['pe_seconds']:.3f} PE-s")

    # Digests depend only on the spec (seed + group ranks), never on
    # which PEs the scheduler picked — rerunning any job reproduces it.
    spec = JobSpec(tenant="alice", collective="allreduce", n_pes=2,
                   nelems=256, seed=0)
    with ServePool(n_pes=4, backend=backend) as rerun_pool:
        rerun_pool.submit(spec)
        [rerun] = rerun_pool.drain(timeout_s=300.0)
    first = next(r for r in ok if r.spec == spec)
    assert rerun.digest == first.digest
    print("repeat digests match: serving placement is invisible to tenants")


if __name__ == "__main__":
    main()
