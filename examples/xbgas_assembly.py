#!/usr/bin/env python3
"""Programming the xBGAS ISA directly (paper section 3.2).

Assembles and executes a hand-written xBGAS program on the functional
core simulator: extended registers, the three instruction categories
(base-type ``eld``/``esd``, raw-type ``erld``/``ersd``, address
management ``eaddie``/``eaddix``), and the Object Look-aside Buffer.

The program runs on "PE 0" and writes a counter sequence into the
memory of "PE 1" through the OLB, then reads it back and sums it —
remote memory accessed with plain load/store instructions, no
message-passing library in sight.

    python examples/xbgas_assembly.py
"""

from __future__ import annotations

from repro.isa import Cpu, Memory, assemble
from repro.isa.disasm import disassemble_program
from repro.machine.memsys import MemoryHierarchy
from repro.params import MemoryParams

PROGRAM = """
# a0 = base address, a1 = element count, e10 pairs with a0 (base-type)
    li   a0, 0x1000
    li   a1, 8
    eaddie e10, x0, 2        # object ID 2 -> PE 1 via the OLB
    li   t0, 0               # counter

store_loop:
    slli t1, t0, 3           # byte offset = i * 8
    add  t2, a0, t1
    mv   t3, t0
    addi t3, t3, 100         # value = 100 + i
    ersd t3, t2, e10         # raw-type remote store to PE 1
    addi t0, t0, 1
    bne  t0, a1, store_loop

# Read the values back with base-type extended loads and sum them.
# (e10 still holds object ID 2; eld forms the address from e10:a0.)
    li   t0, 0
    li   t4, 0               # running sum
load_loop:
    slli t1, t0, 3
    add  t2, a0, t1
    mv   a2, t2              # eld pairs rs1 with ITS extended register,
    eaddix e12, e10, 0       # so mirror the object ID into e12 (for a2)
    eld  t5, 0(a2)
    add  t4, t4, t5
    addi t0, t0, 1
    bne  t0, a1, load_loop

    mv   a0, t4              # result in a0
    halt
"""


class CrossPePort:
    """A two-PE remote port: bridges the cores' memories directly."""

    def __init__(self, memories, latency_ns=450.0):
        self.memories = memories
        self.latency_ns = latency_ns
        self.stores = 0
        self.loads = 0

    def remote_load(self, target_pe, addr, nbytes, signed):
        self.loads += 1
        return (self.memories[target_pe].load(addr, nbytes, signed),
                2 * self.latency_ns)

    def remote_store(self, target_pe, addr, nbytes, value):
        self.stores += 1
        self.memories[target_pe].store(addr, nbytes, value)
        return 20.0  # one-sided: sender pays only injection overhead


def main() -> None:
    memories = [Memory(1 << 20), Memory(1 << 20)]
    port = CrossPePort(memories)
    cpu = Cpu(pe=0, memory=memories[0],
              memsys=MemoryHierarchy(MemoryParams()),
              remote_port=port, cycle_ns=1.0)
    cpu.olb.install(2, 1)  # object ID 2 -> PE 1

    prog = assemble(PROGRAM)
    print(f"assembled {len(prog.words)} instructions "
          f"({len(prog.labels)} labels); first lines of the listing:")
    print("\n".join(disassemble_program(prog.words).splitlines()[:6]))
    print("    ...")
    cpu.load_program(prog.words)
    reason = cpu.run()

    result = cpu.regs.read_x(10)
    expect = sum(100 + i for i in range(8))
    print(f"halted: {reason.value}, {cpu.instructions_retired} "
          f"instructions retired, {cpu.ns_elapsed:.0f} simulated ns")
    print(f"remote traffic: {port.stores} stores, {port.loads} loads")
    print(f"sum of remote values: {result} (expected {expect})")
    assert result == expect
    # PE 1's memory really holds the data:
    values = [memories[1].load(0x1000 + 8 * i, 8) for i in range(8)]
    print(f"PE 1 memory at 0x1000: {values}")


if __name__ == "__main__":
    main()
