#!/usr/bin/env python3
"""Distributed histogram with scatter/gather, reduce-to-all and teams.

A root PE owns a big sample array.  The program:

1. *scatters* variable-size chunks to all PEs (Algorithm 3 — note the
   per-PE counts, a versatility OpenSHMEM's API lacks, section 4.7);
2. each PE histograms its chunk locally;
3. the bin counts are combined with *reduce-to-all* (a section 7
   extension built from reduction + broadcast);
4. two *teams* (even and odd PEs) concurrently compute their own
   sub-histogram maxima (section 7's PE-subset collectives);
5. the per-PE chunk means are *gathered* (Algorithm 4) back to the root.

    python examples/histogram_teams.py
"""

from __future__ import annotations

import numpy as np

from repro import Machine, MachineConfig
from repro.collectives.teams import Team

N_SAMPLES = 6000
N_BINS = 16
VALUE_RANGE = 160


def main(ctx):
    ctx.init()
    me, n = ctx.my_pe(), ctx.num_pes()

    # Uneven chunk sizes: later PEs take slightly more work.
    base = N_SAMPLES // (n * (n + 1) // 2)
    msgs = [base * (i + 1) for i in range(n)]
    msgs[-1] += N_SAMPLES - sum(msgs)
    disp = [sum(msgs[:i]) for i in range(n)]

    samples = ctx.malloc(8 * N_SAMPLES)
    if me == 0:
        rng = np.random.default_rng(42)
        data = rng.integers(0, VALUE_RANGE, size=N_SAMPLES)
        ctx.view(samples, "long", N_SAMPLES)[:] = data

    # 1. Scatter distinct chunk sizes.
    chunk = ctx.private_malloc(8 * max(msgs))
    ctx.long_scatter(chunk, samples, msgs, disp, N_SAMPLES, 0)
    mine = np.array(ctx.view(chunk, "long", msgs[me]))

    # 2. Local histogram (charged to the simulated clock).
    local_hist, _ = np.histogram(mine, bins=N_BINS, range=(0, VALUE_RANGE))
    ctx.charge_stream(chunk, 8 * msgs[me])
    ctx.compute(msgs[me] * 2.0)

    # 3. Global histogram on every PE.
    hist_buf = ctx.malloc(8 * N_BINS)
    ghist_buf = ctx.malloc(8 * N_BINS)
    ctx.view(hist_buf, "long", N_BINS)[:] = local_hist
    ctx.reduce_all(ghist_buf, hist_buf, N_BINS, 1, "sum", "long")
    ghist = np.array(ctx.view(ghist_buf, "long", N_BINS))
    assert ghist.sum() == N_SAMPLES

    # 4. Even/odd teams each find their tallest local bin, concurrently.
    members = tuple(r for r in range(n) if r % 2 == me % 2)
    team = Team(ctx, members)
    peak_buf = ctx.malloc(8)
    peak_out = ctx.private_malloc(8)
    ctx.view(peak_buf, "long", 1)[0] = int(local_hist.max())
    team.reduce(peak_out, peak_buf, 1, 1, 0, "max", "long")
    if team.my_pe() == 0:
        label = "even" if me % 2 == 0 else "odd"
        print(f"[PE {me}] {label} team's tallest local bin: "
              f"{int(ctx.view(peak_out, 'long', 1)[0])} samples")

    # 5. Gather each PE's chunk mean back to the root.
    mean_buf = ctx.malloc(8)
    ctx.view(mean_buf, "long", 1)[0] = int(mine.mean())
    means = ctx.private_malloc(8 * n)
    ones = [1] * n
    offs = list(range(n))
    ctx.long_gather(means, mean_buf, ones, offs, n, 0)

    if me == 0:
        print(f"\nglobal histogram over {N_SAMPLES} samples, "
              f"{N_BINS} bins of width {VALUE_RANGE // N_BINS}:")
        top = ghist.max()
        for b, count in enumerate(ghist):
            bar = "#" * int(40 * count / top)
            lo = b * VALUE_RANGE // N_BINS
            print(f"  [{lo:>3}..{lo + VALUE_RANGE // N_BINS:>3}) "
                  f"{count:>5} {bar}")
        mean_list = [int(v) for v in ctx.view(means, "long", n)]
        print(f"per-PE chunk means (gathered): {mean_list}")
    ctx.close()


if __name__ == "__main__":
    machine = Machine(MachineConfig(n_pes=6))
    machine.run(main)
    print(f"\nsimulated makespan: {machine.elapsed_ns / 1000:.1f} µs")
