#!/usr/bin/env python3
"""Allreduce over the two-sided mailbox transport.

``Machine(transport="mailbox")`` reroutes every compiled collective
through the Xctcmsg-style send/recv engine: puts become eager sends,
gets become request/reply pairs, and each PE's bounded receive queue
applies backpressure.  The result must be bit-identical to the
one-sided run — only the modelled cost changes (header framing,
postoffice routing, match time).

The second half drops the reliability assumption entirely: a seeded 5%
drop plan loses messages outright, and the epidemic
:func:`~repro.collectives.gossip.gossip_allreduce` still converges to
the exact sum because its per-origin contribution merging is
idempotent.

    python examples/mailbox_allreduce.py
"""

from __future__ import annotations

import numpy as np

from repro import Machine, MachineConfig
from repro.collectives.gossip import gossip_allreduce
from repro.faults import FaultPlan, drop

N_PES = 8
NELEMS = 128


def workload(ctx):
    ctx.init()
    me = ctx.my_pe()
    src = ctx.malloc(8 * NELEMS)
    dest = ctx.malloc(8 * NELEMS)
    ctx.view(src, "long", NELEMS)[:] = me + np.arange(NELEMS)
    ctx.allreduce(dest, src, NELEMS, 1)
    out = ctx.view(dest, "long", NELEMS).copy()
    ctx.close()
    return out


def gossip_workload(ctx):
    ctx.init()
    me = ctx.my_pe()
    src = ctx.malloc(8 * NELEMS)
    dest = ctx.malloc(8 * NELEMS)
    ctx.view(src, "long", NELEMS)[:] = me + np.arange(NELEMS)
    merged = gossip_allreduce(ctx, dest, src, NELEMS, 1, dtype="long")
    out = ctx.view(dest, "long", NELEMS).copy()
    ctx.close()
    return merged, out


def main() -> None:
    cfg = MachineConfig(n_pes=N_PES)

    one = Machine(cfg)
    base = one.run(workload)

    two = Machine(cfg, transport="mailbox")
    result = two.run(workload)

    identical = all(np.array_equal(a, b) for a, b in zip(base, result))
    print(f"mailbox allreduce over {N_PES} PEs: "
          f"{'bit-identical to one-sided' if identical else 'DIVERGED'}")
    print(f"  one-sided: {one.stats.puts + one.stats.gets:4d} puts+gets, "
          f"{one.stats.sends} sends")
    print(f"  mailbox:   {two.stats.sends:4d} sends / {two.stats.recvs} "
          f"recvs, {two.stats.bytes_sent} payload bytes, "
          f"{two.stats.mbx_stalls} backpressure stalls")

    plan = FaultPlan(seed=7, rules=(drop(probability=0.05),))
    lossy = Machine(cfg, faults=plan)
    outs = lossy.run(gossip_workload)
    want = np.arange(NELEMS) * N_PES + sum(range(N_PES))
    exact = all(merged == N_PES and np.array_equal(out, want)
                for merged, out in outs)
    print(f"gossip allreduce under 5% drops: "
          f"{lossy.stats.mbx_dropped} messages lost, "
          f"{'exact on every PE' if exact else 'INEXACT'}")


if __name__ == "__main__":
    main()
