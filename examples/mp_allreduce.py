#!/usr/bin/env python3
"""One PE program, two engines: allreduce on the simulator and on
true-parallel worker processes.

The program below is written against the PE-context protocol only, so
the exact same function runs on the deterministic simulator backend
("sim") and on the shared-memory multiprocessing backend ("mp"), where
every PE is a real OS process and puts/gets are cross-segment memcpys.
The results must match byte for byte — that is the cross-backend
conformance contract that ``tests/backends/test_conformance.py``
checks exhaustively.

    python examples/mp_allreduce.py [n_pes] [nelems]
"""

from __future__ import annotations

import sys

import numpy as np

import repro.xbrtime as xbr


def allreduce_program(ctx, nelems: int) -> bytes:
    """Fill a symmetric buffer per-rank, sum-allreduce it, return bytes."""
    ctx.init()
    me, n = ctx.my_pe(), ctx.num_pes()
    buf = ctx.malloc(8 * nelems)
    view = ctx.view(buf, "long", nelems)
    view[:] = np.arange(nelems, dtype=np.int64) + 1000 * me
    ctx.barrier()
    ctx.allreduce(buf, buf, nelems, 1, "sum", "long", algorithm="ring")
    result = view.copy().tobytes()
    ctx.free(buf)
    ctx.close()
    return result


def main() -> None:
    n_pes = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    nelems = int(sys.argv[2]) if len(sys.argv) > 2 else 64

    expected = sum(np.arange(nelems, dtype=np.int64) + 1000 * r
                   for r in range(n_pes))

    outputs = {}
    for backend in ("sim", "mp"):
        with xbr.init(backend=backend, n_pes=n_pes) as session:
            outputs[backend] = session.run(allreduce_program,
                                           [(nelems,)] * n_pes)
        values = np.frombuffer(outputs[backend][0], dtype=np.int64)
        assert (values == expected).all(), f"{backend}: wrong reduction"
        print(f"{backend:>3}: {n_pes} PEs agree, "
              f"sum[0]={values[0]} sum[-1]={values[-1]}")

    assert outputs["sim"] == outputs["mp"]
    print(f"backends agree bit-for-bit on {n_pes} PEs x {nelems} elements")


if __name__ == "__main__":
    main()
