#!/usr/bin/env python3
"""NAS Integer Sort on the simulated xBGAS machine — Figure 5's
workload at demonstration scale.

    python examples/integer_sort.py [class]

where ``class`` is one of S, W, A, B, S-scaled, A-scaled, B-scaled
(default S-scaled; the paper runs class B).
"""

from __future__ import annotations

import sys

from repro.bench.harness import PE_COUNTS, check_figure5_shape, sweep_is
from repro.bench.nas_is import CLASS_PARAMS, IsParams, generate_keys
from repro.bench.reporting import render_figure


def main() -> None:
    cls = sys.argv[1] if len(sys.argv) > 1 else "S-scaled"
    params = IsParams(problem_class=cls)
    lk, lm = CLASS_PARAMS[cls]
    print(f"NAS IS class {cls}: 2^{lk} keys in [0, 2^{lm}), "
          f"{params.max_iterations} ranking iterations\n")
    print("generating keys (NPB randlc sequence)...")
    keys = generate_keys(params)
    points = sweep_is(PE_COUNTS, params, keys=keys)
    print(render_figure(
        points, f"IS class {cls} (compare: paper Figure 5)"))
    for p in points:
        res = p.detail
        print(f"  {p.n_pes} PEs: partial verification "
              f"{'PASS' if res.partial_verified else 'FAIL'}, full "
              f"{'PASS' if res.full_verified else 'FAIL'}")
    violations = check_figure5_shape(points)
    if violations:
        print("\nshape check FAILED:", "; ".join(violations))
    else:
        print("\nshape check: matches the paper's Figure 5 "
              "(linear totals to 4 PEs, ~25% per-PE drop at 8)")


if __name__ == "__main__":
    main()
