#!/usr/bin/env python3
"""1-D heat diffusion with one-sided halo exchange — the PGAS pattern
the paper's introduction motivates.

Each PE owns a block of a 1-D rod.  Per timestep it:

1. *puts* its boundary cells into its neighbours' halo slots (one-sided,
   no receiver involvement — the xBGAS model of section 3.1);
2. applies the explicit diffusion stencil to its block;
3. every ``CHECK_EVERY`` steps, computes the global residual with the
   binomial-tree reduction and broadcasts the convergence decision.

    python examples/heat_diffusion.py
"""

from __future__ import annotations

import numpy as np

from repro import Machine, MachineConfig

CELLS_PER_PE = 512
ALPHA = 0.25
STEPS = 400
CHECK_EVERY = 50


def main(ctx):
    ctx.init()
    me, n = ctx.my_pe(), ctx.num_pes()

    # Block layout with one halo cell on each side:
    # [halo_left][CELLS_PER_PE interior cells][halo_right]
    block = ctx.malloc(8 * (CELLS_PER_PE + 2))
    u = ctx.view(block, "double", CELLS_PER_PE + 2)
    u[:] = 0.0
    if me == 0:
        u[1] = 1000.0  # hot boundary at the left end of the rod
    left, right = me - 1, me + 1

    resid_buf = ctx.malloc(8)
    resid_out = ctx.malloc(8)
    rv = ctx.view(resid_buf, "double", 1)
    ov = ctx.view(resid_out, "double", 1)

    halo_left = block                       # u[0]
    halo_right = block + 8 * (CELLS_PER_PE + 1)
    first = block + 8                       # u[1]
    last = block + 8 * CELLS_PER_PE         # u[CELLS_PER_PE]

    steps_run = 0
    for step in range(1, STEPS + 1):
        # 1. One-sided halo exchange: write my edges into the
        #    neighbours' halo cells; a barrier makes them visible.
        if me > 0:
            ctx.double_put(halo_right, first, 1, 1, left)
        if me < n - 1:
            ctx.double_put(halo_left, last, 1, 1, right)
        ctx.barrier()

        # 2. Local stencil (vectorised; charged to the simulated clock).
        interior = u[1:-1]
        new = interior + ALPHA * (u[:-2] - 2 * interior + u[2:])
        if me == 0:
            new[0] = 1000.0  # Dirichlet boundary
        delta = float(np.abs(new - interior).max())
        u[1:-1] = new
        ctx.charge_stream(block, 8 * (CELLS_PER_PE + 2), write=True)
        ctx.compute(CELLS_PER_PE * 4.0)
        steps_run = step

        # 3. Convergence check by reduction + broadcast.
        if step % CHECK_EVERY == 0:
            rv[0] = delta
            ctx.double_reduce_max(resid_out, resid_buf, 1, 1, 0)
            ctx.double_broadcast(resid_out, resid_out, 1, 1, 0)
            if me == 0:
                print(f"step {step:>4}: max residual {float(ov[0]):.6f}")
            if float(ov[0]) < 1e-6:
                break

    # Report the rod's total heat (conservation + diffusion check).
    rv[0] = float(u[1:-1].sum())
    ctx.double_reduce_sum(resid_out, resid_buf, 1, 1, 0)
    if me == 0:
        print(f"\nafter {steps_run} steps: total heat {float(ov[0]):.2f}")
    ctx.close()
    return float(u[1:-1].max())


if __name__ == "__main__":
    machine = Machine(MachineConfig(n_pes=4))
    maxima = machine.run(main)
    print(f"per-PE peak temperature: {[round(m, 3) for m in maxima]}")
    print(f"simulated makespan: {machine.elapsed_ns / 1e6:.2f} ms "
          f"({machine.stats.barriers} barriers, "
          f"{machine.stats.remote_puts} remote puts)")
