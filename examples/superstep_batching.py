#!/usr/bin/env python3
"""Superstep batching: defer small collectives, flush them as one.

Small collectives are latency-bound: each call pays the full
``⌈log₂N⌉`` stage ladder for a few cache lines of payload.  Wrapping a
burst of them in ``ctx.superstep()`` defers every put/get/collective
into a request queue; at the context exit (or any explicit barrier) the
runtime flushes the queue — contiguous transfers coalesce, same-shape
collectives widen into one call over the concatenated payload, and
mixed batches fuse into a single schedule under shared barriers.
Results are byte-identical to the eager sequence; only the trip count
changes.

Part one runs K small allreduces eagerly and deferred on the simulator
and checks bit-for-bit identity.  Part two prices the same batch with
the closed-form vec evaluator, showing the latency payoff the committed
``BENCH_batch.json`` sweep records.

    python examples/superstep_batching.py [n_pes] [nelems] [batch]
"""

from __future__ import annotations

import sys

import numpy as np

import repro.xbrtime as xbr


def burst_program(ctx, nelems: int, batch: int, deferred: bool) -> bytes:
    """K sum-allreduces over distinct buffers, eager or superstepped."""
    ctx.init()
    me = ctx.my_pe()
    srcs, dests = [], []
    for j in range(batch):
        srcs.append(ctx.malloc(8 * nelems))
        dests.append(ctx.malloc(8 * nelems))
        ctx.view(srcs[j], "long", nelems)[:] = (
            np.arange(nelems, dtype=np.int64) + 1000 * me + j)
    ctx.barrier()
    if deferred:
        with ctx.superstep():
            for j in range(batch):
                ctx.allreduce(dests[j], srcs[j], nelems, 1, "sum", "long")
    else:
        for j in range(batch):
            ctx.allreduce(dests[j], srcs[j], nelems, 1, "sum", "long")
    result = b"".join(
        ctx.view(d, "long", nelems).copy().tobytes() for d in dests)
    ctx.close()
    return result


def price_batch(n_pes: int, nelems: int, batch: int) -> None:
    """Makespans from the vec evaluator — the BENCH_batch.json model."""
    from repro.bench.batch_sweep import sweep_point

    p = sweep_point(n_pes, nelems, batch)
    print(f"\nvec evaluator, {n_pes} PEs x {p['nbytes']} B x K={batch}:")
    print(f"  {'eager (K calls)':>18}: {p['eager_ns']:>12.0f} ns")
    print(f"  {'superstep (fused)':>18}: {p['superstep_ns']:>12.0f} ns")
    print(f"eager/superstep makespan ratio: {p['speedup']:.2f}")


def main() -> None:
    n_pes = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    nelems = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    batch = int(sys.argv[3]) if len(sys.argv) > 3 else 8

    outputs = {}
    for label, deferred in (("eager", False), ("superstep", True)):
        with xbr.init(backend="sim", n_pes=n_pes) as session:
            outputs[label] = session.run(
                burst_program, [(nelems, batch, deferred)] * n_pes)
        print(f"{label:>10}: {batch} allreduces on {n_pes} PEs done")

    assert outputs["eager"] == outputs["superstep"]
    print(f"superstep flush matches eager bit-for-bit on "
          f"{n_pes} PEs x {batch} x {nelems} elements")

    price_batch(16, nelems, batch)


if __name__ == "__main__":
    main()
