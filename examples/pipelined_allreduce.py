#!/usr/bin/env python3
"""The doubly-pipelined dual-root allreduce, correctness and payoff.

Two dual-root binary trees (rooted at PE 0 and PE N/2) each carry half
the payload's segments: every segment is reduced up one tree and
broadcast down it again, and with S segments in flight the trees stay
full — each round moves only ``~1/S`` of the payload on the critical
path instead of the whole thing.  In the schedule IR this is a
``Pipeline`` block: S segment step-tuples per tree level, lowered into
a barrier-separated wavefront.

Part one runs the same PE program under ``algorithm="ring"`` and
``algorithm="dual-pipelined"`` on the simulator and checks the results
match bit for bit.  Part two prices the large-payload algorithms with
the closed-form vec evaluator at a PE count the simulator would crawl
through, showing where the pipeline earns its keep (the committed
sweep is ``BENCH_pipeline.json``).

    python examples/pipelined_allreduce.py [n_pes] [nelems]
"""

from __future__ import annotations

import sys

import numpy as np

import repro.xbrtime as xbr


def allreduce_program(ctx, nelems: int, algorithm: str,
                      segments: int | None) -> bytes:
    """Per-rank ramp, sum-allreduce with the given algorithm, bytes out."""
    ctx.init()
    me = ctx.my_pe()
    buf = ctx.malloc(8 * nelems)
    view = ctx.view(buf, "long", nelems)
    view[:] = np.arange(nelems, dtype=np.int64) + 1000 * me
    ctx.barrier()
    ctx.allreduce(buf, buf, nelems, 1, "sum", "long",
                  algorithm=algorithm, segments=segments)
    result = view.copy().tobytes()
    ctx.free(buf)
    ctx.close()
    return result


def price_large_payload(n_pes: int, nelems: int) -> None:
    """Makespans from the vec evaluator — no data arena, just the model."""
    from repro.bench.pipeline_sweep import sweep_point

    p = sweep_point(n_pes, nelems)
    kib = p["nbytes"] // 1024
    print(f"\nvec evaluator, {n_pes} PEs x {kib} KiB "
          f"(auto segments: {p['segments']}):")
    for algorithm, ns in sorted(p["makespans_ns"].items(),
                                key=lambda kv: kv[1]):
        print(f"  {algorithm:>15}: {ns:>12.0f} ns")
    print(f"ring/dual-pipelined makespan ratio: {p['ring_over_dual']:.2f}"
          f"  (tuning picks: {p['tuning_pick']})")


def main() -> None:
    n_pes = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    nelems = int(sys.argv[2]) if len(sys.argv) > 2 else 4096

    outputs = {}
    for algorithm, segments in (("ring", None), ("dual-pipelined", 4)):
        with xbr.init(backend="sim", n_pes=n_pes) as session:
            outputs[algorithm] = session.run(
                allreduce_program,
                [(nelems, algorithm, segments)] * n_pes)
        label = algorithm + (f" (S={segments})" if segments else "")
        print(f"{label:>22}: {n_pes} PEs done")

    assert outputs["ring"] == outputs["dual-pipelined"]
    expected = sum(np.arange(nelems, dtype=np.int64) + 1000 * r
                   for r in range(n_pes))
    values = np.frombuffer(outputs["ring"][0], dtype=np.int64)
    assert (values == expected).all()
    print(f"dual-pipelined matches ring bit-for-bit on "
          f"{n_pes} PEs x {nelems} elements")

    price_large_payload(48, 8192)


if __name__ == "__main__":
    main()
