#!/usr/bin/env python3
"""Dump a Chrome trace of an 8-PE binomial broadcast.

Runs one traced broadcast (paper Algorithm 1: 3 recursive-halving
stages moving 7 messages), prints the per-stage metrics derived from
the recorded spans, and writes a Chrome-trace JSON you can open in
chrome://tracing or https://ui.perfetto.dev:

    python examples/chrome_trace_broadcast.py [trace.json]
"""

from __future__ import annotations

import sys
import tempfile

import numpy as np

from repro import Machine, MachineConfig
from repro.bench.reporting import render_collective_metrics

N_PES = 8
NELEMS = 1024


def main(ctx):
    ctx.init()
    dest = ctx.malloc(NELEMS * 8)
    src = ctx.private_malloc(NELEMS * 8)
    if ctx.my_pe() == 0:
        ctx.view(src, "long", NELEMS)[:] = np.arange(NELEMS)
    with ctx.span("demo", payload=NELEMS):
        ctx.broadcast(dest, src, NELEMS, 1, 0, "long")
    assert (ctx.view(dest, "long", NELEMS) == np.arange(NELEMS)).all()
    ctx.close()


if __name__ == "__main__":
    machine = Machine(MachineConfig(n_pes=N_PES), trace=True)
    machine.run(main)

    metrics = machine.collective_metrics()
    print(render_collective_metrics(metrics))

    bcast = next(m for m in metrics if m.name == "broadcast")
    assert bcast.n_stages == 3          # ceil(log2 8)
    assert bcast.total_messages == 7    # one put per tree edge

    if len(sys.argv) > 1:
        path = sys.argv[1]
    else:
        path = tempfile.mktemp(prefix="xbgas_broadcast_", suffix=".json")
    doc = machine.write_chrome_trace(path)
    print(f"\nwrote {len(doc['traceEvents'])} trace events to {path}")
    print("open it in chrome://tracing or https://ui.perfetto.dev")
